//! Reproducibility: every stage of the system is deterministic under a
//! fixed seed — the property that makes the experiment reports of
//! EXPERIMENTS.md re-generable.

use yad_vashem_er::prelude::*;

#[test]
fn generation_is_seed_deterministic() {
    let a = GenConfig::random(600, 123).generate();
    let b = GenConfig::random(600, 123).generate();
    assert_eq!(a.dataset.len(), b.dataset.len());
    for rid in a.dataset.record_ids() {
        assert_eq!(a.dataset.record(rid), b.dataset.record(rid));
        assert_eq!(a.person_of(rid), b.person_of(rid));
    }
    assert_eq!(a.dataset.interner().len(), b.dataset.interner().len());
}

#[test]
fn blocking_is_deterministic() {
    let generated = GenConfig::random(600, 5).generate();
    let c = MfiBlocksConfig::default();
    let r1 = mfi_blocks(&generated.dataset, &c);
    let r2 = mfi_blocks(&generated.dataset, &c);
    assert_eq!(r1.candidate_pairs, r2.candidate_pairs);
    assert_eq!(r1.blocks.len(), r2.blocks.len());
    for (x, y) in r1.blocks.iter().zip(&r2.blocks) {
        assert_eq!(x.records, y.records);
        assert_eq!(x.items, y.items);
    }
}

#[test]
fn training_and_scoring_are_deterministic() {
    let generated = GenConfig::random(600, 5).generate();
    let config = PipelineConfig::default();
    let blocked = mfi_blocks(&generated.dataset, &config.blocking);
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 2);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let p1 = Pipeline::train(&generated.dataset, &labelled, &config);
    let p2 = Pipeline::train(&generated.dataset, &labelled, &config);
    let r1 = p1.resolve(&generated.dataset, &config);
    let r2 = p2.resolve(&generated.dataset, &config);
    assert_eq!(r1.matches.len(), r2.matches.len());
    for (x, y) in r1.matches.iter().zip(&r2.matches) {
        assert_eq!((x.a, x.b), (y.a, y.b));
        assert!((x.score - y.score).abs() < 1e-12);
    }
}

#[test]
fn different_seeds_differ() {
    let a = GenConfig::random(600, 1).generate();
    let b = GenConfig::random(600, 2).generate();
    let identical = a
        .dataset
        .record_ids()
        .take(100)
        .filter(|&r| r.index() < b.dataset.len() && a.dataset.record(r) == b.dataset.record(r))
        .count();
    assert!(identical < 100, "different seeds should produce different data");
}
