//! Integration tests for the narrative layer and submitter resolution —
//! the paper's motivating application (Section 1) and its Section 7
//! future-work direction.

use yad_vashem_er::core::{
    resolve_submitters, KnowledgeGraph, PersonProfile, SubmitterResolutionConfig,
};
use yad_vashem_er::prelude::*;

fn resolved_fixture() -> (Generated, Vec<Vec<RecordId>>) {
    let generated = GenConfig::random(1_000, 55).generate();
    let config = PipelineConfig::default();
    let blocked = mfi_blocks(&generated.dataset, &config.blocking);
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 8);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&generated.dataset, &labelled, &config);
    let resolution = pipeline.resolve(&generated.dataset, &config);
    let entities = resolution.entities(0.5);
    (generated, entities)
}

#[test]
fn every_resolved_entity_yields_a_narrative() {
    let (generated, entities) = resolved_fixture();
    assert!(!entities.is_empty());
    for entity in entities.iter().take(50) {
        let profile = PersonProfile::build(&generated.dataset, entity);
        let text = profile.narrative();
        assert!(text.contains("report(s)"), "narrative should cite its evidence: {text}");
        assert!(
            text.split('.').count() >= 2,
            "narrative should have at least a couple of sentences: {text}"
        );
        let graph = KnowledgeGraph::from_profile(&profile);
        // Multi-record entities of the generator always carry names, so
        // the graph is non-trivial.
        assert!(!graph.is_empty(), "graph empty for {entity:?}");
    }
}

#[test]
fn narrative_support_counts_are_bounded_by_entity_size() {
    let (generated, entities) = resolved_fixture();
    for entity in entities.iter().take(50) {
        let profile = PersonProfile::build(&generated.dataset, entity);
        for attested in profile.first_names.iter().chain(&profile.last_names) {
            assert!(attested.support >= 1);
            assert!(attested.support <= entity.len() + entity.len()); // multi-valued names
        }
        for year in &profile.birth_years {
            assert!(year.support <= entity.len());
        }
    }
}

#[test]
fn submitter_resolution_deflates_the_source_count() {
    let generated = GenConfig::random(2_000, 91).generate();
    let clusters =
        resolve_submitters(&generated.dataset, &SubmitterResolutionConfig::default());
    let raw = generated.dataset.sources().iter().filter(|s| s.is_testimony()).count();
    let resolved = clusters.len();
    assert!(resolved <= raw);
    assert!(resolved > 0);
    // Every testimony source appears in exactly one cluster.
    let total: usize = clusters.iter().map(|c| c.sources.len()).sum();
    assert_eq!(total, raw);
}

#[test]
fn submitter_clusters_share_surnames() {
    let generated = GenConfig::random(2_000, 91).generate();
    let clusters =
        resolve_submitters(&generated.dataset, &SubmitterResolutionConfig::default());
    for cluster in clusters.iter().filter(|c| c.sources.len() > 1).take(20) {
        let initials: std::collections::HashSet<char> = cluster
            .sources
            .iter()
            .filter_map(|&s| match &generated.dataset.source(s).kind {
                yad_vashem_er::records::SourceKind::Testimony { last_name, .. } => {
                    last_name.to_lowercase().chars().next()
                }
                yad_vashem_er::records::SourceKind::List { .. } => None,
            })
            .collect();
        assert_eq!(initials.len(), 1, "clusters never cross last-name-initial blocks");
    }
}
