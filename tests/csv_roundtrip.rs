//! CSV interchange: a generated dataset exported and re-imported must
//! behave identically through the blocking pipeline — the adoption path
//! for running the toolkit on real (non-synthetic) data.

use yad_vashem_er::prelude::*;
use yad_vashem_er::records::csv::{read_dataset, write_dataset};

#[test]
fn exported_dataset_round_trips_through_the_pipeline() {
    let gen = GenConfig::random(600, 45).generate();
    let truth: Vec<u64> = gen.dataset.record_ids().map(|r| gen.person_of(r).0).collect();
    let text = write_dataset(&gen.dataset, Some(&truth));
    let (loaded, loaded_truth) = read_dataset(&text).expect("round trip");
    assert_eq!(loaded.len(), gen.dataset.len());
    assert_eq!(loaded_truth.as_deref(), Some(truth.as_slice()));

    // Blocking over the re-imported dataset finds (almost) the gold pairs
    // the original found: the flat format drops coordinates and non-city
    // place parts, so candidate sets differ slightly, but recall of gold
    // pairs must stay in the same band.
    let config = MfiBlocksConfig::default();
    let original = mfi_blocks(&gen.dataset, &config);
    let imported = mfi_blocks(&loaded, &config);
    let gold: std::collections::HashSet<_> = gen.matching_pairs().into_iter().collect();
    let recall = |pairs: &[(RecordId, RecordId)]| {
        pairs.iter().filter(|p| gold.contains(*p)).count() as f64 / gold.len() as f64
    };
    let r_orig = recall(&original.candidate_pairs);
    let r_import = recall(&imported.candidate_pairs);
    assert!(
        (r_orig - r_import).abs() < 0.15,
        "imported recall should track the original: {r_orig:.3} vs {r_import:.3}"
    );
}

#[test]
fn csv_export_is_stable_under_reexport() {
    let gen = GenConfig::random(300, 46).generate();
    let first = write_dataset(&gen.dataset, None);
    let (loaded, _) = read_dataset(&first).expect("parse");
    let second = write_dataset(&loaded, None);
    let (reloaded, _) = read_dataset(&second).expect("reparse");
    // Export → import → export must be a fixed point on the carried
    // fields.
    let third = write_dataset(&reloaded, None);
    assert_eq!(second, third);
}

#[test]
#[allow(clippy::needless_range_loop)] // f indexes parallel FEATURES metadata
fn features_survive_the_flat_format() {
    let gen = GenConfig::random(300, 47).generate();
    let text = write_dataset(&gen.dataset, None);
    let (loaded, _) = read_dataset(&text).expect("parse");
    // Name and date features agree between original and imported records.
    for rid in gen.dataset.record_ids().take(50) {
        let orig = extract(gen.dataset.record(rid), gen.dataset.record(rid));
        let imp = extract(loaded.record(rid), loaded.record(rid));
        for f in 0..FEATURE_COUNT {
            let name = FEATURES[f].name;
            // Geo features are legitimately dropped by the flat format;
            // place-part features beyond the city likewise.
            if name.ends_with("GeoDist")
                || name.contains("P2")
                || name.contains("P3")
                || name.contains("P4")
            {
                continue;
            }
            assert_eq!(orig.get(f), imp.get(f), "feature {name} differs for {rid:?}");
        }
    }
}
