//! Property tests on the 48-feature extractor over realistic generated
//! records: symmetry, range discipline and missing-value semantics.

use yad_vashem_er::prelude::*;
use yad_vashem_er::similarity::features::FeatureKind;

fn sample_records() -> Generated {
    GenConfig::random(500, 33).generate()
}

#[test]
#[allow(clippy::needless_range_loop)] // f indexes parallel FEATURES metadata
fn extraction_is_symmetric() {
    let gen = sample_records();
    let n = gen.dataset.len();
    for k in 0..400usize {
        let a = RecordId((k * 7 % n) as u32);
        let b = RecordId((k * 13 + 1) as u32 % n as u32);
        let ab = extract(gen.dataset.record(a), gen.dataset.record(b));
        let ba = extract(gen.dataset.record(b), gen.dataset.record(a));
        for f in 0..FEATURE_COUNT {
            match (ab.get(f), ba.get(f)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "feature {} asymmetric: {x} vs {y}",
                        FEATURES[f].name
                    );
                }
                (x, y) => panic!(
                    "feature {} presence asymmetric: {x:?} vs {y:?}",
                    FEATURES[f].name
                ),
            }
        }
    }
}

#[test]
fn feature_ranges_respect_their_kinds() {
    let gen = sample_records();
    let n = gen.dataset.len() as u32;
    for k in 0..500u32 {
        let a = RecordId(k % n);
        let b = RecordId((k * 3 + 1) % n);
        let fv = extract(gen.dataset.record(a), gen.dataset.record(b));
        for (f, value) in fv.iter_present() {
            match FEATURES[f].kind {
                FeatureKind::Trinary => {
                    assert!(
                        [0.0, 0.5, 1.0].iter().any(|&t| (value - t).abs() < 1e-12),
                        "{} = {value}",
                        FEATURES[f].name
                    );
                }
                FeatureKind::Binary => {
                    assert!(value == 0.0 || value == 1.0, "{} = {value}", FEATURES[f].name);
                }
                FeatureKind::Similarity => {
                    assert!((0.0..=1.0).contains(&value), "{} = {value}", FEATURES[f].name);
                }
                FeatureKind::Distance => {
                    assert!(value >= 0.0, "{} = {value}", FEATURES[f].name);
                }
            }
        }
    }
}

#[test]
fn self_comparison_is_maximal() {
    let gen = sample_records();
    for k in 0..50u32 {
        let r = RecordId(k);
        let fv = extract(gen.dataset.record(r), gen.dataset.record(r));
        for (f, value) in fv.iter_present() {
            // crossMaidenLast compares one record's maiden name with the
            // *other's* current surname; for a married woman it is
            // legitimately 0 on self-comparison.
            if FEATURES[f].name == "crossMaidenLast" {
                continue;
            }
            match FEATURES[f].kind {
                FeatureKind::Trinary | FeatureKind::Binary => {
                    assert!(
                        (value - 1.0).abs() < 1e-12,
                        "self-compare {} = {value}",
                        FEATURES[f].name
                    );
                }
                FeatureKind::Similarity => {
                    assert!((value - 1.0).abs() < 1e-12, "{} = {value}", FEATURES[f].name);
                }
                FeatureKind::Distance => {
                    assert!(value.abs() < 1e-12, "{} = {value}", FEATURES[f].name);
                }
            }
        }
    }
}

#[test]
fn gold_pairs_score_higher_than_random_pairs() {
    // Aggregate separation: the mean present-feature "goodness" of true
    // matches must exceed random pairs — the signal the ADT learns from.
    let gen = sample_records();
    let gold = gen.matching_pairs();
    let present_avg = |a: RecordId, b: RecordId| {
        let fv = extract(gen.dataset.record(a), gen.dataset.record(b));
        let sims: Vec<f64> = fv
            .iter_present()
            .filter(|&(f, _)| {
                matches!(FEATURES[f].kind, FeatureKind::Similarity | FeatureKind::Trinary)
            })
            .map(|(_, v)| v)
            .collect();
        sims.iter().sum::<f64>() / sims.len().max(1) as f64
    };
    let gold_mean: f64 = gold.iter().take(200).map(|&(a, b)| present_avg(a, b)).sum::<f64>()
        / gold.len().min(200) as f64;
    let n = gen.dataset.len() as u32;
    let random_mean: f64 = (0..200u32)
        .map(|k| present_avg(RecordId(k % n), RecordId((k * 17 + 5) % n)))
        .sum::<f64>()
        / 200.0;
    assert!(
        gold_mean > random_mean + 0.2,
        "gold {gold_mean:.3} vs random {random_mean:.3}"
    );
}
