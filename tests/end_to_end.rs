//! Cross-crate integration tests: the full uncertain-ER pipeline from
//! generated reports to ranked, certainty-tunable entities.

use std::collections::HashSet;
use yad_vashem_er::prelude::*;

fn fixture() -> (Generated, Pipeline, PipelineConfig, Resolution) {
    let generated = GenConfig::random(1_200, 77).generate();
    let config = PipelineConfig::default();
    let blocked = mfi_blocks(&generated.dataset, &config.blocking);
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 9);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&generated.dataset, &labelled, &config);
    let resolution = pipeline.resolve(&generated.dataset, &config);
    (generated, pipeline, config, resolution)
}

#[test]
fn pipeline_recovers_most_duplicates_with_high_purity() {
    let (generated, _, _, resolution) = fixture();
    let crisp: Vec<RankedMatch> = resolution.crisp_matches().collect();
    assert!(!crisp.is_empty());
    let correct = crisp.iter().filter(|m| generated.is_match(m.a, m.b)).count();
    let purity = correct as f64 / crisp.len() as f64;
    assert!(purity > 0.85, "crisp-match purity {purity}");

    // The positive-score matches recover a substantial share of the
    // reachable gold pairs.
    let gold: HashSet<(RecordId, RecordId)> = generated.matching_pairs().into_iter().collect();
    let recalled = crisp.iter().filter(|m| gold.contains(&(m.a, m.b))).count();
    let recall = recalled as f64 / gold.len() as f64;
    assert!(recall > 0.25, "end-to-end recall {recall}");
}

#[test]
fn certainty_knob_is_monotone() {
    let (_, _, _, resolution) = fixture();
    let mut last = usize::MAX;
    for certainty in [-2.0, -1.0, 0.0, 1.0, 2.0, 4.0] {
        let n = resolution.at_certainty(certainty).count();
        assert!(n <= last, "certainty {certainty} returned more matches than a looser one");
        last = n;
    }
}

#[test]
fn entities_partition_within_threshold() {
    let (_, _, _, resolution) = fixture();
    let entities = resolution.entities(0.0);
    let mut seen: HashSet<RecordId> = HashSet::new();
    for entity in &entities {
        assert!(entity.len() >= 2);
        for &r in entity {
            assert!(seen.insert(r), "record {r:?} appears in two entities");
        }
    }
}

#[test]
fn family_granularity_broadens_entities() {
    let generated = GenConfig::random(900, 13).generate();
    let person_pairs =
        mfi_blocks(&generated.dataset, &Granularity::Person.blocking()).candidate_pairs;
    let family_pairs =
        mfi_blocks(&generated.dataset, &Granularity::Family.blocking()).candidate_pairs;
    assert!(
        family_pairs.len() > person_pairs.len(),
        "family blocking should admit more pairs ({} vs {})",
        family_pairs.len(),
        person_pairs.len()
    );
    // Family pairs are enriched in same-family relations even where the
    // person differs (the Capelluto effect).
    let cross_person_family = family_pairs
        .iter()
        .filter(|&&(a, b)| !generated.is_match(a, b) && generated.same_family(a, b))
        .count();
    assert!(cross_person_family > 0, "sibling pairs should appear at family granularity");
}

#[test]
fn same_src_filter_respects_the_source_model() {
    let (generated, pipeline, mut config, _) = fixture();
    config.same_src_discard = true;
    let resolution = pipeline.resolve(&generated.dataset, &config);
    for m in &resolution.matches {
        assert_ne!(
            generated.dataset.record(m.a).source,
            generated.dataset.record(m.b).source
        );
    }
}

#[test]
fn query_interface_expands_through_entities() {
    let (generated, _, _, resolution) = fixture();
    // Take a known duplicated person and query by their name.
    let (a, b) = generated.matching_pairs()[0];
    let seed = generated.dataset.record(a);
    let query = PersonQuery {
        first_name: seed.first_names.first().cloned(),
        last_name: seed.last_names.first().cloned(),
        certainty: -5.0,
        ..PersonQuery::default()
    };
    let hits = query.run(&generated.dataset, &resolution);
    assert!(!hits.is_empty(), "the seed record itself must match its own name");
    let _ = b;
}

#[test]
fn ranked_output_is_sorted_and_normalized() {
    let (_, _, _, resolution) = fixture();
    for w in resolution.matches.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    for m in &resolution.matches {
        assert!(m.a < m.b);
    }
}
