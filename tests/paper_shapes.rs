//! Shape regression tests: the qualitative results of the paper's
//! evaluation must keep holding at quick scale (who wins, in which
//! direction the knobs move). These are the claims EXPERIMENTS.md records
//! at full scale.

use yad_vashem_er::eval::experiments::{blocking_comparison, conditions, sweep, Context, Scale};
use yad_vashem_er::prelude::*;

fn ctx() -> Context {
    Context::build(Scale::quick())
}

#[test]
fn table9_filters_trade_recall_for_precision() {
    let ctx = ctx();
    let rows = conditions::measure(&ctx);
    let get = |c: Condition| rows.iter().find(|r| r.condition == c).unwrap().quality;
    let ew = get(Condition::ExpertWeighting);
    let same_src = get(Condition::SameSrc);
    let cls = get(Condition::Cls);
    let both = get(Condition::SameSrcCls);
    // Expert weighting is the recall-friendly blocking the filters build on.
    assert!(same_src.precision > ew.precision);
    assert!(same_src.recall < ew.recall);
    assert!(cls.precision > ew.precision);
    // The combined filter is the most precise configuration.
    assert!(both.precision >= same_src.precision - 1e-9);
    assert!(both.precision >= cls.precision * 0.8);
    // And the filtered configurations beat Base on F-1 (paper: 0.279 →
    // 0.427).
    let base = get(Condition::Base);
    assert!(both.f1 > base.f1 * 0.9, "both {} vs base {}", both.f1, base.f1);
}

#[test]
fn table9_expert_sim_hurts() {
    let ctx = ctx();
    let rows = conditions::measure(&ctx);
    let get = |c: Condition| rows.iter().find(|r| r.condition == c).unwrap().quality;
    // The non-monotonic hand-crafted similarity is worse than expert
    // weighting on F-1 (the paper's surprising negative result).
    assert!(get(Condition::ExpertSim).f1 < get(Condition::ExpertWeighting).f1);
}

#[test]
fn table10_baselines_recall_high_precision_tiny() {
    let ctx = ctx();
    let rows = blocking_comparison::measure(&ctx);
    let mfi = rows.iter().find(|r| r.name == "MFIBlocks").unwrap();
    for name in ["StBl", "ACl", "QGBl", "EQGBl", "ESoNe"] {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert!(row.recall > 0.9, "{name} recall {}", row.recall);
        assert!(
            mfi.precision > row.precision * 20.0,
            "MFIBlocks should dominate {name} precision by orders of magnitude \
             ({} vs {})",
            mfi.precision,
            row.precision
        );
    }
}

#[test]
fn fig15_f1_peaks_at_intermediate_ng() {
    let ctx = ctx();
    let points = sweep::measure(&ctx);
    // For MaxMinSup = 5, the middle NG must beat at least one extreme —
    // the single-peak shape of Figure 15.
    let series: Vec<f64> = points
        .iter()
        .filter(|p| p.max_minsup == 5)
        .map(|p| p.quality.f1)
        .collect();
    assert!(series.len() >= 3);
    let first = series[0];
    let mid = series[series.len() / 2];
    let last = *series.last().unwrap();
    assert!(
        mid >= first.min(last),
        "middle NG should not be the global minimum: {first} {mid} {last}"
    );
}

#[test]
fn fig16_precision_falls_as_ng_grows() {
    let ctx = ctx();
    let points = sweep::measure(&ctx);
    for &m in &ctx.scale.sweep_minsups {
        let series: Vec<f64> = points
            .iter()
            .filter(|p| p.max_minsup == m)
            .map(|p| p.quality.precision)
            .collect();
        assert!(
            series.first().unwrap() > series.last().unwrap(),
            "precision should fall from tightest to loosest NG (minsup {m}): {series:?}"
        );
    }
}
