//! # yv-adt
//!
//! Alternating decision trees (Freund & Mason, ICML 1999) — the classifier
//! the paper uses to turn MFIBlocks candidate pairs into **ranked**
//! resolutions (Section 4.2).
//!
//! An ADTree alternates *prediction nodes* (real-valued confidence
//! contributions) with *splitter nodes* (threshold conditions). An
//! instance's score is the sum of the prediction values on **all** root
//! paths whose conditions it satisfies; classification is the sign of the
//! score, and the raw score serves as the ranking confidence. Three
//! properties make the ADTree the right fit for this dataset:
//!
//! * **missing values are handled gracefully** — a splitter whose feature
//!   is absent simply contributes nothing, so the schema-sparse multi-source
//!   records of the Names Project do not need imputation;
//! * **interpretability** — the boosted tree stays small (the paper's final
//!   models keep 8–10 of the 48 features; see Tables 7–8);
//! * **ranking** — dropping the sign yields the confidence score used for
//!   certainty-tunable querying.
//!
//! Training follows the boosting formulation: each round adds the
//! (precondition, condition) pair minimizing the Z-criterion
//! `2·(√(W₊(p∧c)W₋(p∧c)) + √(W₊(p∧¬c)W₋(p∧¬c))) + W(¬p)` and reweights
//! instances by `exp(-y·r(x))`.

pub mod condition;
pub mod instance;
pub mod persist;
pub mod render;
pub mod train;
pub mod tree;

pub use condition::Condition;
pub use instance::TrainSet;
pub use persist::{from_text, to_text, PersistError};
pub use train::{train, TrainConfig};
pub use tree::{AdTree, Anchor, Splitter};
