//! The alternating decision tree structure and its scorer.

use crate::condition::Condition;
use serde::{Deserialize, Serialize};

/// Where a splitter attaches: the root prediction node or one of the two
/// prediction nodes of an earlier splitter. Several splitters may share an
/// anchor — that is what makes the tree *alternating* (Figure 6 of the
/// paper shows a prediction node with two splitter children).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anchor {
    Root,
    /// `(splitter index, branch)` — `branch` is `true` for the
    /// condition-satisfied prediction node.
    Node(usize, bool),
}

/// One splitter with its two prediction nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Splitter {
    pub anchor: Anchor,
    pub condition: Condition,
    /// Prediction value when the condition holds.
    pub yes_value: f64,
    /// Prediction value when it does not.
    pub no_value: f64,
}

/// An alternating decision tree: a root prediction value plus an ordered
/// list of splitters whose anchors always point at earlier splitters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdTree {
    pub root_value: f64,
    pub splitters: Vec<Splitter>,
}

impl AdTree {
    /// A trivial tree that scores every instance with the prior.
    #[must_use]
    pub fn prior(root_value: f64) -> Self {
        AdTree { root_value, splitters: Vec::new() }
    }

    /// Number of splitter nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.splitters.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.splitters.is_empty()
    }

    /// The confidence score of an instance: the sum of the prediction
    /// values on every reachable path. Splitters whose feature is missing
    /// contribute nothing and block their subtrees.
    #[must_use]
    pub fn score(&self, row: &[Option<f64>]) -> f64 {
        let mut score = self.root_value;
        // reachable[i] = Some(branch outcome) if splitter i's condition was
        // evaluated (anchor active), None otherwise.
        let mut outcome: Vec<Option<bool>> = vec![None; self.splitters.len()];
        for (i, s) in self.splitters.iter().enumerate() {
            let anchored = match s.anchor {
                Anchor::Root => true,
                Anchor::Node(j, branch) => {
                    debug_assert!(j < i, "anchors must reference earlier splitters");
                    outcome[j] == Some(branch)
                }
            };
            if anchored {
                if let Some(satisfied) = s.condition.eval(row) {
                    outcome[i] = Some(satisfied);
                    score += if satisfied { s.yes_value } else { s.no_value };
                }
            }
        }
        score
    }

    /// Binary classification: scores above zero are matches (the paper's
    /// default decision rule, Section 5.2).
    #[must_use]
    pub fn classify(&self, row: &[Option<f64>]) -> bool {
        self.score(row) > 0.0
    }

    /// The distinct features used by the tree's splitters (the paper
    /// reports its models use 8–10 of the 48 features).
    #[must_use]
    pub fn features_used(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self.splitters.iter().map(|s| s.condition.feature).collect();
        f.sort_unstable();
        f.dedup();
        f
    }

    /// Append a splitter; used by the trainer. Panics when the anchor
    /// references a not-yet-existing splitter.
    pub fn push(&mut self, splitter: Splitter) {
        if let Anchor::Node(j, _) = splitter.anchor {
            assert!(j < self.splitters.len(), "dangling anchor {j}");
        }
        self.splitters.push(splitter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figure 5(b): root +0.5, splitter `a < 4.5`
    /// (yes: -0.7, no: +0.2 — encoded to reproduce sign(+0.5-0.7-0.2)=-1
    /// for (a,b)=(3.9,0.9)), nested splitter `b < 1.0` under the yes branch
    /// (yes: -0.2, no: +0.4).
    fn figure5_tree() -> AdTree {
        let mut t = AdTree::prior(0.5);
        t.push(Splitter {
            anchor: Anchor::Root,
            condition: Condition::new(0, 4.5),
            yes_value: -0.7,
            no_value: 0.2,
        });
        t.push(Splitter {
            anchor: Anchor::Node(0, true),
            condition: Condition::new(1, 1.0),
            yes_value: -0.2,
            no_value: 0.4,
        });
        t
    }

    #[test]
    fn figure5_example_scores() {
        let t = figure5_tree();
        // (a, b) = (3.9, 0.9): +0.5 - 0.7 - 0.2 = -0.4 => class -1.
        let row = [Some(3.9), Some(0.9)];
        assert!((t.score(&row) - (-0.4)).abs() < 1e-12);
        assert!(!t.classify(&row));
        // (a, b) = (5.0, 0.9): the nested splitter is unreachable.
        let row2 = [Some(5.0), Some(0.9)];
        assert!((t.score(&row2) - 0.7).abs() < 1e-12);
        assert!(t.classify(&row2));
    }

    #[test]
    fn figure6_multiple_splitters_per_prediction_node() {
        // Add a second splitter anchored at the root (the "alternating"
        // case): contributions accumulate across sibling splitters.
        let mut t = figure5_tree();
        t.push(Splitter {
            anchor: Anchor::Root,
            condition: Condition::new(1, 2.0),
            yes_value: 0.3,
            no_value: -0.1,
        });
        let row = [Some(3.9), Some(0.9)];
        // 0.5 - 0.7 - 0.2 + 0.3 = -0.1.
        assert!((t.score(&row) - (-0.1)).abs() < 1e-12);
    }

    #[test]
    fn missing_feature_blocks_subtree() {
        let t = figure5_tree();
        // `a` missing: only the root contributes.
        let row = [None, Some(0.9)];
        assert!((t.score(&row) - 0.5).abs() < 1e-12);
        // `b` missing: root + first splitter contribute.
        let row2 = [Some(3.9), None];
        assert!((t.score(&row2) - (0.5 - 0.7)).abs() < 1e-12);
    }

    #[test]
    fn features_used_dedups() {
        let t = figure5_tree();
        assert_eq!(t.features_used(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "dangling anchor")]
    fn dangling_anchor_panics() {
        let mut t = AdTree::prior(0.0);
        t.push(Splitter {
            anchor: Anchor::Node(3, true),
            condition: Condition::new(0, 0.0),
            yes_value: 0.0,
            no_value: 0.0,
        });
    }

    #[test]
    fn prior_tree_scores_constant() {
        let t = AdTree::prior(-0.29);
        assert!((t.score(&[None, None]) - (-0.29)).abs() < 1e-12);
        assert!(!t.classify(&[Some(1.0)]));
    }
}
