//! Splitter conditions: threshold tests over a single feature with
//! three-valued evaluation (true / false / missing).

use serde::{Deserialize, Serialize};

/// A threshold condition `value(feature) < threshold`.
///
/// Trinary and binary features are handled by the same mechanism: e.g. the
/// paper's `sameFFN = no` corresponds to `sameFFN < 0.25` over our encoding
/// (no = 0, partial = 0.5, yes = 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    pub feature: usize,
    pub threshold: f64,
}

impl Condition {
    #[must_use]
    pub fn new(feature: usize, threshold: f64) -> Self {
        Condition { feature, threshold }
    }

    /// Evaluate against a row of optional feature values: `None` when the
    /// feature is missing (the instance then reaches neither branch —
    /// Freund & Mason's graceful missing-value handling).
    #[must_use]
    pub fn eval(&self, row: &[Option<f64>]) -> Option<bool> {
        row[self.feature].map(|v| v < self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_three_ways() {
        let c = Condition::new(1, 0.5);
        assert_eq!(c.eval(&[None, Some(0.3)]), Some(true));
        assert_eq!(c.eval(&[None, Some(0.7)]), Some(false));
        assert_eq!(c.eval(&[Some(0.0), None]), None);
    }

    #[test]
    fn boundary_is_exclusive() {
        let c = Condition::new(0, 1.0);
        assert_eq!(c.eval(&[Some(1.0)]), Some(false));
        assert_eq!(c.eval(&[Some(0.999_999)]), Some(true));
    }
}
