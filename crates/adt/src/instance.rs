//! Training instances: rows of optional feature values plus ±1 labels.

/// A labelled training set. Rows are dense per instance but individual
/// feature values may be missing (`None`), mirroring the schema-sparse
/// feature vectors of the Yad Vashem pipeline.
#[derive(Debug, Clone, Default)]
pub struct TrainSet {
    rows: Vec<Vec<Option<f64>>>,
    labels: Vec<i8>,
    n_features: usize,
}

impl TrainSet {
    /// Create an empty training set over `n_features` features.
    #[must_use]
    pub fn new(n_features: usize) -> Self {
        TrainSet { rows: Vec::new(), labels: Vec::new(), n_features }
    }

    /// Add an instance. `label` must be `+1` (match) or `-1` (non-match);
    /// `row.len()` must equal the feature count.
    pub fn push(&mut self, row: Vec<Option<f64>>, label: i8) {
        assert!(label == 1 || label == -1, "label must be ±1, got {label}");
        assert_eq!(row.len(), self.n_features, "row arity mismatch");
        self.rows.push(row);
        self.labels.push(label);
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature value of instance `i` (row-major access).
    #[must_use]
    pub fn value(&self, i: usize, feature: usize) -> Option<f64> {
        self.rows[i][feature]
    }

    #[must_use]
    pub fn label(&self, i: usize) -> i8 {
        self.labels[i]
    }

    #[must_use]
    pub fn row(&self, i: usize) -> &[Option<f64>] {
        &self.rows[i]
    }

    /// Count of positive instances.
    #[must_use]
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1).count()
    }

    /// Split into (train, test) by taking every `k`-th instance as test —
    /// a deterministic stratification-free holdout used by the experiment
    /// harness's cross-validation loop.
    #[must_use]
    pub fn fold(&self, k: usize, fold: usize) -> (TrainSet, TrainSet) {
        assert!(k >= 2, "need at least 2 folds");
        let mut train = TrainSet::new(self.n_features);
        let mut test = TrainSet::new(self.n_features);
        for i in 0..self.len() {
            if i % k == fold % k {
                test.push(self.rows[i].clone(), self.labels[i]);
            } else {
                train.push(self.rows[i].clone(), self.labels[i]);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut ts = TrainSet::new(2);
        ts.push(vec![Some(1.0), None], 1);
        ts.push(vec![Some(0.0), Some(3.0)], -1);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.value(0, 1), None);
        assert_eq!(ts.value(1, 1), Some(3.0));
        assert_eq!(ts.label(0), 1);
        assert_eq!(ts.positives(), 1);
    }

    #[test]
    #[should_panic(expected = "label must be ±1")]
    fn bad_label_panics() {
        let mut ts = TrainSet::new(1);
        ts.push(vec![Some(0.0)], 0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn bad_arity_panics() {
        let mut ts = TrainSet::new(2);
        ts.push(vec![Some(0.0)], 1);
    }

    #[test]
    fn folds_partition_instances() {
        let mut ts = TrainSet::new(1);
        for i in 0..10 {
            ts.push(vec![Some(i as f64)], if i % 2 == 0 { 1 } else { -1 });
        }
        let (train, test) = ts.fold(5, 2);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(test.len(), 2);
        // Instances 2 and 7 are in the test fold.
        assert_eq!(test.value(0, 0), Some(2.0));
        assert_eq!(test.value(1, 0), Some(7.0));
    }
}
