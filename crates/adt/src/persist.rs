//! Plain-text persistence for trained models.
//!
//! The deployed system trains once and scores at run time (Figure 9's
//! "ADT model" box); a model therefore needs to survive process restarts.
//! The format is a line-oriented text file — human-diffable, versioned,
//! dependency-free:
//!
//! ```text
//! yv-adt v1
//! root 0.123456789
//! splitter root 3 0.5 0.25 -0.75
//! splitter 0 true 7 0.728 1.5 -0.2
//! ```
//!
//! Each `splitter` line is: anchor (`root` or `<index> <branch>`), feature
//! index, threshold, yes-value, no-value.

use crate::condition::Condition;
use crate::tree::{AdTree, Anchor, Splitter};

/// Errors produced while reading a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    BadHeader,
    MissingRoot,
    BadLine(usize),
    DanglingAnchor(usize),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "not a yv-adt v1 model file"),
            PersistError::MissingRoot => write!(f, "missing root line"),
            PersistError::BadLine(n) => write!(f, "malformed line {n}"),
            PersistError::DanglingAnchor(n) => {
                write!(f, "line {n}: anchor references a later splitter")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize a tree to the v1 text format.
#[must_use]
pub fn to_text(tree: &AdTree) -> String {
    let mut out = String::from("yv-adt v1\n");
    // `{:?}` prints the shortest decimal that parses back to the exact
    // f64; fixed precision (`{:.17}`) drops significant digits on values
    // with leading zeros and breaks the exact round-trip.
    out.push_str(&format!("root {:?}\n", tree.root_value));
    for s in &tree.splitters {
        let anchor = match s.anchor {
            Anchor::Root => "root".to_owned(),
            Anchor::Node(idx, branch) => format!("{idx} {branch}"),
        };
        out.push_str(&format!(
            "splitter {anchor} {} {:?} {:?} {:?}\n",
            s.condition.feature, s.condition.threshold, s.yes_value, s.no_value
        ));
    }
    out
}

/// Parse the v1 text format back into a tree.
pub fn from_text(text: &str) -> Result<AdTree, PersistError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(PersistError::BadHeader)?;
    if header.trim() != "yv-adt v1" {
        return Err(PersistError::BadHeader);
    }
    let (root_no, root_line) = lines.next().ok_or(PersistError::MissingRoot)?;
    let root_value = root_line
        .trim()
        .strip_prefix("root ")
        .and_then(|v| v.parse::<f64>().ok())
        .ok_or(PersistError::BadLine(root_no + 1))?;
    let mut tree = AdTree::prior(root_value);
    for (no, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let bad = || PersistError::BadLine(no + 1);
        let splitter = match parts.as_slice() {
            ["splitter", "root", feature, threshold, yes, no_value] => Splitter {
                anchor: Anchor::Root,
                condition: Condition::new(
                    feature.parse().map_err(|_| bad())?,
                    threshold.parse().map_err(|_| bad())?,
                ),
                yes_value: yes.parse().map_err(|_| bad())?,
                no_value: no_value.parse().map_err(|_| bad())?,
            },
            ["splitter", idx, branch, feature, threshold, yes, no_value] => {
                let idx: usize = idx.parse().map_err(|_| bad())?;
                if idx >= tree.len() {
                    return Err(PersistError::DanglingAnchor(no + 1));
                }
                Splitter {
                    anchor: Anchor::Node(idx, branch.parse().map_err(|_| bad())?),
                    condition: Condition::new(
                        feature.parse().map_err(|_| bad())?,
                        threshold.parse().map_err(|_| bad())?,
                    ),
                    yes_value: yes.parse().map_err(|_| bad())?,
                    no_value: no_value.parse().map_err(|_| bad())?,
                }
            }
            _ => return Err(bad()),
        };
        tree.push(splitter);
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TrainSet;
    use crate::train::{train, TrainConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_tree() -> AdTree {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ts = TrainSet::new(3);
        for _ in 0..300 {
            let x: f64 = rng.gen();
            let y: f64 = rng.gen();
            let label = if x > 0.5 && y < 0.4 { 1 } else { -1 };
            let x_val = if rng.gen_bool(0.2) { None } else { Some(x) };
            ts.push(vec![x_val, Some(y), None], label);
        }
        train(&ts, &TrainConfig::default())
    }

    #[test]
    fn round_trip_preserves_scores_exactly() {
        let tree = trained_tree();
        let text = to_text(&tree);
        let loaded = from_text(&text).expect("round trip");
        assert_eq!(loaded.len(), tree.len());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let row = vec![
                if rng.gen_bool(0.8) { Some(rng.gen::<f64>()) } else { None },
                Some(rng.gen::<f64>()),
                None,
            ];
            assert_eq!(tree.score(&row), loaded.score(&row));
        }
    }

    #[test]
    fn header_is_validated() {
        assert_eq!(from_text(""), Err(PersistError::BadHeader));
        assert_eq!(from_text("something else\nroot 0.0\n"), Err(PersistError::BadHeader));
        assert_eq!(from_text("yv-adt v1\n"), Err(PersistError::MissingRoot));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let text = "yv-adt v1\nroot 0.5\nsplitter root nonsense 0.1 0.2 0.3\n";
        assert!(matches!(from_text(text), Err(PersistError::BadLine(3))));
        let dangling = "yv-adt v1\nroot 0.5\nsplitter 4 true 0 0.1 0.2 0.3\n";
        assert!(matches!(from_text(dangling), Err(PersistError::DanglingAnchor(3))));
    }

    #[test]
    fn prior_only_model_round_trips() {
        let tree = AdTree::prior(-0.125);
        let loaded = from_text(&to_text(&tree)).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.root_value, -0.125);
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let tree = trained_tree();
        let mut text = to_text(&tree);
        text.push_str("\n\n");
        assert!(from_text(&text).is_ok());
    }
}
