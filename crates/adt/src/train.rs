//! The boosting trainer for alternating decision trees.
//!
//! Each round scans every (precondition anchor, feature, threshold)
//! candidate and adds the splitter minimizing the Z-criterion; instance
//! weights are then multiplied by `exp(-y·r(x))` where `r` is the new
//! splitter's contribution. Instances whose feature is missing at a
//! splitter are counted as reaching neither branch and keep their weight —
//! the ADTree missing-value semantics.

use crate::condition::Condition;
use crate::instance::TrainSet;
use crate::tree::{AdTree, Anchor, Splitter};

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Boosting rounds = splitter nodes added (the paper's models have
    /// about ten).
    pub rounds: usize,
    /// Cap on candidate thresholds per feature (midpoints are subsampled
    /// evenly beyond the cap).
    pub max_thresholds: usize,
    /// Laplace smoothing added to the weight sums inside prediction-value
    /// logarithms.
    pub epsilon: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { rounds: 10, max_thresholds: 48, epsilon: 1.0 }
    }
}

/// Train an ADTree on a labelled set. Returns the prior-only tree when the
/// set is empty or single-class and no useful split exists.
#[must_use]
pub fn train(data: &TrainSet, config: &TrainConfig) -> AdTree {
    let n = data.len();
    let mut weights = vec![1.0f64; n];

    let (wp, wn) = class_weights(data, &weights, &(0..n).collect::<Vec<_>>());
    let root_value = 0.5 * ((wp + config.epsilon) / (wn + config.epsilon)).ln();
    let mut tree = AdTree::prior(root_value);
    for (i, w) in weights.iter_mut().enumerate() {
        *w *= (-f64::from(data.label(i)) * root_value).exp();
    }

    // Per-feature instance order, sorted by value once up front; the
    // per-round scans then run in linear time instead of re-sorting.
    let sorted_columns: Vec<Vec<u32>> = (0..data.n_features())
        .map(|f| {
            let mut idx: Vec<u32> = (0..n as u32)
                .filter(|&i| data.value(i as usize, f).is_some())
                .collect();
            idx.sort_by(|&a, &b| {
                // Both values are present (filtered above); total_cmp also
                // gives NaN a stable position instead of a panic.
                let va = data.value(a as usize, f).unwrap_or(f64::NAN);
                let vb = data.value(b as usize, f).unwrap_or(f64::NAN);
                va.total_cmp(&vb)
            });
            idx
        })
        .collect();

    // Instances anchored at each prediction node; index 0 is the root.
    let mut anchors: Vec<(Anchor, Vec<usize>)> = vec![(Anchor::Root, (0..n).collect())];
    let mut member_mask = vec![false; n];

    for _ in 0..config.rounds {
        let total_weight: f64 = weights.iter().sum();
        let mut best: Option<(f64, usize, Condition, BranchWeights)> = None;

        for (anchor_idx, (_, members)) in anchors.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let member_weight: f64 = members.iter().map(|&i| weights[i]).sum();
            let outside = total_weight - member_weight;
            for &i in members {
                member_mask[i] = true;
            }
            for (feature, sorted_column) in sorted_columns.iter().enumerate() {
                scan_feature(
                    data,
                    &weights,
                    &member_mask,
                    sorted_column,
                    feature,
                    member_weight,
                    outside,
                    config,
                    anchor_idx,
                    &mut best,
                );
            }
            for &i in members {
                member_mask[i] = false;
            }
        }

        let Some((_, anchor_idx, condition, bw)) = best else {
            break; // no splittable candidate remains
        };
        let yes_value = 0.5 * ((bw.wp_yes + config.epsilon) / (bw.wn_yes + config.epsilon)).ln();
        let no_value = 0.5 * ((bw.wp_no + config.epsilon) / (bw.wn_no + config.epsilon)).ln();
        let anchor = anchors[anchor_idx].0;
        let splitter_idx = tree.len();
        tree.push(Splitter { anchor, condition, yes_value, no_value });

        // Partition the anchor's members and reweight.
        let members = anchors[anchor_idx].1.clone();
        let mut yes_members = Vec::new();
        let mut no_members = Vec::new();
        for &i in &members {
            match condition.eval(data.row(i)) {
                Some(true) => {
                    weights[i] *= (-f64::from(data.label(i)) * yes_value).exp();
                    yes_members.push(i);
                }
                Some(false) => {
                    weights[i] *= (-f64::from(data.label(i)) * no_value).exp();
                    no_members.push(i);
                }
                None => {}
            }
        }
        anchors.push((Anchor::Node(splitter_idx, true), yes_members));
        anchors.push((Anchor::Node(splitter_idx, false), no_members));
    }
    tree
}

/// Weight sums per class for a set of instance indices.
fn class_weights(data: &TrainSet, weights: &[f64], members: &[usize]) -> (f64, f64) {
    let mut wp = 0.0;
    let mut wn = 0.0;
    for &i in members {
        if data.label(i) == 1 {
            wp += weights[i];
        } else {
            wn += weights[i];
        }
    }
    (wp, wn)
}

/// Class-weight split at a threshold candidate.
#[derive(Debug, Clone, Copy)]
struct BranchWeights {
    wp_yes: f64,
    wn_yes: f64,
    wp_no: f64,
    wn_no: f64,
}

#[allow(clippy::too_many_arguments)]
fn scan_feature(
    data: &TrainSet,
    weights: &[f64],
    member_mask: &[bool],
    sorted_column: &[u32],
    feature: usize,
    member_weight: f64,
    outside_weight: f64,
    config: &TrainConfig,
    anchor_idx: usize,
    best: &mut Option<(f64, usize, Condition, BranchWeights)>,
) {
    // Present member values with weight and label, already value-sorted.
    let present: Vec<(f64, f64, i8)> = sorted_column
        .iter()
        .filter(|&&i| member_mask[i as usize])
        .filter_map(|&i| {
            let i = i as usize;
            // Sorted columns only hold present values; filter_map keeps
            // that invariant local instead of a reachable panic.
            data.value(i, feature).map(|v| (v, weights[i], data.label(i)))
        })
        .collect();
    if present.len() < 2 {
        return;
    }
    let present_weight: f64 = present.iter().map(|&(_, w, _)| w).sum();
    let missing_weight = member_weight - present_weight;

    let total_wp: f64 = present.iter().filter(|&&(_, _, l)| l == 1).map(|&(_, w, _)| w).sum();
    let total_wn: f64 = present_weight - total_wp;

    // Candidate thresholds: midpoints between distinct consecutive values.
    let mut cut_positions: Vec<usize> = Vec::new();
    for k in 1..present.len() {
        if present[k].0 > present[k - 1].0 {
            cut_positions.push(k);
        }
    }
    if cut_positions.is_empty() {
        return;
    }
    // Subsample evenly when over the cap.
    let stride = cut_positions.len().div_ceil(config.max_thresholds);
    let mut wp_lt = 0.0;
    let mut wn_lt = 0.0;
    let mut cursor = 0usize;
    for (c_idx, &cut) in cut_positions.iter().enumerate() {
        // Accumulate weights of values below this cut.
        while cursor < cut {
            let (_, w, l) = present[cursor];
            if l == 1 {
                wp_lt += w;
            } else {
                wn_lt += w;
            }
            cursor += 1;
        }
        if c_idx % stride != 0 {
            continue;
        }
        let threshold = f64::midpoint(present[cut - 1].0, present[cut].0);
        let bw = BranchWeights {
            wp_yes: wp_lt,
            wn_yes: wn_lt,
            wp_no: total_wp - wp_lt,
            wn_no: total_wn - wn_lt,
        };
        let z = 2.0 * ((bw.wp_yes * bw.wn_yes).sqrt() + (bw.wp_no * bw.wn_no).sqrt())
            + outside_weight
            + missing_weight;
        let better = match best {
            None => true,
            Some((bz, ..)) => z < *bz - 1e-12,
        };
        if better {
            *best = Some((z, anchor_idx, Condition::new(feature, threshold), bw));
        }
    }
}

/// Training-set accuracy of a tree (fraction of instances whose sign
/// matches the label).
#[must_use]
pub fn accuracy(tree: &AdTree, data: &TrainSet) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let correct = (0..data.len())
        .filter(|&i| tree.classify(data.row(i)) == (data.label(i) == 1))
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable_set(n: usize, seed: u64) -> TrainSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TrainSet::new(3);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let noise: f64 = rng.gen();
            let label = if x0 > 0.5 { 1 } else { -1 };
            ts.push(vec![Some(x0), Some(noise), None], label);
        }
        ts
    }

    #[test]
    fn learns_a_separable_threshold() {
        let ts = separable_set(400, 7);
        let tree = train(&ts, &TrainConfig { rounds: 8, ..TrainConfig::default() });
        assert!(accuracy(&tree, &ts) > 0.99, "accuracy {}", accuracy(&tree, &ts));
        // The discriminative feature must be used.
        assert!(tree.features_used().contains(&0));
    }

    #[test]
    fn prior_sign_matches_majority() {
        let mut ts = TrainSet::new(1);
        for i in 0..10 {
            ts.push(vec![Some(i as f64)], if i < 8 { 1 } else { -1 });
        }
        let tree = train(&ts, &TrainConfig { rounds: 0, ..TrainConfig::default() });
        assert!(tree.root_value > 0.0);
        assert!(tree.is_empty());
    }

    #[test]
    fn handles_missing_values_in_training() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ts = TrainSet::new(2);
        for _ in 0..300 {
            let x0: f64 = rng.gen();
            let label = if x0 > 0.5 { 1 } else { -1 };
            // Feature 0 is missing 30% of the time; feature 1 is a weaker
            // correlate so the tree can still say something.
            let x0_val = if rng.gen_bool(0.3) { None } else { Some(x0) };
            let x1 = x0 + rng.gen_range(-0.3..0.3);
            ts.push(vec![x0_val, Some(x1)], label);
        }
        let tree = train(&ts, &TrainConfig { rounds: 6, ..TrainConfig::default() });
        assert!(accuracy(&tree, &ts) > 0.85);
        // Scoring a fully-missing row falls back to the prior.
        let s = tree.score(&[None, None]);
        assert!((s - tree.root_value).abs() < 1e-12);
    }

    #[test]
    fn learns_a_conjunction() {
        // label = +1 iff x0 > 0.5 AND x1 > 0.5 — needs a nested splitter.
        let mut rng = StdRng::seed_from_u64(13);
        let mut ts = TrainSet::new(2);
        for _ in 0..600 {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let label = if x0 > 0.5 && x1 > 0.5 { 1 } else { -1 };
            ts.push(vec![Some(x0), Some(x1)], label);
        }
        let tree = train(&ts, &TrainConfig { rounds: 6, ..TrainConfig::default() });
        assert!(accuracy(&tree, &ts) > 0.95, "accuracy {}", accuracy(&tree, &ts));
        assert!(tree.features_used().len() == 2);
    }

    #[test]
    fn empty_and_single_class_sets() {
        let ts = TrainSet::new(2);
        let tree = train(&ts, &TrainConfig::default());
        assert!(tree.is_empty());
        let mut ones = TrainSet::new(1);
        for i in 0..5 {
            ones.push(vec![Some(i as f64)], 1);
        }
        let tree = train(&ones, &TrainConfig::default());
        assert!(tree.root_value > 0.0);
        assert!((accuracy(&tree, &ones) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_rounds_never_fewer_splitters() {
        let ts = separable_set(200, 3);
        let t1 = train(&ts, &TrainConfig { rounds: 2, ..TrainConfig::default() });
        let t2 = train(&ts, &TrainConfig { rounds: 8, ..TrainConfig::default() });
        assert!(t2.len() >= t1.len());
    }

    #[test]
    fn scores_rank_confident_instances_higher() {
        let ts = separable_set(400, 21);
        let tree = train(&ts, &TrainConfig { rounds: 4, ..TrainConfig::default() });
        let hi = tree.score(&[Some(0.95), Some(0.5), None]);
        let lo = tree.score(&[Some(0.05), Some(0.5), None]);
        assert!(hi > 0.0 && lo < 0.0 && hi > lo);
    }
}
