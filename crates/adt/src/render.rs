//! Text rendering of ADTree models in the style of Tables 7–8 of the
//! paper (which follow Weka's ADTree printout).
//!
//! ```text
//! : -0.289
//! |  (1)sameFFN < 0.25: -1.314
//! |  |  (6)MFNdist < 0.728: -0.718
//! |  |  (6)MFNdist >= 0.728: 1.528
//! ...
//! ```

use crate::tree::{AdTree, Anchor};

/// Render a tree with feature names resolved through `name_of`.
#[must_use]
pub fn render(tree: &AdTree, name_of: &dyn Fn(usize) -> String) -> String {
    let mut out = format!(": {:.3}\n", tree.root_value);
    render_children(tree, Anchor::Root, 1, name_of, &mut out);
    out
}

fn render_children(
    tree: &AdTree,
    anchor: Anchor,
    depth: usize,
    name_of: &dyn Fn(usize) -> String,
    out: &mut String,
) {
    for (idx, s) in tree.splitters.iter().enumerate() {
        if s.anchor != anchor {
            continue;
        }
        let indent = "|  ".repeat(depth);
        let name = name_of(s.condition.feature);
        let order = idx + 1;
        out.push_str(&format!(
            "{indent}({order}){name} < {:.3}: {:.3}\n",
            s.condition.threshold, s.yes_value
        ));
        render_children(tree, Anchor::Node(idx, true), depth + 1, name_of, out);
        out.push_str(&format!(
            "{indent}({order}){name} >= {:.3}: {:.3}\n",
            s.condition.threshold, s.no_value
        ));
        render_children(tree, Anchor::Node(idx, false), depth + 1, name_of, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::tree::Splitter;

    #[test]
    fn renders_nested_structure() {
        let mut t = AdTree::prior(-0.289);
        t.push(Splitter {
            anchor: Anchor::Root,
            condition: Condition::new(0, 0.25),
            yes_value: -1.314,
            no_value: 0.539,
        });
        t.push(Splitter {
            anchor: Anchor::Node(0, true),
            condition: Condition::new(1, 0.728),
            yes_value: -0.718,
            no_value: 1.528,
        });
        let text = render(&t, &|f| ["sameFFN", "MFNdist"][f].to_owned());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], ": -0.289");
        assert_eq!(lines[1], "|  (1)sameFFN < 0.250: -1.314");
        assert_eq!(lines[2], "|  |  (2)MFNdist < 0.728: -0.718");
        assert_eq!(lines[3], "|  |  (2)MFNdist >= 0.728: 1.528");
        assert_eq!(lines[4], "|  (1)sameFFN >= 0.250: 0.539");
    }

    #[test]
    fn prior_only_tree() {
        let t = AdTree::prior(0.5);
        assert_eq!(render(&t, &|_| unreachable!()), ": 0.500\n");
    }
}
