//! Fixture-based end-to-end tests: each known-bad snippet under
//! `fixtures/` must fire its rule at the documented `file:line`, the
//! known-clean and suppressed snippets must not fire, and the CLI must
//! turn findings into a non-zero exit code.

use std::path::{Path, PathBuf};
use std::process::Command;
use yv_audit::{analyze_file, Rule};

fn fixture(name: &str) -> (PathBuf, String) {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let display = format!("crates/audit/fixtures/{name}");
    (disk, display)
}

fn findings_of(name: &str) -> Vec<(Rule, usize)> {
    let (disk, display) = fixture(name);
    analyze_file(&disk, &display)
        .expect("fixture readable")
        .into_iter()
        .map(|f| {
            assert_eq!(f.file, display, "finding carries the display path");
            (f.rule, f.line)
        })
        .collect()
}

#[test]
fn bad_d1_fires_at_documented_line() {
    assert_eq!(findings_of("bad_d1.rs"), vec![(Rule::D1, 7)]);
}

#[test]
fn bad_p1_fires_at_documented_line() {
    assert_eq!(findings_of("bad_p1.rs"), vec![(Rule::P1, 5)]);
}

#[test]
fn bad_f1_fires_on_precision_and_cast() {
    assert_eq!(findings_of("bad_f1.rs"), vec![(Rule::F1, 5), (Rule::F1, 9)]);
}

#[test]
fn bad_s1_fires_at_documented_line() {
    assert_eq!(findings_of("bad_s1.rs"), vec![(Rule::S1, 6)]);
}

#[test]
fn bad_a1_fires_at_documented_line() {
    assert_eq!(findings_of("bad_a1.rs"), vec![(Rule::A1, 5)]);
}

#[test]
fn a1_exemption_profile_sanctions_only_the_obs_crate() {
    // The same allocator-installing source is fine inside `crates/obs/`
    // (home of the counting allocator) and an A1 finding anywhere else.
    let (disk, _) = fixture("bad_a1.rs");
    let sanctioned =
        yv_audit::analyze_file(&disk, "crates/obs/src/alloc.rs").expect("fixture readable");
    assert_eq!(sanctioned, vec![], "yv-obs may install the global allocator");
    let elsewhere =
        yv_audit::analyze_file(&disk, "crates/cli/src/main.rs").expect("fixture readable");
    assert!(
        elsewhere.iter().any(|f| f.rule == Rule::A1),
        "every other crate stays under A1: {elsewhere:?}"
    );
}

#[test]
fn s1_exemption_profile_sanctions_only_the_obs_crate() {
    // The same wall-clock-reading source fires S1 anywhere in the
    // workspace — except under `crates/obs/`, the one crate sanctioned
    // to own `Instant::now` (it wraps it behind the injected Clock trait).
    let (disk, _) = fixture("bad_s1.rs");
    let sanctioned = yv_audit::analyze_file(&disk, "crates/obs/src/clock.rs")
        .expect("fixture readable");
    assert_eq!(sanctioned, vec![], "yv-obs may read the wall clock");
    let elsewhere = yv_audit::analyze_file(&disk, "crates/blocking/src/clock.rs")
        .expect("fixture readable");
    assert!(
        elsewhere.iter().any(|f| f.rule == Rule::S1),
        "every other crate stays under S1: {elsewhere:?}"
    );
}

#[test]
fn bad_l1_fires_on_held_guard_and_lock_order() {
    assert_eq!(findings_of("bad_l1.rs"), vec![(Rule::L1, 8), (Rule::L1, 14)]);
}

#[test]
fn good_l1_staged_io_and_ascending_locks_are_clean() {
    assert_eq!(findings_of("good_l1.rs"), vec![]);
}

#[test]
fn bad_n1_fires_on_slow_log_metrics_label_and_trace_annotation() {
    assert_eq!(
        findings_of("bad_n1.rs"),
        vec![(Rule::N1, 7), (Rule::N1, 9), (Rule::N1, 10)]
    );
}

#[test]
fn good_n1_digest_and_counts_are_clean() {
    assert_eq!(findings_of("good_n1.rs"), vec![]);
}

#[test]
fn bad_c1_fires_on_seq_and_len_narrowing() {
    assert_eq!(findings_of("bad_c1.rs"), vec![(Rule::C1, 5), (Rule::C1, 6)]);
}

#[test]
fn good_c1_try_from_is_clean() {
    assert_eq!(findings_of("good_c1.rs"), vec![]);
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(findings_of("clean.rs"), vec![]);
}

#[test]
fn allow_markers_suppress_both_placements() {
    assert_eq!(findings_of("allowed.rs"), vec![]);
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_yv-audit"))
        .args(args)
        .output()
        .expect("yv-audit binary runs");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    for name in [
        "bad_d1.rs",
        "bad_p1.rs",
        "bad_f1.rs",
        "bad_s1.rs",
        "bad_a1.rs",
        "bad_l1.rs",
        "bad_n1.rs",
        "bad_c1.rs",
    ] {
        let (_, display) = fixture(name);
        let (code, stdout) = run_cli(&["check", &display]);
        assert_eq!(code, 1, "{name} must fail the check");
        assert!(stdout.contains(&display), "{name}: diagnostics anchor the file");
    }
}

#[test]
fn cli_exits_zero_on_clean_and_suppressed() {
    for name in ["clean.rs", "allowed.rs", "good_l1.rs", "good_n1.rs", "good_c1.rs"] {
        let (_, display) = fixture(name);
        let (code, stdout) = run_cli(&["check", &display]);
        assert_eq!(code, 0, "{name} must pass: {stdout}");
        assert!(stdout.contains("audit: clean"));
    }
}

#[test]
fn cli_json_output_is_machine_readable() {
    let (_, display) = fixture("bad_p1.rs");
    let (code, stdout) = run_cli(&["check", &display, "--format=json"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"rule\":\"P1\""));
    assert!(stdout.contains("\"line\":5"));
    assert!(stdout.contains("\"count\":1"));
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn cli_sarif_output_names_rule_and_location() {
    let (_, display) = fixture("bad_l1.rs");
    let (code, stdout) = run_cli(&["check", &display, "--format", "sarif"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"version\":\"2.1.0\""));
    assert!(stdout.contains("\"ruleId\":\"L1\""));
    assert!(stdout.contains("\"startLine\":8"));
    assert!(stdout.contains(&format!("\"uri\":\"{display}\"")));
}

#[test]
fn cli_usage_error_is_exit_two() {
    let (code, _) = run_cli(&["bogus-subcommand"]);
    assert_eq!(code, 2);
}

#[test]
fn workspace_scan_is_clean() {
    // The enforcing property: the tool lands with the workspace swept.
    let (code, stdout) = run_cli(&["check"]);
    assert_eq!(code, 0, "workspace must stay audit-clean:\n{stdout}");
}
