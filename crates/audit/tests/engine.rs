//! Engine-level end-to-end tests: parallel determinism, the incremental
//! cache, baseline semantics, and the self-audit property — run against
//! small synthetic workspaces so cache/baseline files never touch the
//! real repository root.

use std::path::{Path, PathBuf};
use std::process::Command;

use yv_audit::engine::{self, EngineOptions};
use yv_audit::Rule;

/// A throwaway workspace under the system temp dir, rebuilt per test.
fn workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join("yv-audit-engine").join(name);
    let _ = std::fs::remove_dir_all(&root);
    for (rel, body) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, body).expect("write source");
    }
    root
}

const PANICKY: &str = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
const CLEAN: &str = "pub fn g(x: u32) -> u32 {\n    x + 1\n}\n";

fn opts(root: &Path) -> EngineOptions {
    EngineOptions {
        jobs: 2,
        cache_path: Some(root.join(engine::CACHE_FILE)),
        baseline_path: Some(root.join(engine::BASELINE_FILE)),
    }
}

#[test]
fn jobs_do_not_change_findings() {
    let files: Vec<(String, String)> = (0..12)
        .map(|i| {
            let body = if i % 3 == 0 { PANICKY } else { CLEAN };
            (format!("c{i}/src/lib.rs"), body.to_owned())
        })
        .collect();
    let borrowed: Vec<(&str, &str)> =
        files.iter().map(|(p, b)| (p.as_str(), b.as_str())).collect();
    let root = workspace("jobs", &borrowed);
    let base = EngineOptions { jobs: 1, cache_path: None, baseline_path: None };
    let serial = engine::run_workspace(&root, &base).expect("serial run");
    let parallel = engine::run_workspace(
        &root,
        &EngineOptions { jobs: 8, ..base },
    )
    .expect("parallel run");
    assert_eq!(serial.findings, parallel.findings, "findings are job-count invariant");
    assert_eq!(serial.findings.len(), 4, "each panicky crate fires P1 once");
}

#[test]
fn cache_is_honored_and_invalidated_by_edits() {
    let root = workspace(
        "cache",
        &[("a/src/lib.rs", PANICKY), ("b/src/lib.rs", CLEAN)],
    );
    let o = opts(&root);
    let first = engine::run_workspace(&root, &o).expect("first run");
    assert_eq!(first.cache_hits, 0, "cold cache");
    assert_eq!(first.findings.len(), 1);

    let second = engine::run_workspace(&root, &o).expect("second run");
    assert_eq!(second.cache_hits, 2, "warm cache covers every non-test file");
    assert_eq!(second.findings, first.findings, "cached findings replay exactly");

    // Edit one file: only it re-analyzes, and its finding disappears.
    std::fs::write(root.join("a/src/lib.rs"), CLEAN).expect("edit");
    let third = engine::run_workspace(&root, &o).expect("third run");
    assert_eq!(third.cache_hits, 1, "the edited file missed the cache");
    assert_eq!(third.findings, vec![], "the edit removed the P1");
}

#[test]
fn cache_is_invalidated_when_a_callee_changes_blockingness() {
    // caller.rs never changes, but its finding depends on whether
    // callee.rs's `persist_batch` blocks — the symbol digest must carry
    // that dependency into the cache key.
    let caller = "pub fn apply(m: &std::sync::Mutex<u32>) {\n    \
                  let g = m.lock();\n    persist_batch();\n    drop(g);\n}\n";
    let pure_callee = "pub fn persist_batch() {\n    let _x = 1;\n}\n";
    let blocking_callee = "pub fn persist_batch() {\n    \
                           std::fs::write(\"p\", b\"x\");\n}\n";
    let root = workspace(
        "symbol-digest",
        &[("crates/a/src/caller.rs", caller), ("crates/a/src/callee.rs", pure_callee)],
    );
    let o = opts(&root);
    let first = engine::run_workspace(&root, &o).expect("first run");
    assert_eq!(first.findings, vec![], "pure callee: no L1");

    std::fs::write(root.join("crates/a/src/callee.rs"), blocking_callee).expect("edit");
    let second = engine::run_workspace(&root, &o).expect("second run");
    assert_eq!(second.cache_hits, 0, "digest change drops the whole cache");
    assert_eq!(second.findings.len(), 1, "{:?}", second.findings);
    assert_eq!(second.findings[0].rule, Rule::L1);
    assert!(second.findings[0].file.ends_with("caller.rs"));
}

#[test]
fn baseline_accepts_known_findings_and_flags_stale_ones() {
    let root = workspace("baseline", &[("a/src/lib.rs", PANICKY)]);
    let o = opts(&root);

    let before = engine::run_workspace(&root, &o).expect("pre-baseline");
    assert_eq!(before.fresh.len(), 1, "unbaselined finding is fresh");
    assert!(!before.clean());

    engine::fix_baseline(&root, &o).expect("fix-baseline");
    let after = engine::run_workspace(&root, &o).expect("post-baseline");
    assert_eq!(after.fresh, vec![], "baselined finding no longer fails");
    assert_eq!(after.baselined, 1);
    assert!(after.clean());

    // Fixing the code makes the baseline entry stale — the check fails
    // until the baseline is regenerated.
    std::fs::write(root.join("a/src/lib.rs"), CLEAN).expect("fix code");
    let stale = engine::run_workspace(&root, &o).expect("stale run");
    assert_eq!(stale.findings, vec![]);
    assert_eq!(stale.stale.len(), 1, "fixed finding leaves a stale entry");
    assert!(!stale.clean());

    engine::fix_baseline(&root, &o).expect("regenerate");
    let regenerated = engine::run_workspace(&root, &o).expect("final run");
    assert!(regenerated.clean());
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_yv-audit"))
        .args(args)
        .output()
        .expect("yv-audit binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_workspace_stdout_is_byte_identical_across_jobs_and_cache_states() {
    let (c1, out1, _) = run_cli(&["check", "--jobs", "1", "--no-cache"]);
    let (c8, out8, _) = run_cli(&["check", "--jobs", "8", "--no-cache"]);
    let (cc, outc, err) = run_cli(&["check", "--jobs", "8"]);
    assert_eq!(c1, 0, "workspace stays clean: {out1}");
    assert_eq!(c8, 0);
    assert_eq!(cc, 0);
    assert_eq!(out1, out8, "stdout must not depend on --jobs");
    assert_eq!(out1, outc, "stdout must not depend on the cache");
    assert!(err.contains("files"), "stats go to stderr: {err}");
}

#[test]
fn self_audit_is_clean() {
    // The analyzer passes its own rules: every finding it would raise on
    // crates/audit has been fixed or justified, with no baseline help.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent().and_then(Path::parent).expect("workspace root");
    let mut findings = Vec::new();
    for path in yv_audit::walk::workspace_sources(&manifest.join("src")).expect("walk src") {
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(yv_audit::analyze_file(&path, &display).expect("readable"));
    }
    assert_eq!(findings, vec![], "the auditor must satisfy its own rules");
}
