//! The audit rules.
//!
//! Every rule works on [`CleanLine`]s. D1/P1/S1 match against `code`
//! (comments and string contents stripped) so prose never triggers them;
//! F1's precision check matches against `text` (comments stripped,
//! string contents kept) because format specifiers like `{:.17}` live
//! inside string literals. See each rule's doc for exact semantics.
//!
//! | rule | hazard | fires on |
//! |------|--------|----------|
//! | D1   | hash-order nondeterminism | `HashMap`/`HashSet` iteration feeding `push`/`extend`/serialization within [`SINK_WINDOW`] lines with no `.sort` within [`SORT_WINDOW`] lines after the sink |
//! | P1   | panic in library code | `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` outside test code |
//! | F1   | lossy score persistence | fixed-precision float formatting (`{:.17}`) and lossy `as` casts on score values in persistence/protocol files |
//! | S1   | wall-clock in deterministic pipeline | `Instant::now` / `SystemTime::now` in pipeline crates |
//! | A1   | rogue global allocator | `global_allocator` in code position outside `yv-obs` (the counting allocator is the single sanctioned installation) |
//! | L1   | lock held across blocking I/O / lock-order inversion | a `lock()`/`write()`/`read()` guard binding live (scope tracker) across a blocking call — [`crate::symbols::DIRECT_IO`] patterns or a call into a function the symbol pass proved blocking — or two indexed shard locks acquired in non-ascending index order |
//! | N1   | victim-name leak into logs/metrics | an identifier tainted from a name field (`last_names`, `first_names`, ..., `read_line` input, a `name` argument) reaching a logging sink (`println!`/`eprintln!`, `write!`/`writeln!` to a log-like target, `.log(...)`, a `.annotate(...)` trace annotation) or a `format!`-built metrics label, without passing through the sanctioned `fnv1a` digest |
//! | C1   | lossy integer narrowing in persisted formats | `as u8/u16/u32/i8/i16/i32` on seq/len/offset/id-like values — or `u64 as usize` — in codec/WAL/snapshot/protocol files; the sanctioned pattern is `try_from` with a typed error (generalizes F1 beyond floats) |

use crate::lexer::CleanLine;
use crate::profile::FileProfile;
use crate::scope::{self, FileScopes};
use crate::symbols::SymbolIndex;

/// Lines after a hash iteration within which a sink makes the iteration a
/// D1 hazard.
pub const SINK_WINDOW: usize = 12;
/// Lines after the sink within which a `.sort` discharges the hazard (the
/// accumulated output is canonicalized before anyone observes it).
pub const SORT_WINDOW: usize = 12;

/// Rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    D1,
    P1,
    F1,
    S1,
    A1,
    L1,
    N1,
    C1,
}

impl Rule {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::P1 => "P1",
            Rule::F1 => "F1",
            Rule::S1 => "S1",
            Rule::A1 => "A1",
            Rule::L1 => "L1",
            Rule::N1 => "N1",
            Rule::C1 => "C1",
        }
    }

    /// One-line hazard summary (SARIF rule metadata).
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "hash-order iteration feeds an order-sensitive sink",
            Rule::P1 => "panicking call in library code",
            Rule::F1 => "lossy float formatting or cast in a persistence/protocol path",
            Rule::S1 => "wall-clock read in a deterministic pipeline crate",
            Rule::A1 => "global allocator installed outside yv-obs",
            Rule::L1 => "lock guard held across blocking I/O, or shard locks out of order",
            Rule::N1 => "name-derived value reaches a log/metrics sink undigested",
            Rule::C1 => "lossy integer narrowing on a seq/len/offset/id value",
        }
    }

    #[must_use]
    pub fn all() -> [Rule; 8] {
        [Rule::D1, Rule::P1, Rule::F1, Rule::S1, Rule::A1, Rule::L1, Rule::N1, Rule::C1]
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Path as given to the analyzer (workspace-relative in CLI runs).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Run every applicable rule over one lexed file. `symbols` carries the
/// interprocedural blocking-call knowledge L1 needs (use
/// [`crate::symbols::single_file_index`] for isolated checks).
#[must_use]
pub fn check_lines(
    file: &str,
    raw: &str,
    lines: &[CleanLine],
    profile: &FileProfile,
    symbols: &SymbolIndex,
) -> Vec<Finding> {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut findings = Vec::new();
    if profile.d1 {
        d1(file, lines, &raw_lines, &mut findings);
    }
    if profile.p1 {
        p1(file, lines, &raw_lines, &mut findings);
    }
    if profile.f1 {
        f1(file, lines, &raw_lines, &mut findings);
    }
    if profile.s1 {
        s1(file, lines, &raw_lines, &mut findings);
    }
    if profile.a1 {
        a1(file, lines, &raw_lines, &mut findings);
    }
    if profile.l1 || profile.n1 {
        let scopes = scope::file_scopes(lines);
        if profile.l1 {
            l1(file, lines, &raw_lines, &scopes, symbols, &mut findings);
        }
        if profile.n1 {
            n1(file, lines, &raw_lines, &scopes, &mut findings);
        }
    }
    if profile.c1 {
        c1(file, lines, &raw_lines, &mut findings);
    }
    findings.retain(|f| !suppressed(lines, f.line, f.rule));
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    findings
}

/// `// audit:allow(RULE)` on the finding's line, or alone on the line
/// directly above it, suppresses the finding.
fn suppressed(lines: &[CleanLine], line_no: usize, rule: Rule) -> bool {
    let idx = line_no - 1;
    if allows(&lines[idx].comment, rule) {
        return true;
    }
    idx > 0 && lines[idx - 1].code.trim().is_empty() && allows(&lines[idx - 1].comment, rule)
}

fn allows(comment: &str, rule: Rule) -> bool {
    let Some(at) = comment.find("audit:allow(") else {
        return false;
    };
    let rest = &comment[at + "audit:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].split(',').any(|r| r.trim() == rule.name())
}

fn push_finding(
    findings: &mut Vec<Finding>,
    rule: Rule,
    file: &str,
    line: usize,
    raw_lines: &[&str],
    message: String,
) {
    let snippet = raw_lines.get(line - 1).map_or("", |l| l.trim()).to_owned();
    findings.push(Finding { rule, file: file.to_owned(), line, message, snippet });
}

// ------------------------------------------------------------------- D1

/// Identifiers bound to hash-ordered collections in this file.
fn hash_bound_names(lines: &[CleanLine]) -> Vec<String> {
    let mut names = Vec::new();
    for line in lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] name: HashMap<..>` / `let [mut] name = HashMap::new()`
        if let Some(name) = let_binding_name(code) {
            push_name(&mut names, name);
        }
        // Parameter or field position: `name: &HashMap<`, `name: HashMap<`.
        for marker in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(at) = code[from..].find(marker) {
                let abs = from + at;
                if let Some(name) = param_name_before(code, abs) {
                    push_name(&mut names, name);
                }
                from = abs + marker.len();
            }
        }
    }
    names
}

fn push_name(names: &mut Vec<String>, name: String) {
    if !name.is_empty() && !names.contains(&name) {
        names.push(name);
    }
}

/// Extract the bound name from a `let` line mentioning a hash collection.
fn let_binding_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    // Destructuring patterns (`let (a, b) = ...`) yield an empty name.
    (!name.is_empty()).then_some(name)
}

/// Identifier preceding `: &HashMap<` / `: HashMap<` at byte `at`.
fn param_name_before(code: &str, at: usize) -> Option<String> {
    let before = &code[..at];
    let before = before.trim_end_matches(['&', ' ']);
    let before = before.strip_suffix("mut").unwrap_or(before).trim_end();
    let before = before.strip_suffix(':')?.trim_end();
    let name: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty()).then_some(name)
}

const ITER_METHODS: [&str; 7] =
    [".iter()", ".into_iter()", ".values()", ".keys()", ".into_values()", ".into_keys()", ".drain("];
const SINKS: [&str; 5] = [".push(", ".push_str(", ".extend(", "write!(", "writeln!("];

/// True when the cleaned line iterates the named hash collection.
fn iterates(code: &str, name: &str) -> bool {
    for m in ITER_METHODS {
        let pat = format!("{name}{m}");
        if code.contains(&pat) {
            return true;
        }
    }
    // `for x in name` / `for x in &name` / `for x in &mut name`
    for pat in [format!(" in {name}"), format!(" in &{name}"), format!(" in &mut {name}")] {
        if let Some(at) = code.find(&pat) {
            let after = at + pat.len();
            let boundary = code[after..]
                .chars()
                .next()
                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
            if boundary && code.trim_start().starts_with("for ") {
                return true;
            }
        }
    }
    false
}

fn d1(file: &str, lines: &[CleanLine], raw_lines: &[&str], findings: &mut Vec<Finding>) {
    let names = hash_bound_names(lines);
    if names.is_empty() {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(name) = names.iter().find(|n| iterates(&line.code, n)) else {
            continue;
        };
        // A sink within the window makes the hash order observable...
        let sink = (idx + 1..lines.len().min(idx + 1 + SINK_WINDOW))
            .find(|&j| SINKS.iter().any(|s| lines[j].code.contains(s)));
        // ...including a sink on the iteration line itself (iterator
        // chains like `map.values().for_each(|v| out.push(v))`).
        let sink = if SINKS.iter().any(|s| line.code.contains(s)) { Some(idx) } else { sink };
        let Some(sink_idx) = sink else {
            continue;
        };
        // A sort after the sink canonicalizes the accumulated output.
        let sorted = (sink_idx + 1..lines.len().min(sink_idx + 1 + SORT_WINDOW))
            .any(|j| lines[j].code.contains(".sort"));
        if sorted {
            continue;
        }
        push_finding(
            findings,
            Rule::D1,
            file,
            idx + 1,
            raw_lines,
            format!(
                "iteration over hash-ordered `{name}` feeds an order-sensitive sink \
                 (line {}) with no canonicalizing sort; use a BTree collection or \
                 sort before emitting",
                sink_idx + 1
            ),
        );
    }
}

// ------------------------------------------------------------------- P1

const PANIC_CALLS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

fn p1(file: &str, lines: &[CleanLine], raw_lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for call in PANIC_CALLS {
            if let Some(at) = line.code.find(call) {
                // `.expect(` must not match `.expect_err(`; find() can hit a
                // prefix of a longer identifier only for the macro names,
                // which end in `!(` and are unambiguous.
                let _ = at;
                push_finding(
                    findings,
                    Rule::P1,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "`{}` can panic in library code; propagate an error with `?` instead",
                        call.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

// ------------------------------------------------------------------- F1

const LOSSY_CAST_TARGETS: [&str; 9] =
    ["f32", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "usize"];

/// True when a format specifier with fixed precision (`{:.3}`, `{:>8.2}`)
/// appears in code position.
fn has_fixed_precision_format(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while let Some(at) = code[i..].find("{:") {
        let start = i + at + 2;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'}' && j - start < 16 {
            if bytes[j] == b'.' && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                return true;
            }
            j += 1;
        }
        i = start;
    }
    false
}

/// True when a score-typed value is narrowed with `as`.
fn has_lossy_score_cast(code: &str) -> bool {
    let Some(score_at) = code.find("score") else {
        return false;
    };
    let tail = &code[score_at..];
    let Some(as_at) = tail.find(" as ") else {
        return false;
    };
    let target = tail[as_at + 4..].trim_start();
    LOSSY_CAST_TARGETS.iter().any(|t| {
        target.starts_with(t)
            && target[t.len()..]
                .chars()
                .next()
                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
    })
}

const FORMAT_MACROS: [&str; 6] =
    ["format!(", "write!(", "writeln!(", "print!(", "println!(", "format_args!("];

fn f1(file: &str, lines: &[CleanLine], raw_lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        // Precision specifiers live inside string literals, so match on
        // `text`; requiring a formatting macro on the same line keeps
        // prose strings that merely mention `{:.17}` from firing.
        let is_format_call = FORMAT_MACROS.iter().any(|m| line.code.contains(m));
        if is_format_call && has_fixed_precision_format(&line.text) {
            push_finding(
                findings,
                Rule::F1,
                file,
                idx + 1,
                raw_lines,
                "fixed-precision float formatting in a persistence/protocol path loses \
                 significant digits; use `{:?}` (shortest round-trip) or `to_bits()`"
                    .to_owned(),
            );
        }
        if has_lossy_score_cast(&line.code) {
            push_finding(
                findings,
                Rule::F1,
                file,
                idx + 1,
                raw_lines,
                "lossy `as` cast on a score value in a persistence/protocol path; \
                 keep scores f64 end to end"
                    .to_owned(),
            );
        }
    }
}

// ------------------------------------------------------------------- S1

fn s1(file: &str, lines: &[CleanLine], raw_lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for call in ["Instant::now", "SystemTime::now"] {
            if line.code.contains(call) {
                push_finding(
                    findings,
                    Rule::S1,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "`{call}` in a deterministic pipeline crate; wall-clock reads \
                         must not influence scores or cluster output"
                    ),
                );
            }
        }
    }
}

// ------------------------------------------------------------------- A1

fn a1(file: &str, lines: &[CleanLine], raw_lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        // No in_test exemption: a global allocator swaps the allocator
        // for the entire binary, test module or not.
        if line.code.contains("global_allocator") {
            push_finding(
                findings,
                Rule::A1,
                file,
                idx + 1,
                raw_lines,
                "global allocator installed outside yv-obs; the counting allocator \
                 behind yv-obs's `global-alloc` feature is the single sanctioned \
                 installation, so memory gauges stay attributable"
                    .to_owned(),
            );
        }
    }
}

// ------------------------------------------------------------------- L1

/// Guard-acquisition markers in a binding's initializer. `.write()` /
/// `.read()` are the `parking_lot::RwLock` methods (argless, unlike
/// `io::Write::write`), `.lock()` covers both mutex families.
const GUARD_INITS: [&str; 5] =
    [".lock()", ".write()", ".read()", "MutexGuard", "RwLockWriteGuard"];

/// Is this binding a lock guard? Block-expression initializers (`let x =
/// { let g = m.lock(); ... };`) are skipped: the guard they *contain* is
/// tracked as its own inner binding with the block's tighter scope.
fn is_guard(binding: &scope::Binding) -> bool {
    let init = binding.init.trim_start_matches(|c: char| c != '=');
    if init.trim_start_matches('=').trim_start().starts_with('{') {
        return false;
    }
    GUARD_INITS.iter().any(|g| binding.init.contains(g))
}

/// `shards[3].write()`-style acquisition: (collection name, index).
fn indexed_guard(init: &str) -> Option<(String, usize)> {
    let bytes = init.as_bytes();
    let open = init.find('[')?;
    let close = init[open..].find(']')? + open;
    let idx: usize = init[open + 1..close].trim().parse().ok()?;
    let after = &init[close + 1..];
    if !(after.starts_with(".write()") || after.starts_with(".read()") || after.starts_with(".lock()"))
    {
        return None;
    }
    let name: String = init[..open]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    let _ = bytes;
    (!name.is_empty()).then_some((name, idx))
}

/// The guard's effective last live line: its scope end, or an earlier
/// explicit `drop(name)`.
fn guard_end(lines: &[CleanLine], binding: &scope::Binding) -> usize {
    let drop_pat = format!("drop({})", binding.name);
    (binding.line..=binding.scope_end.min(lines.len() - 1))
        .find(|&j| lines[j].code.contains(&drop_pat))
        .unwrap_or(binding.scope_end)
}

fn l1(
    file: &str,
    lines: &[CleanLine],
    raw_lines: &[&str],
    scopes: &FileScopes,
    symbols: &SymbolIndex,
    findings: &mut Vec<Finding>,
) {
    let guards: Vec<&scope::Binding> = scopes
        .bindings
        .iter()
        .filter(|b| is_guard(b) && !lines.get(b.line).is_none_or(|l| l.in_test))
        .collect();
    for g in &guards {
        let end = guard_end(lines, g);
        let last = end.min(lines.len() - 1);
        for (j, line) in lines.iter().enumerate().take(last + 1).skip(g.line) {
            if line.in_test {
                continue;
            }
            // The acquisition statement itself is not "I/O under the
            // lock" — `let g = file_mutex.lock()` may sit on a line whose
            // tail the init text already covers.
            let code = if j == g.line { after_init(&line.code) } else { line.code.as_str() };
            if symbols.blocking_call(code) {
                push_finding(
                    findings,
                    Rule::L1,
                    file,
                    j + 1,
                    raw_lines,
                    format!(
                        "blocking I/O with lock guard `{}` (acquired line {}) still held; \
                         stage the data and drop the guard before the I/O, or justify with \
                         an audit:allow(L1) marker",
                        g.name,
                        g.line + 1
                    ),
                );
                break;
            }
        }
    }
    // Lock-order: two indexed acquisitions on the same collection while
    // the first is still live must ascend strictly.
    for (a_pos, a) in guards.iter().enumerate() {
        let Some((a_coll, a_idx)) = indexed_guard(&a.init) else { continue };
        let a_end = guard_end(lines, a);
        for b in guards.iter().skip(a_pos + 1) {
            let Some((b_coll, b_idx)) = indexed_guard(&b.init) else { continue };
            if a_coll == b_coll && b.line > a.line && b.line <= a_end && b_idx <= a_idx {
                push_finding(
                    findings,
                    Rule::L1,
                    file,
                    b.line + 1,
                    raw_lines,
                    format!(
                        "`{b_coll}[{b_idx}]` locked while `{a_coll}[{a_idx}]` (line {}) is \
                         still held — shard locks must be acquired in ascending index order \
                         to keep the quiesce protocol deadlock-free",
                        a.line + 1
                    ),
                );
            }
        }
    }
}

/// The portion of a binding's own line after the `=` of its initializer
/// (so the acquisition call itself is not scanned for blocking I/O).
fn after_init(code: &str) -> &str {
    code.find(';').map_or("", |at| &code[at + 1..])
}

// ------------------------------------------------------------------- N1

/// Identifier roots carrying victim names. `name` (the resolve/query
/// argument) is deliberately included: in the serving crates a bare
/// `name` *is* request data.
const NAME_ROOTS: [&str; 9] = [
    "name",
    "first_names",
    "last_names",
    "first_name",
    "last_name",
    "maiden_name",
    "father_name",
    "mother_name",
    "spouse_name",
];

/// Initializer fragments that launder a name into something loggable: the
/// sanctioned digest, or aggregate/numeric derivations.
const SANITIZERS: [&str; 5] = ["fnv1a", ".len()", ".count()", ".is_empty()", "digest("];

fn is_sanitized(text: &str) -> bool {
    SANITIZERS.iter().any(|s| text.contains(s))
}

/// Logging sink on this line? Checks `code` for the macro/call shape; the
/// `write!`/`writeln!` target must look like a log (first argument
/// mentions log/stderr/sink/slow) so protocol-response formatting into an
/// `out` buffer stays out of scope.
fn n1_sink(line: &CleanLine) -> bool {
    let code = &line.code;
    if ["println!(", "print!(", "eprintln!(", "eprint!("].iter().any(|m| code.contains(m)) {
        return true;
    }
    if code.contains(".log(") {
        return true;
    }
    // Trace annotations are capture sinks too: span/request args end up
    // rendered by TRACE/TOP, so a raw name reaching `.annotate(` leaks
    // exactly like a log line would.
    if code.contains(".annotate(") {
        return true;
    }
    for m in ["write!(", "writeln!("] {
        if let Some(at) = code.find(m) {
            let args = &code[at + m.len()..];
            let target = args.split(',').next().unwrap_or("").to_lowercase();
            if ["log", "stderr", "sink", "slow"].iter().any(|t| target.contains(t)) {
                return true;
            }
        }
    }
    // Metrics label position: a format!-built series name.
    ["set_gauge(", ".counter(", ".histogram(", ".observe("]
        .iter()
        .any(|m| code.contains(m))
        && code.contains("format!")
}

fn n1(
    file: &str,
    lines: &[CleanLine],
    raw_lines: &[&str],
    scopes: &FileScopes,
    findings: &mut Vec<Finding>,
) {
    for (fidx, f) in scopes.functions.iter().enumerate() {
        // Taint fixpoint over the function's bindings: a binding is
        // tainted when its initializer mentions a name root or a tainted
        // binding — unless the initializer sanitizes (digest / count).
        // `read_line(&mut x)` also taints x (raw request text).
        let mut tainted: Vec<String> = Vec::new();
        for line in lines.iter().take(f.end + 1).skip(f.start) {
            if let Some(at) = line.code.find(".read_line(&mut ") {
                let name: String = line.code[at + ".read_line(&mut ".len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && !tainted.contains(&name) {
                    tainted.push(name);
                }
            }
        }
        loop {
            let mut changed = false;
            for b in scopes.bindings_of(fidx) {
                if tainted.contains(&b.name) || is_sanitized(&b.init) {
                    continue;
                }
                let from_root = NAME_ROOTS.iter().any(|r| scope::mentions(&b.init, r));
                let from_taint = tainted.iter().any(|t| scope::mentions(&b.init, t));
                if from_root || from_taint {
                    tainted.push(b.name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (j, line) in lines.iter().enumerate().take(f.end + 1).skip(f.start) {
            if line.in_test || !n1_sink(line) {
                continue;
            }
            // Mentions are matched against `text` (string contents kept)
            // because inline format captures — `"{name}"` — live inside
            // the literal.
            let carries = NAME_ROOTS.iter().any(|r| scope::mentions(&line.text, r))
                || tainted.iter().any(|t| scope::mentions(&line.text, t));
            if carries && !line.text.contains("fnv1a") {
                push_finding(
                    findings,
                    Rule::N1,
                    file,
                    j + 1,
                    raw_lines,
                    "name-derived value reaches a logging/metrics sink without the \
                     sanctioned fnv1a digest; log the digest (or a count), never the raw \
                     name — victim data must not leak into logs"
                        .to_owned(),
                );
            }
        }
    }
}

// ------------------------------------------------------------------- C1

/// Narrowing targets C1 polices (beyond F1's float focus).
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Words marking a value whose silent truncation corrupts persisted or
/// wire data.
const VALUE_WORDS: [&str; 11] =
    ["seq", "len", "length", "offset", "pos", "count", "idx", "index", "id", "size", "ticket"];

fn c1(file: &str, lines: &[CleanLine], raw_lines: &[&str], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut from = 0;
        while let Some(rel) = code[from..].find(" as ") {
            let abs = from + rel;
            let target: String = code[abs + 4..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            from = abs + 4;
            let narrow = NARROW_TARGETS.contains(&target.as_str())
                && VALUE_WORDS.iter().any(|w| scope::mentions(code, w));
            // `u64 as usize` truncates on 32-bit targets; `u32 as usize`
            // does not (the workspace's minimum usize), so the usize arm
            // only fires when a 64-bit source is visible on the line.
            let to_usize = target == "usize" && scope::mentions(code, "u64");
            if narrow || to_usize {
                push_finding(
                    findings,
                    Rule::C1,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "lossy `as {target}` narrowing on a sequence/length/offset/id value \
                         in a persisted format; use `{target}::try_from` with a typed error \
                         so corruption is detected, not silently truncated"
                    ),
                );
                break; // one finding per line
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_lines;
    use crate::profile::FileProfile;
    use crate::symbols::single_file_index;

    fn check_all(src: &str) -> Vec<Finding> {
        let lines = clean_lines(src);
        let symbols = single_file_index(&lines);
        check_lines("mem.rs", src, &lines, &FileProfile::all(), &symbols)
    }

    #[test]
    fn p1_fires_outside_tests_only() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let f = check_all(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::P1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn p1_does_not_match_unwrap_or() {
        assert!(check_all("fn a() { x.unwrap_or(0); y.unwrap_or_default(); }\n").is_empty());
    }

    #[test]
    fn d1_fires_without_sort_and_not_with() {
        let bad = "fn f() {\nlet mut m: std::collections::HashMap<u32, u32> = x;\nfor (k, v) in m {\nout.push(k);\n}\n}\n";
        let f = check_all(bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D1);
        assert_eq!(f[0].line, 3);

        let good = "fn f() {\nlet mut m: std::collections::HashMap<u32, u32> = x;\nfor (k, v) in m {\nout.push(k);\n}\nout.sort();\n}\n";
        assert!(check_all(good).is_empty());
    }

    #[test]
    fn d1_btree_is_clean() {
        let src = "fn f() {\nlet mut m: std::collections::BTreeMap<u32, u32> = x;\nfor (k, v) in &m {\nout.push(*k);\n}\n}\n";
        assert!(check_all(src).is_empty());
    }

    #[test]
    fn f1_fires_on_precision_and_cast_not_on_debug() {
        let f = check_all("fn f() { let s = format!(\"{:.17}\", v); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::F1);
        let f = check_all("fn f() { let x = score as f32; }\n");
        assert_eq!(f.len(), 1);
        assert!(check_all("fn f() { let s = format!(\"{:?}\", v); }\n").is_empty());
    }

    #[test]
    fn f1_ignores_comments() {
        assert!(check_all("// fixed precision like {:.17} is lossy\nfn f() {}\n").is_empty());
    }

    #[test]
    fn s1_fires_on_wall_clock() {
        let f = check_all("fn f() { let t = std::time::Instant::now(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::S1);
    }

    #[test]
    fn a1_fires_even_inside_test_modules() {
        let src = "#[global_allocator]\nstatic A: MyAlloc = MyAlloc;\n";
        let f = check_all(src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (Rule::A1, 1));
        // Unlike the other rules, #[cfg(test)] provides no cover: the
        // allocator is process-global.
        let in_test = "#[cfg(test)]\nmod t {\n#[global_allocator]\nstatic A: M = M;\n}\n";
        let f = check_all(in_test);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (Rule::A1, 3));
        // The identifier in comment or string position never fires.
        assert!(check_all("// mentions global_allocator in prose\nfn f() {}\n").is_empty());
        assert!(check_all("fn f() { let s = \"global_allocator\"; }\n").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_preceding_line() {
        let same = "fn f() { x.unwrap(); } // audit:allow(P1) startup-only\n";
        assert!(check_all(same).is_empty());
        let above = "// audit:allow(P1) startup-only\nfn f() { x.unwrap(); }\n";
        assert!(check_all(above).is_empty());
        let wrong_rule = "fn f() { x.unwrap(); } // audit:allow(D1)\n";
        assert_eq!(check_all(wrong_rule).len(), 1);
    }

    #[test]
    fn findings_are_line_sorted() {
        let src = "fn f() { let t = std::time::Instant::now(); }\nfn g() { x.unwrap(); }\n";
        let f = check_all(src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }
}
