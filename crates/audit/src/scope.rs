//! Scope tracking over the [`CleanLine`] stream.
//!
//! The lexer reduces a file to per-line cleaned code; this pass recovers
//! the *structure* the scope-aware rules need: function spans, block
//! extents, and `let`-bound identifiers with their initializer text and
//! enclosing-scope end line. That is enough for rules to answer "what is
//! held / tainted at this line" without a full parser — guard live ranges
//! (L1) are bindings whose initializer takes a lock, taint ranges (N1) are
//! bindings whose initializer mentions a name source, and both end where
//! the binding's block closes (or at an explicit `drop(name)`).
//!
//! Everything here works on `CleanLine::code`, so braces and `let`
//! keywords inside strings or comments never confuse the tracker.

use crate::lexer::CleanLine;

/// How many lines a multi-line `let` initializer is followed before
/// giving up on finding its terminating `;`.
const INIT_SCAN_LINES: usize = 8;

/// One function item: the `fn` keyword's line through the body's closing
/// brace (0-based, inclusive).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// One `let` binding (including simple tuple destructures, which yield
/// one `Binding` per bound name sharing a statement).
#[derive(Debug, Clone)]
pub struct Binding {
    pub name: String,
    /// 0-based line of the `let`.
    pub line: usize,
    /// 0-based last line of the enclosing block (the binding's lexical
    /// scope; rules additionally honor `drop(name)` to end it early).
    pub scope_end: usize,
    /// Cleaned statement text from the `let` through its terminating `;`
    /// (clamped to [`INIT_SCAN_LINES`] lines).
    pub init: String,
    /// Index into [`FileScopes::functions`] of the enclosing function.
    pub fn_idx: Option<usize>,
}

/// The scope structure of one file.
#[derive(Debug, Default)]
pub struct FileScopes {
    pub functions: Vec<FnSpan>,
    pub bindings: Vec<Binding>,
}

impl FileScopes {
    /// Bindings whose enclosing function is `fn_idx`.
    pub fn bindings_of(&self, fn_idx: usize) -> impl Iterator<Item = &Binding> {
        self.bindings.iter().filter(move |b| b.fn_idx == Some(fn_idx))
    }
}

/// A block opened by `{`; its close line is resolved when the matching
/// `}` is seen (or the file ends).
#[derive(Debug)]
struct Block {
    close: Option<usize>,
}

/// A binding before its owning block's close line is known.
struct RawBinding {
    name: String,
    line: usize,
    init: String,
    owner: Option<usize>,
    fn_idx: Option<usize>,
}

/// Build the scope structure for one lexed file.
#[must_use]
pub fn file_scopes(lines: &[CleanLine]) -> FileScopes {
    let mut blocks: Vec<Block> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    // (function index, its body block id) for every fn whose body is open.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // A `fn name` has been seen and its body `{` is still ahead.
    let mut pending_fn: Option<String> = None;
    let mut functions: Vec<FnSpan> = Vec::new();
    let mut fn_starts: Vec<usize> = Vec::new();
    // Owning block ids are resolved to scope_end lines at the end.
    let mut raw_bindings: Vec<RawBinding> = Vec::new();

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if let Some(name) = fn_name(code) {
            pending_fn = Some(name);
            fn_starts.push(i);
        }
        // Bracket depth (parens + square brackets) so a `;` inside
        // `fn f(x: [u8; 4])` does not cancel the pending fn.
        let mut bracket: i32 = 0;
        let bytes = code.as_bytes();
        for (at, &b) in bytes.iter().enumerate() {
            match b {
                b'(' | b'[' => bracket += 1,
                b')' | b']' => bracket -= 1,
                b'{' => {
                    let id = blocks.len();
                    blocks.push(Block { close: None });
                    stack.push(id);
                    if let Some(name) = pending_fn.take() {
                        let start = fn_starts.last().copied().unwrap_or(i);
                        functions.push(FnSpan { name, start, end: i });
                        fn_stack.push((functions.len() - 1, id));
                    }
                }
                b'}' => {
                    if let Some(id) = stack.pop() {
                        blocks[id].close = Some(i);
                        if fn_stack.last().is_some_and(|&(_, body)| body == id) {
                            if let Some((fidx, _)) = fn_stack.pop() {
                                functions[fidx].end = i;
                            }
                        }
                    }
                }
                b';' if bracket <= 0 => {
                    // `fn f() -> T;` — a bodyless declaration consumes the
                    // pending fn.
                    pending_fn = None;
                }
                b'l' if bytes[at..].starts_with(b"let ")
                    && (at == 0 || !is_ident_byte(bytes[at - 1])) =>
                {
                    let names = binding_names(&code[at..]);
                    if !names.is_empty() {
                        let init = statement_text(lines, i, at);
                        let owner = stack.last().copied();
                        let fidx = fn_stack.last().map(|&(f, _)| f);
                        for name in names {
                            raw_bindings.push(RawBinding {
                                name,
                                line: i,
                                init: init.clone(),
                                owner,
                                fn_idx: fidx,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let last = lines.len().saturating_sub(1);
    let bindings = raw_bindings
        .into_iter()
        .map(|r| Binding {
            name: r.name,
            line: r.line,
            scope_end: r.owner.and_then(|id| blocks[id].close).unwrap_or(last),
            init: r.init,
            fn_idx: r.fn_idx,
        })
        .collect();
    FileScopes { functions, bindings }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `fn name` on this line (declaration or definition), if any.
fn fn_name(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(at) = code[from..].find("fn ") {
        let abs = from + at;
        let bounded = abs == 0 || !is_ident_byte(code.as_bytes()[abs - 1]);
        if bounded {
            let name: String = code[abs + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        from = abs + 3;
    }
    None
}

/// Names bound by a `let` statement starting at `stmt` (which begins with
/// `let `). Simple identifiers and flat tuple patterns are supported;
/// struct patterns yield nothing.
fn binding_names(stmt: &str) -> Vec<String> {
    let rest = stmt.trim_start_matches("let ").trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    if let Some(tuple) = rest.strip_prefix('(') {
        let inner = tuple.split(')').next().unwrap_or("");
        return inner
            .split(',')
            .map(|p| p.trim().trim_start_matches("mut ").trim())
            .filter(|p| !p.is_empty() && p.chars().all(|c| c.is_alphanumeric() || c == '_'))
            .filter(|p| plain_ident(p))
            .map(str::to_owned)
            .collect();
    }
    let name: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if plain_ident(&name) {
        vec![name]
    } else {
        Vec::new()
    }
}

/// A bindable variable name: nonempty, not `_`, and not an
/// uppercase-initial pattern constructor (`if let Some(x)` binds `x`, not
/// `Some`).
fn plain_ident(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') && name != "_"
}

/// Cleaned statement text from byte `at` of line `i` through the first
/// line carrying a `;` (clamped). Block-expression initializers are
/// returned as far as the first `;` — enough for the substring checks the
/// rules perform.
fn statement_text(lines: &[CleanLine], i: usize, at: usize) -> String {
    let mut out = String::new();
    for (k, line) in lines.iter().enumerate().skip(i).take(INIT_SCAN_LINES) {
        let piece = if k == i { &line.code[at..] } else { line.code.as_str() };
        out.push_str(piece);
        out.push(' ');
        if piece.contains(';') {
            break;
        }
    }
    out
}

/// Word-boundary mention of `ident` in `hay` (underscores count as
/// identifier characters, so `name` does not match `yv_fuzzy_names`).
#[must_use]
pub fn mentions(hay: &str, ident: &str) -> bool {
    if ident.is_empty() {
        return false;
    }
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(ident) {
        let abs = from + rel;
        let before_ok = abs == 0 || !is_ident_byte(bytes[abs - 1]);
        let end = abs + ident.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = abs + ident.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_lines;

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() {\n    x();\n}\n\npub fn b(v: u32) -> u32 {\n    v\n}\n";
        let s = file_scopes(&clean_lines(src));
        assert_eq!(s.functions.len(), 2);
        assert_eq!((s.functions[0].name.as_str(), s.functions[0].start, s.functions[0].end), ("a", 0, 2));
        assert_eq!((s.functions[1].name.as_str(), s.functions[1].start, s.functions[1].end), ("b", 4, 6));
    }

    #[test]
    fn bodyless_declarations_do_not_capture_the_next_block() {
        let src = "trait T {\n    fn decl(&self) -> u32;\n}\nfn real() {\n    y();\n}\n";
        let s = file_scopes(&clean_lines(src));
        let real = s.functions.iter().find(|f| f.name == "real").expect("real fn");
        assert_eq!((real.start, real.end), (3, 5));
    }

    #[test]
    fn bindings_carry_scope_and_init() {
        let src = "fn f() {\n    let mut g = m.lock();\n    {\n        let inner = 1;\n    }\n    g.use_it();\n}\n";
        let s = file_scopes(&clean_lines(src));
        let g = s.bindings.iter().find(|b| b.name == "g").expect("g bound");
        assert_eq!(g.line, 1);
        assert_eq!(g.scope_end, 6, "g lives to the fn body close");
        assert!(g.init.contains(".lock()"));
        let inner = s.bindings.iter().find(|b| b.name == "inner").expect("inner bound");
        assert_eq!(inner.scope_end, 4, "inner dies with its block");
    }

    #[test]
    fn one_line_blocks_confine_their_bindings() {
        let src = "fn f() {\n    let staged = { let q = m.lock(); q.clone() };\n    io(&staged);\n}\n";
        let s = file_scopes(&clean_lines(src));
        let q = s.bindings.iter().find(|b| b.name == "q").expect("q bound");
        assert_eq!(q.scope_end, 1, "q's block opens and closes on its own line");
    }

    #[test]
    fn tuple_patterns_bind_each_name() {
        let src = "fn f() {\n    let (cmd, args) = line.split_once(' ').unwrap_or((line, \"\"));\n}\n";
        let s = file_scopes(&clean_lines(src));
        let names: Vec<&str> = s.bindings.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["cmd", "args"]);
    }

    #[test]
    fn multiline_initializers_are_concatenated() {
        let src = "fn f() {\n    let v = base\n        .chain()\n        .lock();\n    v.go();\n}\n";
        let s = file_scopes(&clean_lines(src));
        let v = s.bindings.iter().find(|b| b.name == "v").expect("v bound");
        assert!(v.init.contains(".lock()"), "{:?}", v.init);
    }

    #[test]
    fn mentions_respects_word_boundaries() {
        assert!(mentions("log(name)", "name"));
        assert!(mentions("x + name", "name"));
        assert!(!mentions("fuzzy_names", "name"));
        assert!(!mentions("rename(a)", "name"));
        assert!(!mentions("names", "name"));
    }
}
