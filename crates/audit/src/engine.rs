//! The workspace analysis engine: parallel, incremental, baselined.
//!
//! A run is three passes. Pass one loads and lexes every source on a
//! scoped-thread pool (work-stealing over an atomic index, results merged
//! back in path order, so output is byte-identical for any `--jobs`).
//! Pass two builds the workspace [`SymbolIndex`] — cheap, pure-CPU — and
//! digests its blocking-name set. Pass three runs the rules per file,
//! skipping files whose (content hash, symbol digest, engine version)
//! triple matches the `.yv-audit-cache` entry from a previous run; the
//! cache is rewritten atomically (temp file + rename) after every run so
//! concurrent invocations cannot tear it.
//!
//! Baseline semantics: a committed baseline file holds fingerprints of
//! *accepted* findings (rule + file + snippet — line-drift tolerant). A
//! `check` partitions current findings into fresh (fail CI) and
//! baselined (reported in the summary only), and any baseline entry with
//! no matching finding is *stale* and also fails CI — the baseline may
//! only shrink by being regenerated (`fix-baseline`), never rot.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::lexer::{self, CleanLine};
use crate::profile::FileProfile;
use crate::rules::{check_lines, Finding, Rule};
use crate::symbols::{fn_summaries, FnSummary, SymbolIndex};
use crate::{scope, walk};

/// Bumped whenever rule or lexer semantics change, so stale caches from
/// an older binary are ignored wholesale.
pub const ENGINE_VERSION: u32 = 2;

/// Default cache file name, resolved against the workspace root.
pub const CACHE_FILE: &str = ".yv-audit-cache";
/// Default baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "audit.baseline";

/// Knobs for a workspace run.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads; 0 means auto (min(cores, 8)).
    pub jobs: usize,
    /// `None` disables the incremental cache.
    pub cache_path: Option<PathBuf>,
    /// `None` disables baseline matching (every finding is fresh).
    pub baseline_path: Option<PathBuf>,
}

impl EngineOptions {
    /// Defaults for a workspace rooted at `root`: auto jobs, cache and
    /// baseline at their standard paths.
    #[must_use]
    pub fn for_root(root: &Path) -> Self {
        EngineOptions {
            jobs: 0,
            cache_path: Some(root.join(CACHE_FILE)),
            baseline_path: Some(root.join(BASELINE_FILE)),
        }
    }
}

/// What a workspace run produced.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Every current finding, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings not absorbed by the baseline — these fail the check.
    pub fresh: Vec<Finding>,
    /// Count of findings the baseline accepted.
    pub baselined: usize,
    /// Baseline entries with no matching finding — these also fail.
    pub stale: Vec<String>,
    /// Files analyzed (cache hits included).
    pub files: usize,
    /// Files whose findings came from the cache.
    pub cache_hits: usize,
}

impl AuditOutcome {
    /// Does this outcome pass a `check`?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }
}

/// FNV-1a 64 — the workspace's deterministic hash, re-implemented here so
/// the auditor does not depend on the crates it audits.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct LoadedFile {
    display: String,
    source: String,
    lines: Vec<CleanLine>,
    profile: FileProfile,
    hash: u64,
}

/// Run the rules over every workspace source under `root`.
pub fn run_workspace(root: &Path, opts: &EngineOptions) -> io::Result<AuditOutcome> {
    let paths = walk::workspace_sources(root)?;
    let jobs = effective_jobs(opts.jobs);

    // Pass 1: load + lex in parallel.
    let loaded: Vec<io::Result<LoadedFile>> = parallel_map(paths.len(), jobs, |i| {
        let path = &paths[i];
        let display =
            path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(path)?;
        let hash = fnv1a64(source.as_bytes());
        let lines = lexer::clean_lines(&source);
        let profile = FileProfile::for_path(&display);
        Ok(LoadedFile { display, source, lines, profile, hash })
    });
    let mut files = Vec::with_capacity(loaded.len());
    for f in loaded {
        files.push(f?);
    }

    // Pass 2: workspace symbol index + digest.
    let mut summaries: Vec<FnSummary> = Vec::new();
    for f in &files {
        if f.profile.test_file {
            continue;
        }
        let scopes = scope::file_scopes(&f.lines);
        summaries.extend(fn_summaries(&f.lines, &scopes));
    }
    let symbols = SymbolIndex::build(&summaries);
    let mut digest_input = format!("v{ENGINE_VERSION}");
    for name in symbols.blocking_names() {
        digest_input.push('\n');
        digest_input.push_str(name);
    }
    let digest = fnv1a64(digest_input.as_bytes());

    let cache = opts.cache_path.as_deref().map(|p| load_cache(p, digest)).unwrap_or_default();

    // Pass 3: rules per file, cache-aware.
    let hits = AtomicUsize::new(0);
    let per_file: Vec<Vec<Finding>> = parallel_map(files.len(), jobs, |i| {
        let f = &files[i];
        if f.profile.test_file {
            return Vec::new();
        }
        if let Some((hash, findings)) = cache.get(&f.display) {
            if *hash == f.hash {
                hits.fetch_add(1, Ordering::Relaxed);
                return findings.clone();
            }
        }
        check_lines(&f.display, &f.source, &f.lines, &f.profile, &symbols)
    });

    if let Some(cache_path) = opts.cache_path.as_deref() {
        write_cache(cache_path, digest, &files, &per_file)?;
    }

    let mut findings: Vec<Finding> = per_file.into_iter().flatten().collect();
    findings.sort_by(|a, b| {
        a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(&b.rule))
    });

    let baseline = match opts.baseline_path.as_deref() {
        Some(p) => load_baseline(p)?,
        None => BTreeMap::new(),
    };
    let (fresh, baselined, stale) = apply_baseline(&findings, baseline);
    Ok(AuditOutcome {
        files: files.len(),
        cache_hits: hits.load(Ordering::Relaxed),
        findings,
        fresh,
        baselined,
        stale,
    })
}

/// Regenerate the baseline from the current findings; returns the
/// outcome *before* rewriting (so callers can report what was accepted).
pub fn fix_baseline(root: &Path, opts: &EngineOptions) -> io::Result<AuditOutcome> {
    let outcome = run_workspace(root, opts)?;
    let path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    write_baseline(&path, &outcome.findings)?;
    Ok(outcome)
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8)
}

/// Map `f` over `0..n` with `jobs` scoped threads, returning results in
/// index order — the merged output is independent of the thread count.
fn parallel_map<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..jobs.min(n) {
            handles.push(s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                local
            }));
        }
        for h in handles {
            if let Ok(local) = h.join() {
                indexed.extend(local);
            }
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

// ---------------------------------------------------------------- cache

type Cache = BTreeMap<String, (u64, Vec<Finding>)>;

/// Parse the cache file; any anomaly (old version, wrong digest, torn
/// write) discards it wholesale — the cache is an accelerator, never a
/// source of truth.
fn load_cache(path: &Path, digest: u64) -> Cache {
    let Ok(body) = std::fs::read_to_string(path) else {
        return Cache::new();
    };
    let mut lines = body.lines();
    let expected_header = format!("yv-audit-cache v{ENGINE_VERSION} digest={digest:016x}");
    if lines.next() != Some(expected_header.as_str()) {
        return Cache::new();
    }
    let mut cache = Cache::new();
    let mut current: Option<String> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix('!') {
            let Some(file) = current.clone() else { return Cache::new() };
            let mut parts = rest.splitn(4, '|');
            let (Some(rule), Some(line_no), Some(message), Some(snippet)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Cache::new();
            };
            let (Some(rule), Ok(line_no)) = (rule_by_name(rule), line_no.parse::<usize>())
            else {
                return Cache::new();
            };
            if let Some(entry) = cache.get_mut(&file) {
                entry.1.push(Finding {
                    rule,
                    file,
                    line: line_no,
                    message: unescape_field(message),
                    snippet: unescape_field(snippet),
                });
            }
        } else {
            let Some((hash, file)) = line.split_once(' ') else { return Cache::new() };
            let Ok(hash) = u64::from_str_radix(hash, 16) else { return Cache::new() };
            current = Some(file.to_owned());
            cache.insert(file.to_owned(), (hash, Vec::new()));
        }
    }
    cache
}

fn write_cache(
    path: &Path,
    digest: u64,
    files: &[LoadedFile],
    per_file: &[Vec<Finding>],
) -> io::Result<()> {
    let mut out = format!("yv-audit-cache v{ENGINE_VERSION} digest={digest:016x}\n");
    for (f, findings) in files.iter().zip(per_file) {
        if f.profile.test_file {
            continue;
        }
        out.push_str(&format!("{:016x} {}\n", f.hash, f.display));
        for finding in findings {
            out.push_str(&format!(
                "!{}|{}|{}|{}\n",
                finding.rule.name(),
                finding.line,
                escape_field(&finding.message),
                escape_field(&finding.snippet)
            ));
        }
    }
    // Atomic publish: concurrent runs (e.g. parallel test binaries) must
    // never observe a torn cache.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)
}

fn rule_by_name(name: &str) -> Option<Rule> {
    Rule::all().into_iter().find(|r| r.name() == name)
}

fn escape_field(s: &str) -> String {
    s.replace('\\', "\\\\").replace('|', "\\p").replace('\n', "\\n")
}

fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('p') => out.push('|'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

// ------------------------------------------------------------- baseline

/// Fingerprint of an accepted finding: rule + file + trimmed snippet.
/// Line numbers are deliberately absent so unrelated edits above a
/// baselined finding do not un-accept it.
fn fingerprint(f: &Finding) -> u64 {
    let key = format!("{}\0{}\0{}", f.rule.name(), f.file, f.snippet.trim());
    fnv1a64(key.as_bytes())
}

/// fingerprint -> (display line, remaining multiplicity)
type Baseline = BTreeMap<u64, (String, usize)>;

fn load_baseline(path: &Path) -> io::Result<Baseline> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::new()),
        Err(e) => return Err(e),
    };
    let mut baseline = Baseline::new();
    for line in body.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (Some(_rule), Some(fp), Some(_file)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed baseline line: {t:?}"),
            ));
        };
        let fp = u64::from_str_radix(fp, 16).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed baseline fingerprint: {t:?}"),
            )
        })?;
        let entry = baseline.entry(fp).or_insert_with(|| (t.to_owned(), 0));
        entry.1 += 1;
    }
    Ok(baseline)
}

fn write_baseline(path: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut out = String::from(
        "# yv-audit baseline — accepted findings, one `RULE FINGERPRINT FILE` per line.\n\
         # Regenerate with `yv audit fix-baseline`; stale entries fail `yv audit check`.\n",
    );
    for f in findings {
        out.push_str(&format!("{} {:016x} {}\n", f.rule.name(), fingerprint(f), f.file));
    }
    std::fs::write(path, out)
}

/// Partition findings against the baseline: (fresh, baselined count,
/// stale entries).
fn apply_baseline(
    findings: &[Finding],
    mut baseline: Baseline,
) -> (Vec<Finding>, usize, Vec<String>) {
    let mut fresh = Vec::new();
    let mut baselined = 0;
    for f in findings {
        match baseline.get_mut(&fingerprint(f)) {
            Some(entry) if entry.1 > 0 => {
                entry.1 -= 1;
                baselined += 1;
            }
            _ => fresh.push(f.clone()),
        }
    }
    let stale = baseline
        .values()
        .filter(|(_, remaining)| *remaining > 0)
        .map(|(line, _)| line.clone())
        .collect();
    (fresh, baselined, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_workspace_reference_vector() {
        // Same constants as crates/store/src/codec.rs — the digest the
        // N1 rule sanctions must be the one the store actually uses.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn escape_roundtrips_delimiters() {
        for s in ["plain", "with|pipe", "back\\slash", "multi\nline", "\\p|\\n"] {
            assert_eq!(unescape_field(&escape_field(s)), s, "{s:?}");
        }
    }

    #[test]
    fn parallel_map_is_order_stable() {
        let sq = parallel_map(100, 8, |i| i * i);
        assert_eq!(sq, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let seq = parallel_map(100, 1, |i| i * i);
        assert_eq!(sq, seq);
    }

    #[test]
    fn baseline_multiset_accepts_and_reports_stale() {
        let f = |line: usize, snippet: &str| Finding {
            rule: Rule::P1,
            file: "crates/x/src/lib.rs".to_owned(),
            line,
            message: "m".to_owned(),
            snippet: snippet.to_owned(),
        };
        let current = vec![f(3, "a.unwrap();"), f(9, "b.unwrap();")];
        let mut baseline = Baseline::new();
        for finding in [&current[0], &current[1]] {
            baseline.insert(fingerprint(finding), ("line".to_owned(), 1));
        }
        // gone() was accepted once but no longer occurs -> stale.
        let gone = f(1, "gone.unwrap();");
        baseline.insert(fingerprint(&gone), ("stale-entry".to_owned(), 1));
        let (fresh, accepted, stale) = apply_baseline(&current, baseline);
        assert!(fresh.is_empty(), "{fresh:?}");
        assert_eq!(accepted, 2);
        assert_eq!(stale, vec!["stale-entry".to_owned()]);
    }
}
