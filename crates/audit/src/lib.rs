//! yv-audit: static analysis over the workspace's own sources.
//!
//! The resolver's ranked output (paper §4.2) is only meaningful if scores
//! and cluster orderings are bit-for-bit reproducible, the serving path
//! must not panic, and victim names must never leak into operator-visible
//! logs. This crate enforces those invariants mechanically with eight
//! rules: five line-level (D1 hash-order determinism, P1 panic-freedom,
//! F1 score/float hygiene, S1 wall-clock hygiene, A1 global-allocator
//! uniqueness) and three scope-aware (L1 lock discipline, N1
//! privacy-taint, C1 cast safety) built on the [`scope`] tracker and the
//! interprocedural [`symbols`] pass. See [`rules`] for exact semantics
//! and `DESIGN.md` §10 for the rationale.
//!
//! The [`engine`] runs the rules workspace-wide in parallel with an
//! incremental cache and a committed findings baseline; [`cli`] is the
//! shared driver behind both the `yv-audit` binary and `yv audit`.
//!
//! Suppression: `// audit:allow(RULE) <justification>` on the offending
//! line, or alone on the line above it.

pub mod cli;
pub mod engine;
pub mod lexer;
pub mod profile;
pub mod report;
pub mod rules;
pub mod scope;
pub mod symbols;
pub mod walk;

use std::path::Path;

pub use engine::{AuditOutcome, EngineOptions};
pub use profile::FileProfile;
pub use rules::{Finding, Rule};

/// Analyze in-memory source text under an explicit profile. The symbol
/// index is built from this file alone — cross-file call edges need the
/// [`engine`].
#[must_use]
pub fn analyze_source(display_path: &str, source: &str, profile: &FileProfile) -> Vec<Finding> {
    if profile.test_file {
        return Vec::new();
    }
    let lines = lexer::clean_lines(source);
    let symbols = symbols::single_file_index(&lines);
    rules::check_lines(display_path, source, &lines, profile, &symbols)
}

/// Analyze one file on disk; the profile is derived from `display_path`.
pub fn analyze_file(path: &Path, display_path: &str) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(path)?;
    let profile = FileProfile::for_path(display_path);
    Ok(analyze_source(display_path, &source, &profile))
}

/// Analyze every workspace source under `root` with full interprocedural
/// symbols, no cache, no baseline. Findings come back sorted by
/// (file, line, rule).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let opts = EngineOptions { jobs: 0, cache_path: None, baseline_path: None };
    Ok(engine::run_workspace(root, &opts)?.findings)
}
