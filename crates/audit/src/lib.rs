//! yv-audit: static analysis over the workspace's own sources.
//!
//! The resolver's ranked output (paper §4.2) is only meaningful if scores
//! and cluster orderings are bit-for-bit reproducible, and the serving
//! path must not panic. This crate enforces both mechanically with five
//! line-level rules (D1 hash-order determinism, P1 panic-freedom, F1
//! score/float hygiene, S1 wall-clock hygiene, A1 global-allocator
//! uniqueness); see [`rules`] for the exact semantics and `DESIGN.md` §10
//! for the rationale.
//!
//! Suppression: `// audit:allow(RULE) <justification>` on the offending
//! line, or alone on the line above it.

pub mod lexer;
pub mod profile;
pub mod report;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use profile::FileProfile;
pub use rules::{Finding, Rule};

/// Analyze in-memory source text under an explicit profile.
#[must_use]
pub fn analyze_source(display_path: &str, source: &str, profile: &FileProfile) -> Vec<Finding> {
    if profile.test_file {
        return Vec::new();
    }
    let lines = lexer::clean_lines(source);
    rules::check_lines(display_path, source, &lines, profile)
}

/// Analyze one file on disk; the profile is derived from `display_path`.
pub fn analyze_file(path: &Path, display_path: &str) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(path)?;
    let profile = FileProfile::for_path(display_path);
    Ok(analyze_source(display_path, &source, &profile))
}

/// Analyze every workspace source under `root`. Findings come back sorted
/// by (file, line, rule).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in walk::workspace_sources(root)? {
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(analyze_file(&path, &display)?);
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}
