//! `yv-audit` — thin shim over the shared [`yv_audit::cli`] driver, which
//! also backs `yv audit`. See that module for the full CLI contract.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(yv_audit::cli::run(&args))
}
