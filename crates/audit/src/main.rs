//! `yv-audit` — audit the workspace sources for determinism, panic and
//! score-hygiene hazards.
//!
//! ```text
//! yv-audit check [PATH...] [--format=json] [--root=DIR]
//! ```
//!
//! With no PATHs the whole workspace is scanned (rule scope derived from
//! each file's crate). Explicit PATHs are checked with every rule enabled
//! unless their path identifies a crate — this is what the fixture tests
//! and the CI seeded-violation loop use.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use yv_audit::{analyze_file, analyze_workspace, report, Finding};

struct Options {
    json: bool,
    root: PathBuf,
    paths: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: yv-audit check [PATH...] [--format=json] [--root=DIR]");
    ExitCode::from(2)
}

fn workspace_root() -> PathBuf {
    // The binary lives in crates/audit; the workspace root is two up from
    // its manifest. Fall back to the current directory when the layout
    // does not match (e.g. an installed copy run ad hoc).
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn parse_args(args: &[String]) -> Option<Options> {
    let mut opts =
        Options { json: false, root: workspace_root(), paths: Vec::new() };
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("check") {
        return None;
    }
    for arg in it {
        if arg == "--format=json" {
            opts.json = true;
        } else if let Some(dir) = arg.strip_prefix("--root=") {
            opts.root = PathBuf::from(dir);
        } else if arg.starts_with("--") {
            return None;
        } else {
            opts.paths.push(arg.clone());
        }
    }
    Some(opts)
}

fn run(opts: &Options) -> std::io::Result<Vec<Finding>> {
    if opts.paths.is_empty() {
        return analyze_workspace(&opts.root);
    }
    let mut findings = Vec::new();
    for p in &opts.paths {
        let path = Path::new(p);
        let resolved = if path.is_absolute() { path.to_path_buf() } else { opts.root.join(path) };
        findings.extend(analyze_file(&resolved, p)?);
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse_args(&args) else {
        return usage();
    };
    match run(&opts) {
        Ok(findings) => {
            let rendered = if opts.json {
                report::render_json(&findings)
            } else {
                report::render_human(&findings)
            };
            print!("{rendered}");
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("yv-audit: {e}");
            ExitCode::from(2)
        }
    }
}
