//! Rendering findings for humans and machines.
//!
//! JSON is emitted by hand — the workspace's `serde` is a vendored stub —
//! so the escaping here covers exactly what source lines can contain:
//! quotes, backslashes and control characters.

use crate::rules::{Finding, Rule};

/// Human-readable report: one `file:line` anchored diagnostic per finding.
#[must_use]
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message,
            f.snippet
        ));
    }
    if findings.is_empty() {
        out.push_str("audit: clean\n");
    } else {
        out.push_str(&format!(
            "audit: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Machine-readable report: `{"findings": [...], "count": N}`.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            f.rule.name(),
            escape(&f.file),
            f.line,
            escape(&f.message),
            escape(&f.snippet)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out.push('\n');
    out
}

/// SARIF 2.1.0 report — one run, every rule declared in the driver
/// metadata, one `result` per finding. Hand-rolled like the JSON above;
/// the schema subset here is what GitHub code scanning and VS Code's
/// SARIF viewer consume.
#[must_use]
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"yv-audit\",\"rules\":[",
    );
    for (i, rule) in Rule::all().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            rule.name(),
            escape(rule.summary())
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{},\"snippet\":{{\"text\":\"{}\"}}}}}}}}]}}",
            f.rule.name(),
            escape(&f.message),
            escape(&f.file),
            f.line,
            escape(&f.snippet)
        ));
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: Rule::P1,
            file: "crates/store/src/wal.rs".to_owned(),
            line: 91,
            message: "`unwrap` can panic".to_owned(),
            snippet: "let s = \"quoted\";".to_owned(),
        }]
    }

    #[test]
    fn human_report_anchors_file_line() {
        let r = render_human(&sample());
        assert!(r.contains("crates/store/src/wal.rs:91: [P1]"));
        assert!(r.contains("audit: 1 finding\n"));
        assert!(render_human(&[]).contains("audit: clean"));
    }

    #[test]
    fn json_is_escaped_and_counted() {
        let r = render_json(&sample());
        assert!(r.contains("\"count\":1"));
        assert!(r.contains("\\\"quoted\\\""));
        assert!(render_json(&[]).contains("\"count\":0"));
    }

    #[test]
    fn sarif_declares_every_rule_and_locates_results() {
        let r = render_sarif(&sample());
        assert!(r.contains("\"version\":\"2.1.0\""));
        for rule in Rule::all() {
            assert!(r.contains(&format!("\"id\":\"{}\"", rule.name())), "{}", rule.name());
        }
        assert!(r.contains("\"ruleId\":\"P1\""));
        assert!(r.contains("\"uri\":\"crates/store/src/wal.rs\""));
        assert!(r.contains("\"startLine\":91"));
        let empty = render_sarif(&[]);
        assert!(empty.contains("\"results\":[]"));
    }
}
