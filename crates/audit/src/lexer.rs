//! Line-level lexing of Rust sources.
//!
//! The auditor deliberately avoids a full parser (the workspace builds
//! offline against vendored stubs, so `syn` is not available). Instead
//! each file is reduced to a vector of [`CleanLine`]s: code with string
//! *contents* and comments stripped, the comment text preserved separately
//! (that is where `audit:allow(...)` markers live), and a flag telling
//! whether the line sits inside `#[cfg(test)]` / `#[test]` code.
//!
//! The stripping is a small state machine over characters handling line
//! comments, nested block comments, string literals, raw strings
//! (`r#"..."#`), char literals and lifetimes (`'a` is not a char
//! literal).

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// Code with comments removed and string contents blanked (the
    /// surrounding quotes survive so `format!("{:.3}", x)` still shows a
    /// string boundary — but its *contents* are gone, keeping string text
    /// from triggering code rules).
    pub code: String,
    /// Code with comments removed but string contents kept — for rules
    /// that inspect format strings (F1) without being fooled by comments
    /// that merely mention a pattern.
    pub text: String,
    /// Concatenated comment text of the line (line and block comments).
    pub comment: String,
    /// True when the line is inside `#[cfg(test)]` items or a `#[test]`
    /// function.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    Str,
    RawStr { hashes: usize },
    BlockComment { depth: usize },
}

/// Brace-tracked region of test-only code.
#[derive(Debug, Clone, Copy)]
struct TestRegion {
    /// Brace depth at which the region's opening `{` sits; the region
    /// closes when depth falls back to this value.
    entry_depth: usize,
}

/// Lex a whole source file into clean lines.
#[must_use]
pub fn clean_lines(source: &str) -> Vec<CleanLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut depth: usize = 0;
    // Set when a `#[cfg(test)]` or `#[test]` attribute has been seen and
    // the opening brace of the annotated item is still ahead.
    let mut pending_test_attr = false;
    let mut regions: Vec<TestRegion> = Vec::new();

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut text = String::with_capacity(raw.len());
        let mut comment = String::new();
        // A region opened on this line may also close on it (`mod t { .. }`
        // one-liners), so remember that the line touched test code.
        let mut line_in_test = !regions.is_empty() || pending_test_attr;
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[char_offset(&chars, i)..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment { depth: 1 };
                        i += 2;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        code.push('"');
                        text.push('"');
                        mode = Mode::RawStr { hashes };
                        i += 2 + hashes; // r, hashes, opening quote
                    }
                    '"' => {
                        code.push('"');
                        text.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    '\'' => {
                        // Distinguish char literals from lifetimes.
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push_str("' '");
                            text.push_str("' '");
                            i = end + 1;
                        } else {
                            code.push('\'');
                            text.push('\'');
                            i += 1;
                        }
                    }
                    '{' => {
                        depth += 1;
                        if pending_test_attr {
                            regions.push(TestRegion { entry_depth: depth - 1 });
                            pending_test_attr = false;
                            line_in_test = true;
                        }
                        code.push('{');
                        text.push('{');
                        i += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if let Some(last) = regions.last() {
                            if depth <= last.entry_depth {
                                regions.pop();
                            }
                        }
                        code.push('}');
                        text.push('}');
                        i += 1;
                    }
                    ';' if pending_test_attr && depth_of_attr_item(&code) => {
                        // `#[cfg(test)] use ...;` — attribute consumed by a
                        // braceless item.
                        pending_test_attr = false;
                        code.push(';');
                        text.push(';');
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        text.push(c);
                        i += 1;
                    }
                },
                Mode::Str => match c {
                    '\\' => {
                        text.push('\\');
                        if let Some(e) = chars.get(i + 1) {
                            text.push(*e);
                        }
                        i += 2; // skip the escaped character
                    }
                    '"' => {
                        code.push('"');
                        text.push('"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => {
                        text.push(c);
                        i += 1;
                    }
                },
                Mode::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        text.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        text.push(c);
                        i += 1;
                    }
                }
                Mode::BlockComment { depth: d } => {
                    if c == '*' && next == Some('/') {
                        if d == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment { depth: d - 1 };
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment { depth: d + 1 };
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
            }
        }
        // Strings and block comments may span lines; a string open at EOL
        // simply stays open (multi-line string literal).
        if contains_test_attr(&code) {
            pending_test_attr = true;
        }
        out.push(CleanLine {
            code,
            text,
            comment,
            in_test: line_in_test || !regions.is_empty() || pending_test_attr,
        });
    }
    out
}

/// Byte offset of char index `i` within the original line.
fn char_offset(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// True when `chars[i]` begins `r"` or `r#...#"` (and is not part of an
/// identifier such as `for` or `attr`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], from: usize) -> usize {
    let mut n = 0;
    while chars.get(from + n) == Some(&'#') {
        n += 1;
    }
    n
}

fn closes_raw(chars: &[char], quote_at: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(quote_at + k) == Some(&'#'))
}

/// If `chars[i]` (a `'`) opens a char literal, return the index of its
/// closing quote; `None` means it is a lifetime or a stray quote.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: scan to the next unescaped quote.
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\'' => return Some(j),
                    '\\' => j += 2,
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            if chars.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None // `'a` lifetime or `'static`
            }
        }
    }
}

/// True when the cleaned line carries a test attribute.
fn contains_test_attr(code: &str) -> bool {
    code.contains("#[cfg(test)]")
        || code.contains("#[test]")
        || code.contains("#[cfg(all(test")
        || code.contains("#[bench]")
}

/// True when the pending attribute can be consumed by a braceless item on
/// this line (e.g. `#[cfg(test)] use foo;`).
fn depth_of_attr_item(code: &str) -> bool {
    let t = code.trim_start();
    t.contains("use ") || t.contains("extern crate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_separated() {
        let lines = clean_lines("let x = 1; // audit:allow(P1) reason\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("audit:allow(P1)"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = clean_lines("let s = \"{:.17} .unwrap() HashMap\";\n");
        assert!(!lines[0].code.contains("{:.17}"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn block_comments_can_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nstill comment .unwrap()\n*/ c\n";
        let lines = clean_lines(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert_eq!(lines[1].code.trim(), "");
        assert!(lines[2].comment.contains(".unwrap()"));
        assert_eq!(lines[3].code.trim(), "c");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = clean_lines("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }\n");
        // The quote inside the char literal must not open a string.
        assert!(lines[0].code.contains("let d ="));
    }

    #[test]
    fn raw_strings() {
        let lines = clean_lines("let r = r#\"contains \"quotes\" and .unwrap()\"#; f();\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("f();"));
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
fn lib2() {}
";
        let lines = clean_lines(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "the attribute line itself");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_fn_attribute_covers_the_function() {
        let src = "\
#[test]
fn a_test() {
    z.unwrap();
}
fn lib() {}
";
        let lines = clean_lines(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn braceless_cfg_test_use_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { x.unwrap(); }\n";
        let lines = clean_lines(src);
        assert!(!lines[2].in_test);
    }
}
