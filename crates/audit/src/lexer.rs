//! Line-level lexing of Rust sources.
//!
//! The auditor deliberately avoids a full parser (the workspace builds
//! offline against vendored stubs, so `syn` is not available). Instead
//! each file is reduced to a vector of [`CleanLine`]s: code with string
//! *contents* and comments stripped, the comment text preserved separately
//! (that is where `audit:allow(...)` markers live), and a flag telling
//! whether the line sits inside `#[cfg(test)]` / `#[test]` code.
//!
//! The stripping is a small state machine over characters handling line
//! comments, nested block comments, string literals, raw strings
//! (`r#"..."#`), char literals and lifetimes (`'a` is not a char
//! literal).

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// Code with comments removed and string contents blanked (the
    /// surrounding quotes survive so `format!("{:.3}", x)` still shows a
    /// string boundary — but its *contents* are gone, keeping string text
    /// from triggering code rules).
    pub code: String,
    /// Code with comments removed but string contents kept — for rules
    /// that inspect format strings (F1) without being fooled by comments
    /// that merely mention a pattern.
    pub text: String,
    /// Concatenated comment text of the line (line and block comments).
    pub comment: String,
    /// True when the line is inside `#[cfg(test)]` items or a `#[test]`
    /// function.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    Str,
    RawStr { hashes: usize },
    BlockComment { depth: usize },
}

/// Brace-tracked region of test-only code.
#[derive(Debug, Clone, Copy)]
struct TestRegion {
    /// Brace depth at which the region's opening `{` sits; the region
    /// closes when depth falls back to this value.
    entry_depth: usize,
}

/// Lex a whole source file into clean lines.
#[must_use]
pub fn clean_lines(source: &str) -> Vec<CleanLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut depth: usize = 0;
    // Set when a `#[cfg(test)]` or `#[test]` attribute has been seen and
    // the opening brace of the annotated item is still ahead.
    let mut pending_test_attr = false;
    let mut regions: Vec<TestRegion> = Vec::new();

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut text = String::with_capacity(raw.len());
        let mut comment = String::new();
        // A region opened on this line may also close on it (`mod t { .. }`
        // one-liners), so remember that the line touched test code.
        let mut line_in_test = !regions.is_empty() || pending_test_attr;
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[char_offset(&chars, i)..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment { depth: 1 };
                        i += 2;
                    }
                    'b' if is_raw_byte_string_start(&chars, i) => {
                        // Raw byte string `br"..."` / `br#"..."#`: the `b`
                        // prefix must not hide the raw opener, or the
                        // contents get escape-processed and desync the
                        // stripper on `br"\"`.
                        let hashes = count_hashes(&chars, i + 2);
                        code.push('"');
                        text.push('"');
                        mode = Mode::RawStr { hashes };
                        i += 3 + hashes; // b, r, hashes, opening quote
                    }
                    'b' | 'c' if chars.get(i + 1) == Some(&'"') && is_ident_boundary(&chars, i) => {
                        // Byte string `b"..."` / C string `c"..."`: normal
                        // escape rules, contents blanked like any string.
                        code.push('"');
                        text.push('"');
                        mode = Mode::Str;
                        i += 2;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        code.push('"');
                        text.push('"');
                        mode = Mode::RawStr { hashes };
                        i += 2 + hashes; // r, hashes, opening quote
                    }
                    '"' => {
                        code.push('"');
                        text.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    '\'' => {
                        // Distinguish char literals from lifetimes.
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push_str("' '");
                            text.push_str("' '");
                            i = end + 1;
                        } else {
                            code.push('\'');
                            text.push('\'');
                            i += 1;
                        }
                    }
                    '{' => {
                        depth += 1;
                        if pending_test_attr {
                            regions.push(TestRegion { entry_depth: depth - 1 });
                            pending_test_attr = false;
                            line_in_test = true;
                        }
                        code.push('{');
                        text.push('{');
                        i += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if let Some(last) = regions.last() {
                            if depth <= last.entry_depth {
                                regions.pop();
                            }
                        }
                        code.push('}');
                        text.push('}');
                        i += 1;
                    }
                    ';' if pending_test_attr && depth_of_attr_item(&code) => {
                        // `#[cfg(test)] use ...;` — attribute consumed by a
                        // braceless item.
                        pending_test_attr = false;
                        code.push(';');
                        text.push(';');
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        text.push(c);
                        i += 1;
                    }
                },
                Mode::Str => match c {
                    '\\' => {
                        text.push('\\');
                        if let Some(e) = chars.get(i + 1) {
                            text.push(*e);
                        }
                        i += 2; // skip the escaped character
                    }
                    '"' => {
                        code.push('"');
                        text.push('"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => {
                        text.push(c);
                        i += 1;
                    }
                },
                Mode::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        text.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        text.push(c);
                        i += 1;
                    }
                }
                Mode::BlockComment { depth: d } => {
                    if c == '*' && next == Some('/') {
                        if d == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment { depth: d - 1 };
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment { depth: d + 1 };
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
            }
        }
        // Strings and block comments may span lines; a string open at EOL
        // simply stays open (multi-line string literal).
        if contains_test_attr(&code) {
            pending_test_attr = true;
        }
        out.push(CleanLine {
            code,
            text,
            comment,
            in_test: line_in_test || !regions.is_empty() || pending_test_attr,
        });
    }
    out
}

/// Byte offset of char index `i` within the original line.
fn char_offset(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// True when `chars[i]` begins `r"` or `r#...#"` (and is not part of an
/// identifier such as `for` or `attr`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if chars.get(i) != Some(&'r') || !is_ident_boundary(chars, i) {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// True when no identifier continues into `chars[i]` from the left, i.e.
/// `chars[i]` can begin a literal prefix (`r`, `b`, `br`, `c`).
fn is_ident_boundary(chars: &[char], i: usize) -> bool {
    i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// True when `chars[i]` begins `br"` / `br#...#"`.
fn is_raw_byte_string_start(chars: &[char], i: usize) -> bool {
    if !is_ident_boundary(chars, i) || chars.get(i + 1) != Some(&'r') {
        return false;
    }
    let mut j = i + 2;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], from: usize) -> usize {
    let mut n = 0;
    while chars.get(from + n) == Some(&'#') {
        n += 1;
    }
    n
}

fn closes_raw(chars: &[char], quote_at: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(quote_at + k) == Some(&'#'))
}

/// If `chars[i]` (a `'`) opens a char literal, return the index of its
/// closing quote; `None` means it is a lifetime or a stray quote.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: the character after the backslash is consumed
            // unconditionally (it may itself be a quote, `'\''`), then scan
            // to the closing quote (`\u{...}` escapes span several chars).
            let mut j = i + 3;
            while j < chars.len() {
                match chars[j] {
                    '\'' => return Some(j),
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            if chars.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None // `'a` lifetime or `'static`
            }
        }
    }
}

/// True when the cleaned line carries a test attribute.
fn contains_test_attr(code: &str) -> bool {
    code.contains("#[cfg(test)]")
        || code.contains("#[test]")
        || code.contains("#[cfg(all(test")
        || code.contains("#[bench]")
}

/// True when the pending attribute can be consumed by a braceless item on
/// this line (e.g. `#[cfg(test)] use foo;`).
fn depth_of_attr_item(code: &str) -> bool {
    let t = code.trim_start();
    t.contains("use ") || t.contains("extern crate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_separated() {
        let lines = clean_lines("let x = 1; // audit:allow(P1) reason\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("audit:allow(P1)"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = clean_lines("let s = \"{:.17} .unwrap() HashMap\";\n");
        assert!(!lines[0].code.contains("{:.17}"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn block_comments_can_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nstill comment .unwrap()\n*/ c\n";
        let lines = clean_lines(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert_eq!(lines[1].code.trim(), "");
        assert!(lines[2].comment.contains(".unwrap()"));
        assert_eq!(lines[3].code.trim(), "c");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = clean_lines("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }\n");
        // The quote inside the char literal must not open a string.
        assert!(lines[0].code.contains("let d ="));
    }

    #[test]
    fn raw_strings() {
        let lines = clean_lines("let r = r#\"contains \"quotes\" and .unwrap()\"#; f();\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("f();"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_desync() {
        // `'\''` ends at the *second* quote; mistaking the escaped quote
        // for the closer would re-lex the real closer and blind the
        // stripper to everything after it.
        let lines = clean_lines("let q = '\\''; x.unwrap();\n");
        assert!(lines[0].code.contains(".unwrap()"), "{:?}", lines[0].code);
        let lines = clean_lines("let t = '\\t'; let u = '\\u{1F600}'; y.unwrap();\n");
        assert!(lines[0].code.contains(".unwrap()"), "{:?}", lines[0].code);
    }

    #[test]
    fn byte_strings_are_blanked_like_strings() {
        let lines = clean_lines("let b = b\"bytes .unwrap()\"; f();\n");
        assert!(!lines[0].code.contains("unwrap"), "{:?}", lines[0].code);
        assert!(lines[0].code.contains("f();"));
        // `br"\"` must not escape-process the backslash: the string closes
        // at the quote and `g()` is code.
        let lines = clean_lines("let rb = br\"\\\"; g();\n");
        assert!(lines[0].code.contains("g();"), "{:?}", lines[0].code);
        let lines = clean_lines("let rb = br#\"raw \"quoted\" .unwrap()\"#; h();\n");
        assert!(!lines[0].code.contains("unwrap"), "{:?}", lines[0].code);
        assert!(lines[0].code.contains("h();"));
    }

    #[test]
    fn multiline_raw_strings_stay_open_across_lines() {
        let src = "let r = r#\"first\nsecond .unwrap() // not a comment\nlast\"#; tail();\n";
        let lines = clean_lines(src);
        assert!(!lines[1].code.contains("unwrap"), "{:?}", lines[1].code);
        assert!(lines[1].comment.is_empty(), "string text is not comment text");
        assert!(lines[2].code.contains("tail();"), "{:?}", lines[2].code);
    }

    #[test]
    fn raw_string_with_inner_hash_quote_sequences() {
        // `"#` inside an `r##"..."##` literal does not close it.
        let src = "let r = r##\"has \"# inside\"##; k();\n";
        let lines = clean_lines(src);
        assert!(lines[0].code.contains("k();"), "{:?}", lines[0].code);
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
fn lib2() {}
";
        let lines = clean_lines(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "the attribute line itself");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_fn_attribute_covers_the_function() {
        let src = "\
#[test]
fn a_test() {
    z.unwrap();
}
fn lib() {}
";
        let lines = clean_lines(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn braceless_cfg_test_use_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { x.unwrap(); }\n";
        let lines = clean_lines(src);
        assert!(!lines[2].in_test);
    }
}
