//! The shared audit driver behind both entry points: the standalone
//! `yv-audit` binary and the `yv audit` subcommand.
//!
//! ```text
//! audit check [PATH...] [--format human|json|sarif] [--jobs N]
//!             [--root DIR] [--no-cache] [--baseline FILE]
//! audit fix-baseline    [--jobs N] [--root DIR] [--no-cache] [--baseline FILE]
//! ```
//!
//! With no PATHs, `check` runs the parallel workspace engine: incremental
//! cache, committed baseline, interprocedural symbols. Explicit PATHs use
//! the single-file analyzer with neither cache nor baseline — that mode
//! is what the fixture tests and the CI seeded-violation loop drive.
//!
//! Findings and renderings go to stdout; engine statistics (file counts,
//! cache hits, baselined totals) go to stderr, so stdout is byte-for-byte
//! identical across `--jobs` values and cache states — CI diffs it.
//!
//! Exit codes: 0 clean, 1 findings (fresh or stale baseline), 2 usage/IO.

use std::path::{Path, PathBuf};

use crate::engine::{self, AuditOutcome, EngineOptions};
use crate::rules::Finding;
use crate::{analyze_file, report};

const USAGE: &str = "usage: yv-audit <check|fix-baseline> [PATH...] \
[--format human|json|sarif] [--jobs N] [--root DIR] [--no-cache] [--baseline FILE]";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Check,
    FixBaseline,
}

struct Options {
    command: Command,
    format: Format,
    jobs: usize,
    root: PathBuf,
    no_cache: bool,
    baseline: Option<PathBuf>,
    paths: Vec<String>,
}

/// The workspace root as seen from this crate's manifest (two levels up);
/// falls back to the current directory for ad-hoc installed copies.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Accept both `--flag=value` and `--flag value` spellings.
fn flag_value<'a>(
    arg: &'a str,
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Option<Option<&'a str>> {
    if let Some(rest) = arg.strip_prefix(flag) {
        if let Some(v) = rest.strip_prefix('=') {
            return Some(Some(v));
        }
        if rest.is_empty() {
            return Some(it.next().map(String::as_str));
        }
    }
    None
}

fn parse_args(args: &[String]) -> Option<Options> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("check") => Command::Check,
        Some("fix-baseline") => Command::FixBaseline,
        _ => return None,
    };
    let mut opts = Options {
        command,
        format: Format::Human,
        jobs: 0,
        root: workspace_root(),
        no_cache: false,
        baseline: None,
        paths: Vec::new(),
    };
    while let Some(arg) = it.next() {
        if let Some(v) = flag_value(arg, "--format", &mut it) {
            opts.format = match v {
                Some("human") => Format::Human,
                Some("json") => Format::Json,
                Some("sarif") => Format::Sarif,
                _ => return None,
            };
        } else if let Some(v) = flag_value(arg, "--jobs", &mut it) {
            opts.jobs = v.and_then(|s| s.parse().ok())?;
        } else if let Some(v) = flag_value(arg, "--root", &mut it) {
            opts.root = PathBuf::from(v?);
        } else if let Some(v) = flag_value(arg, "--baseline", &mut it) {
            opts.baseline = Some(PathBuf::from(v?));
        } else if arg == "--no-cache" {
            opts.no_cache = true;
        } else if arg.starts_with("--") {
            return None;
        } else {
            opts.paths.push(arg.clone());
        }
    }
    if opts.command == Command::FixBaseline && !opts.paths.is_empty() {
        return None;
    }
    Some(opts)
}

fn engine_options(opts: &Options) -> EngineOptions {
    EngineOptions {
        jobs: opts.jobs,
        cache_path: if opts.no_cache { None } else { Some(opts.root.join(engine::CACHE_FILE)) },
        baseline_path: Some(
            opts.baseline.clone().unwrap_or_else(|| opts.root.join(engine::BASELINE_FILE)),
        ),
    }
}

fn render(findings: &[Finding], format: Format) -> String {
    match format {
        Format::Human => report::render_human(findings),
        Format::Json => report::render_json(findings),
        Format::Sarif => report::render_sarif(findings),
    }
}

/// Human workspace report: fresh findings, stale baseline entries, one
/// summary line.
fn render_outcome_human(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.fresh {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message,
            f.snippet
        ));
    }
    for s in &outcome.stale {
        out.push_str(&format!("stale baseline entry (regenerate with fix-baseline): {s}\n"));
    }
    if outcome.clean() {
        out.push_str("audit: clean\n");
    } else {
        out.push_str(&format!(
            "audit: {} fresh finding{}, {} stale baseline entr{}\n",
            outcome.fresh.len(),
            if outcome.fresh.len() == 1 { "" } else { "s" },
            outcome.stale.len(),
            if outcome.stale.len() == 1 { "y" } else { "ies" },
        ));
    }
    out
}

fn check_paths(opts: &Options) -> std::io::Result<u8> {
    let mut findings = Vec::new();
    for p in &opts.paths {
        let path = Path::new(p);
        let resolved =
            if path.is_absolute() { path.to_path_buf() } else { opts.root.join(path) };
        findings.extend(analyze_file(&resolved, p)?);
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    print!("{}", render(&findings, opts.format));
    Ok(u8::from(!findings.is_empty()))
}

fn check_workspace(opts: &Options) -> std::io::Result<u8> {
    let outcome = engine::run_workspace(&opts.root, &engine_options(opts))?;
    match opts.format {
        Format::Human => print!("{}", render_outcome_human(&outcome)),
        _ => {
            print!("{}", render(&outcome.fresh, opts.format));
            for s in &outcome.stale {
                eprintln!("yv-audit: stale baseline entry: {s}");
            }
        }
    }
    eprintln!(
        "yv-audit: {} files, {} cache hits, {} baselined finding(s)",
        outcome.files, outcome.cache_hits, outcome.baselined
    );
    Ok(u8::from(!outcome.clean()))
}

fn fix_baseline(opts: &Options) -> std::io::Result<u8> {
    let outcome = engine::fix_baseline(&opts.root, &engine_options(opts))?;
    eprintln!(
        "yv-audit: baseline rewritten with {} finding(s) across {} files",
        outcome.findings.len(),
        outcome.files
    );
    Ok(0)
}

/// Run the audit CLI on pre-split arguments (without the program name).
/// Returns the process exit code.
#[must_use]
pub fn run(args: &[String]) -> u8 {
    let Some(opts) = parse_args(args) else {
        eprintln!("{USAGE}");
        return 2;
    };
    let result = match (opts.command, opts.paths.is_empty()) {
        (Command::Check, false) => check_paths(&opts),
        (Command::Check, true) => check_workspace(&opts),
        (Command::FixBaseline, _) => fix_baseline(&opts),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("yv-audit: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn both_flag_spellings_parse() {
        let a = parse_args(&argv(&["check", "--format=sarif", "--jobs=4"])).expect("eq form");
        let b = parse_args(&argv(&["check", "--format", "sarif", "--jobs", "4"]))
            .expect("space form");
        assert_eq!(a.format, Format::Sarif);
        assert_eq!(b.format, Format::Sarif);
        assert_eq!(a.jobs, 4);
        assert_eq!(b.jobs, 4);
    }

    #[test]
    fn invalid_input_is_rejected() {
        assert!(parse_args(&argv(&["bogus"])).is_none());
        assert!(parse_args(&argv(&[])).is_none());
        assert!(parse_args(&argv(&["check", "--format", "yaml"])).is_none());
        assert!(parse_args(&argv(&["check", "--jobs", "many"])).is_none());
        assert!(parse_args(&argv(&["check", "--unknown"])).is_none());
        assert!(
            parse_args(&argv(&["fix-baseline", "some/path.rs"])).is_none(),
            "fix-baseline is workspace-only"
        );
    }

    #[test]
    fn paths_and_defaults() {
        let o = parse_args(&argv(&["check", "crates/x/src/lib.rs"])).expect("parse");
        assert_eq!(o.paths, ["crates/x/src/lib.rs"]);
        assert_eq!(o.format, Format::Human);
        assert_eq!(o.jobs, 0);
        assert!(!o.no_cache);
    }
}
