//! Mapping a file path to the set of rules that apply to it.
//!
//! The rule scoping mirrors ISSUE-2: panic-freedom (P1) is demanded of the
//! library crates that back `yv serve`, wall-clock hygiene (S1) of
//! everything except the one crate sanctioned to own the wall clock
//! (`yv-obs`), float hygiene (F1) of persistence and protocol code, and
//! hash-order determinism (D1) everywhere. Files whose path does not
//! identify a workspace crate (e.g. audit fixtures) get every rule — the
//! conservative default.

/// Crates whose non-test code must be panic-free (P1).
const P1_CRATES: [&str; 7] = ["core", "blocking", "mfi", "store", "similarity", "adt", "obs"];

/// The only crate allowed to read the wall clock: `yv-obs` wraps
/// `Instant::now` behind its `Clock` trait, and every other crate takes
/// time through an injected clock — so S1 holds by construction
/// everywhere else, and this exemption is the single escape hatch.
const S1_EXEMPT_CRATES: [&str; 1] = ["obs"];

/// The only crate allowed to install a global allocator (A1): `yv-obs`
/// hosts the counting allocator behind its `global-alloc` feature, and the
/// allocator gauges are only attributable if that installation stays
/// unique in the process.
const A1_EXEMPT_CRATES: [&str; 1] = ["obs"];

/// File-name fragments marking persistence/protocol code (F1 and C1
/// scope: the files whose bytes outlive the process or cross the wire).
const F1_FILES: [&str; 6] = ["persist", "codec", "snapshot", "wal", "protocol", "csv"];

/// Crates in the privacy-taint (N1) scope: the serving and observability
/// layers, where a stray `println!`/log line is operator-visible output
/// that must never carry raw victim names. The batch CLI prints names to
/// the operator's own terminal by design and stays out of scope.
const N1_CRATES: [&str; 3] = ["store", "obs", "fuzzy"];

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy)]
pub struct FileProfile {
    pub d1: bool,
    pub p1: bool,
    pub f1: bool,
    pub s1: bool,
    pub a1: bool,
    /// Lock-discipline: guards across blocking I/O, shard lock order.
    pub l1: bool,
    /// Privacy-taint: name-derived values into log/metrics sinks.
    pub n1: bool,
    /// Cast-safety: integer narrowing in persisted formats.
    pub c1: bool,
    /// Path components identified this as test/bench/example code; all
    /// rules are off.
    pub test_file: bool,
}

impl FileProfile {
    /// Every rule on — used for unknown paths and in-memory checks.
    #[must_use]
    pub fn all() -> Self {
        FileProfile {
            d1: true,
            p1: true,
            f1: true,
            s1: true,
            a1: true,
            l1: true,
            n1: true,
            c1: true,
            test_file: false,
        }
    }

    fn none_test() -> Self {
        FileProfile {
            d1: false,
            p1: false,
            f1: false,
            s1: false,
            a1: false,
            l1: false,
            n1: false,
            c1: false,
            test_file: true,
        }
    }

    /// Classify a workspace-relative path (`/`-separated).
    #[must_use]
    pub fn for_path(path: &str) -> Self {
        let norm = path.replace('\\', "/");
        let components: Vec<&str> = norm.split('/').collect();
        if components
            .iter()
            .any(|c| matches!(*c, "tests" | "benches" | "examples"))
        {
            return FileProfile::none_test();
        }
        // Fixture snippets exercise every rule regardless of which crate
        // hosts them.
        if components.contains(&"fixtures") {
            return FileProfile::all();
        }
        let crate_name = components
            .iter()
            .position(|c| *c == "crates")
            .and_then(|i| components.get(i + 1))
            .copied();
        let file_name = components.last().copied().unwrap_or_default();
        let persisted = F1_FILES.iter().any(|f| file_name.contains(f));
        match crate_name {
            Some(name) => FileProfile {
                d1: true,
                p1: P1_CRATES.contains(&name),
                f1: persisted,
                s1: !S1_EXEMPT_CRATES.contains(&name),
                a1: !A1_EXEMPT_CRATES.contains(&name),
                // Lock discipline holds everywhere non-test code takes a
                // lock; the rule is inert in lock-free crates.
                l1: true,
                n1: N1_CRATES.contains(&name),
                c1: persisted,
                test_file: false,
            },
            // Root src/, fixtures, anything unrecognized: all rules.
            None => FileProfile::all(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_crate_gets_p1_and_s1() {
        let p = FileProfile::for_path("crates/blocking/src/mfiblocks.rs");
        assert!(p.d1 && p.p1 && p.s1 && !p.f1);
    }

    #[test]
    fn store_persistence_file_gets_f1() {
        let p = FileProfile::for_path("crates/store/src/wal.rs");
        assert!(p.f1 && p.p1 && p.s1);
    }

    #[test]
    fn cli_crate_gets_d1_and_s1_but_not_p1_or_f1() {
        let p = FileProfile::for_path("crates/cli/src/commands.rs");
        assert!(p.d1 && !p.p1 && p.s1 && !p.f1);
    }

    #[test]
    fn obs_is_the_sole_s1_exemption() {
        let p = FileProfile::for_path("crates/obs/src/clock.rs");
        assert!(p.d1 && p.p1 && !p.s1, "yv-obs owns the wall clock");
        for other in ["core", "blocking", "store", "eval", "bench", "cli", "datagen"] {
            let p = FileProfile::for_path(&format!("crates/{other}/src/lib.rs"));
            assert!(p.s1, "{other} must stay under S1");
        }
    }

    #[test]
    fn obs_is_the_sole_a1_exemption() {
        let p = FileProfile::for_path("crates/obs/src/alloc.rs");
        assert!(!p.a1, "yv-obs owns the global allocator");
        for other in ["core", "blocking", "store", "eval", "bench", "cli", "datagen"] {
            let p = FileProfile::for_path(&format!("crates/{other}/src/lib.rs"));
            assert!(p.a1, "{other} must stay under A1");
        }
    }

    #[test]
    fn test_dirs_are_exempt() {
        let p = FileProfile::for_path("crates/store/tests/server_e2e.rs");
        assert!(p.test_file && !p.d1 && !p.p1);
        let b = FileProfile::for_path("crates/similarity/benches/jw.rs");
        assert!(b.test_file);
    }

    #[test]
    fn unknown_paths_get_everything() {
        let p = FileProfile::for_path("crates/audit/fixtures/bad_f1.rs");
        // `fixtures` is not a test dir; unknown crate layout → all rules.
        assert!(p.d1 && p.p1 && p.f1 && p.s1);
        let r = FileProfile::for_path("src/lib.rs");
        assert!(r.d1 && r.p1);
    }
}
