//! Deterministic discovery of the workspace's own `.rs` sources.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into. `fixtures` holds deliberately-bad
/// audit snippets; `vendor` holds stub crates we do not own; `target` is
/// build output.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Collect every `.rs` file under `root`, sorted by path so reports (and
/// CI diffs against them) are stable.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_own_sources_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = workspace_sources(root).expect("walk audit crate");
        assert!(files.iter().any(|p| p.ends_with("src/walk.rs")));
        // No file may come from a `fixtures` *directory* (a test file
        // named fixtures.rs is fine).
        assert!(!files
            .iter()
            .any(|p| p.parent().is_some_and(|d| d.ends_with("fixtures"))));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "output is path-sorted");
    }
}
