//! The symbol pass: which functions perform blocking I/O.
//!
//! L1 must see that `shard.wal.append_record(...)` blocks on an fsync
//! even though the `write_all` lives two calls away in `wal.rs`. Without
//! a type system to resolve receivers, the pass works on names:
//!
//! 1. Per file, every function is summarized as (name, does direct I/O,
//!    names it calls). Direct I/O is a fixed pattern list
//!    ([`DIRECT_IO`]); calls are lowercase identifiers in call position.
//! 2. Workspace-wide, a fixpoint propagates blockingness along call
//!    edges. A *name* counts as blocking only when **every** function of
//!    that name in the workspace is blocking (conjunctive merge): one
//!    `add_record` doing WAL appends must not taint the in-memory
//!    `QueryIndex::add_record` at unrelated call sites. Sound for a
//!    compiler, wrong for a lint — precision beats recall here because
//!    every false positive costs an `audit:allow` annotation.
//! 3. Short or ubiquitous names (`write`, `lock`, ...) never propagate:
//!    `.write()` is how this workspace *acquires* a lock.
//!
//! Because file A's findings now depend on file B's contents, the engine
//! folds a digest of the blocking-name set into its cache key; editing
//! `wal.rs` correctly invalidates cached findings for `store.rs`.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::CleanLine;
use crate::scope::{file_scopes, FileScopes};

/// Call patterns that block the calling thread on I/O directly.
pub const DIRECT_IO: [&str; 17] = [
    ".write_all(",
    ".flush(",
    ".sync_all(",
    ".sync_data(",
    ".set_len(",
    "fs::write(",
    "fs::rename(",
    "fs::read(",
    "fs::read_to_string(",
    "fs::remove_file(",
    "File::open(",
    "File::create(",
    "OpenOptions::new(",
    "TcpStream::connect(",
    ".incoming()",
    ".read_line(",
    ".read_to_end(",
];

/// Names that never participate in call-edge propagation: too generic to
/// resolve by name alone, or homonyms of non-blocking primitives —
/// `.write()`/`.read()`/`.lock()` are how this workspace *acquires* a
/// lock, and `.load()`/`.store()` are atomics (a blocking `pub fn load`
/// elsewhere must not taint `generation.load(Ordering::SeqCst)`).
const GENERIC_NAMES: [&str; 18] = [
    "write", "read", "lock", "flush", "send", "recv", "next", "iter", "push", "insert",
    "clone", "drop", "wait", "spawn", "join", "main", "load", "store",
];

/// Minimum identifier length for call-edge propagation.
const MIN_CALL_NAME: usize = 4;

/// One function's interprocedural summary.
#[derive(Debug)]
pub struct FnSummary {
    pub name: String,
    pub direct_io: bool,
    pub calls: BTreeSet<String>,
}

/// The workspace-wide (or single-file) set of blocking function names.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    blocking: BTreeSet<String>,
}

impl SymbolIndex {
    /// No interprocedural knowledge; only [`DIRECT_IO`] patterns match.
    #[must_use]
    pub fn empty() -> Self {
        SymbolIndex::default()
    }

    /// Build from per-file summaries (collect with [`fn_summaries`]).
    #[must_use]
    pub fn build(summaries: &[FnSummary]) -> Self {
        // name -> indices of its definitions
        let mut defs: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in summaries.iter().enumerate() {
            defs.entry(s.name.as_str()).or_default().push(i);
        }
        let mut blocking_def: Vec<bool> = summaries.iter().map(|s| s.direct_io).collect();
        let name_blocking = |blocking_def: &[bool], name: &str| {
            defs.get(name).is_some_and(|ds| ds.iter().all(|&d| blocking_def[d]))
        };
        loop {
            let mut changed = false;
            for (i, s) in summaries.iter().enumerate() {
                if blocking_def[i] {
                    continue;
                }
                let calls_blocking = s
                    .calls
                    .iter()
                    .any(|c| eligible(c) && name_blocking(&blocking_def, c));
                if calls_blocking {
                    blocking_def[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let blocking = defs
            .iter()
            .filter(|(name, ds)| eligible(name) && ds.iter().all(|&d| blocking_def[d]))
            .map(|(name, _)| (*name).to_owned())
            .collect();
        SymbolIndex { blocking }
    }

    /// The blocking-name set, for digesting into the engine cache key.
    pub fn blocking_names(&self) -> impl Iterator<Item = &str> {
        self.blocking.iter().map(String::as_str)
    }

    /// Does this cleaned line block on I/O — directly, or by calling a
    /// known-blocking function?
    #[must_use]
    pub fn blocking_call(&self, code: &str) -> bool {
        if DIRECT_IO.iter().any(|p| code.contains(p)) {
            return true;
        }
        self.blocking.iter().any(|name| calls(code, name))
    }
}

fn eligible(name: &str) -> bool {
    name.len() >= MIN_CALL_NAME && !GENERIC_NAMES.contains(&name)
}

/// `name(` in call position with a left identifier boundary, so `create(`
/// does not match `recreate(`.
fn calls(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(name) {
        let abs = from + rel;
        let end = abs + name.len();
        let bounded = abs == 0
            || !(bytes[abs - 1].is_ascii_alphanumeric() || bytes[abs - 1] == b'_');
        if bounded && bytes.get(end) == Some(&b'(') {
            return true;
        }
        from = abs + name.len().max(1);
    }
    false
}

/// Summarize every function of one lexed file. Test code is skipped
/// entirely — a blocking helper inside `#[cfg(test)]` must not poison
/// production call sites of the same name.
#[must_use]
pub fn fn_summaries(lines: &[CleanLine], scopes: &FileScopes) -> Vec<FnSummary> {
    let mut out = Vec::new();
    for f in &scopes.functions {
        if lines.get(f.start).is_some_and(|l| l.in_test) {
            continue;
        }
        let mut direct_io = false;
        let mut calls_set = BTreeSet::new();
        for line in lines.iter().take(f.end + 1).skip(f.start) {
            if line.in_test {
                continue;
            }
            if DIRECT_IO.iter().any(|p| line.code.contains(p)) {
                direct_io = true;
            }
            collect_calls(&line.code, &mut calls_set);
        }
        // A function is not a call edge to itself.
        calls_set.remove(&f.name);
        out.push(FnSummary { name: f.name.clone(), direct_io, calls: calls_set });
    }
    out
}

/// Lowercase identifiers immediately followed by `(` — call position.
fn collect_calls(code: &str, into: &mut BTreeSet<String>) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_lowercase() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let bounded = start == 0
                || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
            if bounded && bytes.get(i) == Some(&b'(') {
                let name = &code[start..i];
                if eligible(name) && !is_keyword(name) {
                    into.insert(name.to_owned());
                }
            }
        } else if b.is_ascii_alphanumeric() {
            // Skip the rest of a non-lowercase-initial identifier.
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
}

fn is_keyword(name: &str) -> bool {
    matches!(name, "match" | "return" | "while" | "loop" | "if" | "else" | "for" | "move")
}

/// Convenience: the symbol index of a single file in isolation (used by
/// the single-path CLI mode and in-memory checks).
#[must_use]
pub fn single_file_index(lines: &[CleanLine]) -> SymbolIndex {
    let scopes = file_scopes(lines);
    SymbolIndex::build(&fn_summaries(lines, &scopes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean_lines;

    fn index_of(src: &str) -> SymbolIndex {
        single_file_index(&clean_lines(src))
    }

    #[test]
    fn direct_io_marks_a_function_blocking() {
        let idx = index_of("fn append_frame(f: &mut File) {\n    f.write_all(b\"x\");\n}\n");
        assert!(idx.blocking_call("wal.append_frame(payload)"));
    }

    #[test]
    fn blockingness_propagates_along_call_edges() {
        let src = "\
fn append_frame(f: &mut File) {\n    f.sync_data();\n}\n\
fn append_record(w: &mut W) {\n    w.append_frame();\n}\n";
        let idx = index_of(src);
        assert!(idx.blocking_call("shard.wal.append_record(ticket)"));
    }

    #[test]
    fn conjunctive_merge_spares_pure_homonyms() {
        // Two `add_record` definitions, one pure: the *name* must not be
        // treated as blocking at call sites.
        let src = "\
fn add_record(w: &mut W) {\n    w.append_frame();\n}\n\
fn append_frame(f: &mut File) {\n    f.sync_data();\n}\n\
mod index {\n    fn add_record(v: &mut Vec<u32>, x: u32) {\n        v.push(x);\n    }\n}\n";
        let idx = index_of(src);
        assert!(!idx.blocking_call("shard.index.add_record(rid)"));
        assert!(idx.blocking_call("w.append_frame()"), "direct pattern still matches");
    }

    #[test]
    fn generic_names_never_propagate() {
        let src = "fn write(f: &mut File) {\n    f.sync_all();\n}\n";
        let idx = index_of(src);
        assert!(!idx.blocking_call("let g = self.shards[0].write();"));
    }

    #[test]
    fn test_code_is_not_summarized() {
        let src = "#[cfg(test)]\nmod t {\n    fn helper_io(f: &mut File) {\n        f.write_all(b\"x\");\n    }\n}\n";
        let idx = index_of(src);
        assert!(!idx.blocking_call("helper_io(f)"));
    }
}
