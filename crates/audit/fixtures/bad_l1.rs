// Known-bad fixture for rule L1: a shard guard held across blocking WAL
// I/O (line 8), and shard locks acquired out of index order (line 14).
use std::fs::File;
use std::io::Write;

pub fn append(file: &mut File, shards: &[std::sync::RwLock<u32>], payload: &[u8]) {
    let guard = shards[3].write();
    file.write_all(payload);
    drop(guard);
}

pub fn quiesce_pair(shards: &[std::sync::RwLock<u32>]) {
    let hi = shards[1].write();
    let lo = shards[0].write();
    drop(lo);
    drop(hi);
}
