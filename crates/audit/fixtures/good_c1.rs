// Known-good fixture for rule C1: persisted values narrow through
// `try_from` with a typed error; widening conversions stay implicit, and
// identifiers like `wide_len` do not trip the word-boundary matcher.
pub enum FrameError {
    Oversized,
}

pub fn frame_header(seq: u64, payload: &[u8]) -> Result<[u8; 8], FrameError> {
    let mut out = [0u8; 8];
    let short_seq = u32::try_from(seq).map_err(|_| FrameError::Oversized)?;
    let len = u16::try_from(payload.len()).map_err(|_| FrameError::Oversized)?;
    let wide_len = u64::from(len) + u64::from(short_seq);
    out[..4].copy_from_slice(&short_seq.to_le_bytes());
    out[4..6].copy_from_slice(&len.to_le_bytes());
    out[7] = wide_len.count_ones() as u8;
    Ok(out)
}
