// Suppression fixture: the same P1 violation as bad_p1.rs, discharged by
// an audit:allow marker — once inline, once on the preceding line.

pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap() // audit:allow(P1) fixture demonstrates inline suppression
}

pub fn tail(values: &[u32]) -> u32 {
    // audit:allow(P1) fixture demonstrates preceding-line suppression
    *values.last().unwrap()
}
