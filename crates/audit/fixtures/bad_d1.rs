// Known-bad fixture for rule D1: hash-ordered iteration feeding a push
// with no canonicalizing sort. The violation is on line 7.
use std::collections::HashMap;

pub fn emit(clusters: &HashMap<u32, Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::new();
    for (id, _members) in clusters {
        out.push(*id);
    }
    out
}
