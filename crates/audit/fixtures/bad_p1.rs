// Known-bad fixture for rule P1: a panicking call in non-test library
// code. The violation is on line 5.

pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
