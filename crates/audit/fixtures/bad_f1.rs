// Known-bad fixture for rule F1: fixed-precision float formatting (line
// 5) and a lossy `as` cast on a score value (line 9).

pub fn persist_score(score: f64) -> String {
    format!("{:.17}", score)
}

pub fn narrow(score: f64) -> f32 {
    score as f32
}
