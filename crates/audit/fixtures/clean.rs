// Known-clean fixture: sorted BTree iteration, error propagation, debug
// float formatting, no wall-clock reads. Mentions of .unwrap() or {:.17}
// in comments and strings must not fire.
use std::collections::BTreeMap;

pub fn emit(clusters: &BTreeMap<u32, Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::new();
    for (id, _members) in clusters {
        out.push(*id);
    }
    out
}

pub fn head(values: &[u32]) -> Option<u32> {
    values.first().copied()
}

pub fn persist_score(score: f64) -> String {
    let _prose = "never call .unwrap() or format with {:.17} here";
    format!("{score:?}")
}
