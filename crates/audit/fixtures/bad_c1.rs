// Known-bad fixture for rule C1: lossy `as` narrowing of sequence and
// length values in a persisted frame header (lines 5 and 6).
pub fn frame_header(seq: u64, payload: &[u8]) -> [u8; 8] {
    let mut out = [0u8; 8];
    let short_seq = seq as u32;
    let len = payload.len() as u16;
    out[..4].copy_from_slice(&short_seq.to_le_bytes());
    out[4..6].copy_from_slice(&len.to_le_bytes());
    out
}
