// Known-bad fixture for rule S1: a wall-clock read in deterministic
// pipeline code. The violation is on line 6.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
