// Known-good fixture for rule L1: the guard is block-confined so the data
// is staged before the blocking I/O, and shard locks ascend by index.
use std::fs::File;
use std::io::Write;

pub fn append(file: &mut File, shards: &[std::sync::RwLock<Vec<u8>>]) {
    let staged = { let queue = shards[2].read(); queue.clone() };
    file.write_all(&staged);
    file.flush();
}

pub fn quiesce(shards: &[std::sync::RwLock<Vec<u8>>]) {
    let lo = shards[0].write();
    let hi = shards[1].write();
    drop(hi);
    drop(lo);
}
