// Known-bad fixture for rule N1: a victim name flows into the slow-query
// log (line 7), a metrics label (line 9) and a trace annotation (line 10).
use std::io::Write;

pub fn report(slow_log: &mut std::fs::File, last_names: &str, metrics: &Metrics, trace: &mut TraceCtx) {
    let shown = last_names.trim();
    writeln!(slow_log, "slow resolve for {}", shown);
    let hits = 3;
    metrics.set_gauge(&format!("yv_resolve_{}_hits", shown), hits);
    trace.annotate("resolve_name", shown);
}
