// Known-bad fixture for rule N1: a victim name flows into the slow-query
// log (line 7) and into a metrics label (line 9) without the digest.
use std::io::Write;

pub fn report(slow_log: &mut std::fs::File, last_names: &str, metrics: &Metrics) {
    let shown = last_names.trim();
    writeln!(slow_log, "slow resolve for {}", shown);
    let hits = 3;
    metrics.set_gauge(&format!("yv_resolve_{}_hits", shown), hits);
}
