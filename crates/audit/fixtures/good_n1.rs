// Known-good fixture for rule N1: operator-visible output carries only
// the sanctioned fnv1a digest and aggregate widths, never the raw value.
use std::io::Write;

pub fn report(slow_log: &mut std::fs::File, last_names: &str, metrics: &Metrics, trace: &mut TraceCtx) {
    let digest = fnv1a64(last_names.as_bytes());
    writeln!(slow_log, "slow resolve for {:016x}", digest);
    let width = last_names.len();
    metrics.set_gauge(&format!("yv_resolve_width_{}", width), 1);
    trace.annotate("name_digest", fnv1a64(last_names.as_bytes()));
}
