// Known-bad fixture for rule A1: a global allocator installed outside
// yv-obs. The violation is on line 5.
use std::alloc::System;

#[global_allocator]
static ROGUE: System = System;
