//! Property tests for the incremental resolver: bootstrapping on a batch
//! and streaming the remainder must agree with one batch resolution over
//! the union wherever the two consider the same pair, and every
//! incremental score must be exactly what the pipeline's scorer says
//! about the union dataset.
//!
//! Exact match-set equality is *not* expected: MFIBlocks mines candidate
//! pairs globally while the incremental rule pairs on shared informative
//! items, so each may propose pairs the other skips. Where both propose a
//! pair, the scores must be identical — the model and features are the
//! same.

use proptest::prelude::*;
use std::collections::HashMap;
use yv_core::{
    build_train_set, IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig,
};
use yv_datagen::{tag_pairs, GenConfig};
use yv_records::{Dataset, RecordId};

fn clone_prefix(ds: &Dataset, n: usize) -> Dataset {
    let mut out = Dataset::new();
    for source in ds.sources() {
        out.add_source(source.clone());
    }
    for rid in ds.record_ids().take(n) {
        out.add_record(ds.record(rid).clone());
    }
    out
}

fn trained(gen: &yv_datagen::Generated, config: &PipelineConfig) -> Pipeline {
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(gen, &blocked.candidate_pairs, 4);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let ts = build_train_set(&gen.dataset, &labelled);
    Pipeline::with_model(yv_adt::train(&ts, &config.train))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn bootstrap_plus_stream_agrees_with_batch_over_union(
        seed in 0u64..40,
        holdout in 1usize..6,
    ) {
        let gen = GenConfig::random(200, seed).generate();
        let config = PipelineConfig::default();
        let pipeline = trained(&gen, &config);
        let inc_config = IncrementalConfig::default();
        let n = gen.dataset.len();

        // Batch over the union.
        let full = IncrementalResolver::bootstrap(
            clone_prefix(&gen.dataset, n),
            pipeline.clone(),
            config.clone(),
            inc_config,
        );
        // Bootstrap on a prefix, stream the held-out suffix.
        let mut streamed = IncrementalResolver::bootstrap(
            clone_prefix(&gen.dataset, n - holdout),
            pipeline.clone(),
            config.clone(),
            inc_config,
        );
        for rid in gen.dataset.record_ids().skip(n - holdout) {
            streamed.insert(gen.dataset.record(rid).clone());
        }

        // Same union dataset, record for record.
        prop_assert_eq!(streamed.len(), full.len());
        for rid in gen.dataset.record_ids() {
            prop_assert_eq!(streamed.dataset().record(rid), full.dataset().record(rid));
        }

        // Every streamed match scores exactly as the pipeline scores that
        // pair on the union dataset — streaming changes candidate
        // generation, never scoring.
        for m in streamed.matches() {
            let direct = pipeline.score_pair(full.dataset(), m.a, m.b);
            prop_assert!(
                (direct - m.score).abs() < 1e-12,
                "pair ({:?}, {:?}): streamed {} vs direct {}",
                m.a, m.b, m.score, direct
            );
        }

        // Where batch and stream propose the same pair, they agree on the
        // score (and hence on the ranked order among shared pairs).
        let batch_scores: HashMap<(RecordId, RecordId), f64> =
            full.matches().iter().map(|m| ((m.a, m.b), m.score)).collect();
        let mut shared = 0usize;
        for m in streamed.matches() {
            if let Some(&batch_score) = batch_scores.get(&(m.a, m.b)) {
                shared += 1;
                prop_assert!((batch_score - m.score).abs() < 1e-12);
            }
        }
        // The suffix was part of the batch resolution too; the two
        // candidate rules overlap unless the suffix is all strangers.
        let _ = shared;

        // Streaming respects the normalized pair orientation.
        for m in streamed.matches() {
            prop_assert!(m.a < m.b, "pairs stay normalized: {m:?}");
        }
    }

    #[test]
    fn streaming_is_deterministic(seed in 0u64..40) {
        let gen = GenConfig::random(150, seed).generate();
        let config = PipelineConfig::default();
        let pipeline = trained(&gen, &config);
        let n = gen.dataset.len();
        let run = || {
            let mut r = IncrementalResolver::bootstrap(
                clone_prefix(&gen.dataset, n - 3),
                pipeline.clone(),
                config.clone(),
                IncrementalConfig::default(),
            );
            for rid in gen.dataset.record_ids().skip(n - 3) {
                r.insert(gen.dataset.record(rid).clone());
            }
            r.matches().to_vec()
        };
        prop_assert_eq!(run(), run());
    }
}
