//! Query-time entity resolution: the Web-query interface of Section 4.2
//! ("a person searching for perished relatives can control the size of the
//! response by tuning a certainty parameter in a Web-query interface").

use crate::resolution::{EntityMap, Resolution};
use yv_records::{Dataset, Record, RecordId};
use yv_similarity::jaro_winkler;

/// A relative-search query: fuzzy name match plus a certainty knob.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonQuery {
    pub first_name: Option<String>,
    pub last_name: Option<String>,
    /// Minimum Jaro-Winkler similarity for a name to count as matching
    /// the query.
    pub name_similarity: f64,
    /// Certainty threshold for expanding a hit into its entity.
    pub certainty: f64,
}

impl Default for PersonQuery {
    fn default() -> Self {
        PersonQuery {
            first_name: None,
            last_name: None,
            name_similarity: 0.88,
            certainty: 0.0,
        }
    }
}

/// One query hit: a seed record plus the entity (all records resolved to
/// the same person at the query's certainty) it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    pub seed: RecordId,
    /// The full entity, including the seed; singleton when nothing else
    /// resolves to it.
    pub entity: Vec<RecordId>,
}

impl PersonQuery {
    /// The query's name constraints, lowercased once — `name_matches`
    /// compares every candidate against these instead of re-lowercasing
    /// the query per candidate.
    fn lowered(&self) -> (Option<String>, Option<String>) {
        (
            self.first_name.as_deref().map(str::to_lowercase),
            self.last_name.as_deref().map(str::to_lowercase),
        )
    }

    fn name_matches(&self, candidates: &[String], query_lower: Option<&str>) -> bool {
        match query_lower {
            None => true,
            Some(q) => candidates
                .iter()
                .any(|c| jaro_winkler(&c.to_lowercase(), q) >= self.name_similarity),
        }
    }

    /// True when a record's names satisfy both (lowercased) constraints.
    /// Exposed so index layers (e.g. `yv-store`) can reuse the exact
    /// matching semantics on pre-filtered candidates.
    #[must_use]
    pub fn matches_record(&self, record: &Record) -> bool {
        let (first, last) = self.lowered();
        self.name_matches(&record.first_names, first.as_deref())
            && self.name_matches(&record.last_names, last.as_deref())
    }

    /// Run the query: find seed records by fuzzy name, then expand each to
    /// its entity at the query's certainty threshold. The fuzzy expansion
    /// is what finds the `Foy` record a crisp `first=Guido AND last=Foa`
    /// query would miss (Section 1).
    #[must_use]
    pub fn run(&self, ds: &Dataset, resolution: &Resolution) -> Vec<QueryHit> {
        let entity_map = resolution.entity_map(self.certainty);
        let (first, last) = self.lowered();
        let mut hits = Vec::new();
        for rid in ds.record_ids() {
            let record = ds.record(rid);
            if self.name_matches(&record.first_names, first.as_deref())
                && self.name_matches(&record.last_names, last.as_deref())
            {
                hits.push(QueryHit { seed: rid, entity: expand(&entity_map, rid) });
            }
        }
        hits
    }
}

/// A record's entity at the map's threshold, falling back to a singleton.
pub(crate) fn expand(entity_map: &EntityMap, rid: RecordId) -> Vec<RecordId> {
    entity_map.entity_of(rid).map_or_else(|| vec![rid], <[RecordId]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RankedMatch;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        ds.add_record(RecordBuilder::new(0, s).first_name("Guido").last_name("Foa").build());
        ds.add_record(RecordBuilder::new(1, s).first_name("Guido").last_name("Foy").build());
        ds.add_record(RecordBuilder::new(2, s).first_name("Moshe").last_name("Postel").build());
        ds
    }

    fn resolution() -> Resolution {
        Resolution::new(
            vec![RankedMatch::new(RecordId(0), RecordId(1), 1.5)],
            vec![],
        )
    }

    #[test]
    fn fuzzy_query_finds_spelling_variants() {
        // The paper's motivating example: a crisp "last = Foa" query misses
        // the Foy record, but its entity surfaces it.
        let ds = dataset();
        let res = resolution();
        let q = PersonQuery {
            first_name: Some("Guido".to_owned()),
            last_name: Some("Foa".to_owned()),
            ..PersonQuery::default()
        };
        let hits = q.run(&ds, &res);
        // Seed 0 matches crisply; its entity includes the Foy record.
        let hit = hits.iter().find(|h| h.seed == RecordId(0)).expect("hit");
        assert!(hit.entity.contains(&RecordId(1)));
    }

    #[test]
    fn certainty_controls_entity_expansion() {
        let ds = dataset();
        let res = resolution();
        let strict = PersonQuery {
            last_name: Some("Foa".to_owned()),
            certainty: 2.0,
            ..PersonQuery::default()
        };
        let hit = &strict.run(&ds, &res)[0];
        assert_eq!(hit.entity, vec![hit.seed], "no match survives certainty 2.0");
    }

    #[test]
    fn unconstrained_query_returns_everyone() {
        let ds = dataset();
        let hits = PersonQuery::default().run(&ds, &resolution());
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn name_similarity_knob() {
        let ds = dataset();
        let res = resolution();
        // "Foy" vs "Foa" at JW ~0.87: a looser knob matches both records
        // directly.
        let loose = PersonQuery {
            last_name: Some("Foa".to_owned()),
            name_similarity: 0.8,
            ..PersonQuery::default()
        };
        assert_eq!(loose.run(&ds, &res).len(), 2);
        let tight = PersonQuery {
            last_name: Some("Foa".to_owned()),
            name_similarity: 0.999,
            ..PersonQuery::default()
        };
        assert_eq!(tight.run(&ds, &res).len(), 1);
    }
}
