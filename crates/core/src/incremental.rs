//! Incremental resolution — the deployment reality behind the paper: Yad
//! Vashem still receives Pages of Testimony (400,000 arrived during the
//! 1999–2000 campaign alone), and "Yad Vashem is actively engaged in
//! integrating the results of the project into its databases and
//! applications" (Section 7). Re-blocking 6.5M records per new page is not
//! an option; this resolver maintains an item-level inverted index and
//! scores each arriving record against the records it shares evidence
//! with.
//!
//! The candidate rule mirrors MFIBlocks' spirit without re-mining: a new
//! record pairs with every existing record sharing at least
//! `min_shared_items` non-ubiquitous items (items in more than
//! `common_fraction` of records — gender codes, country names — carry no
//! identity evidence and are skipped, exactly like the miner's
//! frequent-item pruning).

use crate::model::RankedMatch;
use crate::pipeline::{Pipeline, PipelineConfig};
use crate::resolution::Resolution;
use std::collections::HashMap;
use yv_records::{Dataset, Record, RecordId};

/// Configuration of the incremental candidate rule.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalConfig {
    /// Minimum shared informative items for a candidate pair.
    pub min_shared_items: usize,
    /// Items present in more than this fraction of records are ignored.
    pub common_fraction: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig { min_shared_items: 2, common_fraction: 0.05 }
    }
}

/// An online resolver: owns the growing dataset, its inverted index and
/// the accumulated ranked matches.
#[derive(Debug)]
pub struct IncrementalResolver {
    dataset: Dataset,
    pipeline: Pipeline,
    config: PipelineConfig,
    inc: IncrementalConfig,
    /// `postings[item] = records containing it`, kept in insertion order.
    postings: Vec<Vec<RecordId>>,
    matches: Vec<RankedMatch>,
}

impl IncrementalResolver {
    /// Bootstrap from an existing dataset: one batch resolution, then the
    /// index is ready for arrivals.
    #[must_use]
    pub fn bootstrap(
        dataset: Dataset,
        pipeline: Pipeline,
        config: PipelineConfig,
        inc: IncrementalConfig,
    ) -> IncrementalResolver {
        let resolution = pipeline.resolve(&dataset, &config);
        let mut postings: Vec<Vec<RecordId>> = vec![Vec::new(); dataset.interner().len()];
        for rid in dataset.record_ids() {
            for &item in dataset.bag(rid) {
                postings[item.index()].push(rid);
            }
        }
        IncrementalResolver {
            dataset,
            pipeline,
            config,
            inc,
            postings,
            matches: resolution.matches,
        }
    }

    /// Number of records currently resolved.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Read access to the growing dataset.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The accumulated ranked matches (insertion order, not re-sorted).
    #[must_use]
    pub fn matches(&self) -> &[RankedMatch] {
        &self.matches
    }

    /// The scoring pipeline (model) driving this resolver.
    #[must_use]
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The batch-pipeline configuration in force.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The incremental candidate-rule configuration.
    #[must_use]
    pub fn inc_config(&self) -> IncrementalConfig {
        self.inc
    }

    /// Reassemble a resolver from persisted state — dataset, model and the
    /// already-accumulated matches — without re-running batch resolution.
    /// This is how a snapshot restores serving state: the postings index is
    /// rebuilt from the dataset (it is derived data), the matches are taken
    /// as-is.
    #[must_use]
    pub fn from_parts(
        dataset: Dataset,
        pipeline: Pipeline,
        config: PipelineConfig,
        inc: IncrementalConfig,
        matches: Vec<RankedMatch>,
    ) -> IncrementalResolver {
        let mut postings: Vec<Vec<RecordId>> = vec![Vec::new(); dataset.interner().len()];
        for rid in dataset.record_ids() {
            for &item in dataset.bag(rid) {
                postings[item.index()].push(rid);
            }
        }
        IncrementalResolver { dataset, pipeline, config, inc, postings, matches }
    }

    /// Insert one arriving record; returns the new ranked matches it
    /// produced (already folded into the resolver's state). The record's
    /// source must have been registered on the dataset before bootstrap,
    /// or be added through [`IncrementalResolver::add_source`].
    pub fn insert(&mut self, record: Record) -> Vec<RankedMatch> {
        let rid = self.dataset.add_record(record);
        // Extend postings for any newly interned items.
        self.postings.resize(self.dataset.interner().len(), Vec::new());
        let bag: Vec<yv_records::ItemId> = self.dataset.bag(rid).to_vec();
        let n = self.dataset.len();
        let cap = ((n as f64) * self.inc.common_fraction).ceil() as usize;

        // Candidate partners: records sharing enough informative items.
        let mut shared: HashMap<RecordId, usize> = HashMap::new();
        for &item in &bag {
            let list = &self.postings[item.index()];
            if list.len() <= cap.max(8) {
                for &other in list {
                    *shared.entry(other).or_insert(0) += 1;
                }
            }
        }
        let mut new_matches = Vec::new();
        for (other, count) in shared {
            if count < self.inc.min_shared_items {
                continue;
            }
            if self.config.same_src_discard && self.dataset.same_source(rid, other) {
                continue;
            }
            let score = self.pipeline.score_pair(&self.dataset, rid, other);
            if self.config.classify && score <= 0.0 {
                continue;
            }
            new_matches.push(RankedMatch::new(rid, other, score));
        }
        // Index the new record *after* candidate search (no self-pairs).
        for &item in &bag {
            self.postings[item.index()].push(rid);
        }
        // Deterministic order: score descending, then pair ids — the
        // candidate map iterates in hash order, and equal scores are
        // common enough (identical twins of a record) to surface it.
        new_matches.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then_with(|| (a.a, a.b).cmp(&(b.a, b.b)))
        });
        self.matches.extend(new_matches.iter().copied());
        new_matches
    }

    /// Register a new source (a new victim list or submitter) so arriving
    /// records can reference it.
    pub fn add_source(&mut self, source: yv_records::Source) -> yv_records::SourceId {
        self.dataset.add_source(source)
    }

    /// The current resolution over everything seen so far.
    #[must_use]
    pub fn resolution(&self) -> Resolution {
        Resolution::new(self.matches.clone(), vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_train_set;
    use yv_adt::{train, TrainConfig};
    use yv_blocking::mfi_blocks;
    use yv_datagen::{tag_pairs, GenConfig};

    fn trained_fixture() -> (yv_datagen::Generated, Pipeline, PipelineConfig) {
        let gen = GenConfig::random(800, 61).generate();
        let config = PipelineConfig::default();
        let blocked = mfi_blocks(&gen.dataset, &config.blocking);
        let tags = tag_pairs(&gen, &blocked.candidate_pairs, 6);
        let labelled: Vec<_> =
            tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
        let ts = build_train_set(&gen.dataset, &labelled);
        let pipeline = Pipeline::with_model(train(&ts, &TrainConfig::default()));
        (gen, pipeline, config)
    }

    #[test]
    fn inserting_a_duplicate_finds_its_original() {
        let (gen, pipeline, config) = trained_fixture();
        // Hold out an existing record: re-inserting a copy must match it.
        let probe = gen.dataset.record(yv_records::RecordId(0)).clone();
        let mut resolver = IncrementalResolver::bootstrap(
            clone_dataset(&gen.dataset),
            pipeline,
            config,
            IncrementalConfig::default(),
        );
        let before = resolver.len();
        let matches = resolver.insert(probe);
        assert_eq!(resolver.len(), before + 1);
        assert!(
            matches.iter().any(|m| m.a == yv_records::RecordId(0)
                || m.b == yv_records::RecordId(0)),
            "the copy must match its original; got {matches:?}"
        );
        // The top match is strongly positive.
        assert!(matches[0].score > 0.0);
    }

    #[test]
    fn unrelated_record_produces_no_matches() {
        let (gen, pipeline, config) = trained_fixture();
        let mut resolver = IncrementalResolver::bootstrap(
            clone_dataset(&gen.dataset),
            pipeline,
            PipelineConfig { classify: true, ..config },
            IncrementalConfig::default(),
        );
        let source = resolver.add_source(yv_records::Source::list(
            yv_records::SourceId(0),
            "late-arriving list",
        ));
        let stranger = yv_records::RecordBuilder::new(9_999_999, source)
            .first_name("Zzyzx")
            .last_name("Qwortleberg")
            .build();
        let matches = resolver.insert(stranger);
        assert!(matches.is_empty(), "nothing shares evidence with the stranger");
    }

    #[test]
    fn incremental_matches_accumulate_into_the_resolution() {
        let (gen, pipeline, config) = trained_fixture();
        let mut resolver = IncrementalResolver::bootstrap(
            clone_dataset(&gen.dataset),
            pipeline,
            config,
            IncrementalConfig::default(),
        );
        let base_matches = resolver.resolution().matches.len();
        let probe = gen.dataset.record(yv_records::RecordId(1)).clone();
        let new = resolver.insert(probe);
        assert_eq!(
            resolver.resolution().matches.len(),
            base_matches + new.len()
        );
    }

    fn clone_dataset(ds: &Dataset) -> Dataset {
        let mut out = Dataset::new();
        for source in ds.sources() {
            out.add_source(source.clone());
        }
        for rid in ds.record_ids() {
            out.add_record(ds.record(rid).clone());
        }
        out
    }
}
