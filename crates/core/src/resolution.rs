//! Ranked resolution with query-time certainty.
//!
//! The uncertain-ER outcome is not a partition but a ranked match list;
//! "entities are disambiguated only at query time, depending on the query
//! at hand" (Section 1). A person searching for relatives can loosen the
//! certainty knob to see more candidates; an app counting victims needs a
//! single deterministic answer and takes the default threshold.

use crate::model::{RankedMatch, SoftCluster};
use std::collections::HashMap;
use yv_records::RecordId;

/// The result of resolving a dataset: scored matches (descending) plus the
/// soft clusters blocking produced.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// All scored candidate matches, sorted by score descending.
    pub matches: Vec<RankedMatch>,
    /// The soft clusters (possible entities) from blocking.
    pub clusters: Vec<SoftCluster>,
}

impl Resolution {
    /// Build from an unsorted match list.
    #[must_use]
    pub fn new(mut matches: Vec<RankedMatch>, clusters: Vec<SoftCluster>) -> Self {
        matches.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then_with(|| (a.a, a.b).cmp(&(b.a, b.b)))
        });
        Resolution { matches, clusters }
    }

    /// Matches at or above a certainty threshold, best first.
    pub fn at_certainty(&self, threshold: f64) -> impl Iterator<Item = RankedMatch> + '_ {
        self.matches.iter().take_while(move |m| m.score >= threshold).copied()
    }

    /// The default deterministic answer: positive-score matches
    /// (Section 5.2's sign rule).
    pub fn crisp_matches(&self) -> impl Iterator<Item = RankedMatch> + '_ {
        self.matches.iter().filter(|m| m.is_match()).copied()
    }

    /// Resolve entities at a certainty threshold: connected components of
    /// the match graph restricted to scores ≥ `threshold`. Records with no
    /// surviving match resolve to singleton entities and are omitted.
    #[must_use]
    pub fn entities(&self, threshold: f64) -> Vec<Vec<RecordId>> {
        let mut parent: HashMap<RecordId, RecordId> = HashMap::new();
        fn find(parent: &mut HashMap<RecordId, RecordId>, x: RecordId) -> RecordId {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                return x;
            }
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
        for m in self.at_certainty(threshold) {
            let (ra, rb) = (find(&mut parent, m.a), find(&mut parent, m.b));
            if ra != rb {
                parent.insert(ra, rb);
            }
        }
        let keys: Vec<RecordId> = parent.keys().copied().collect();
        let mut components: HashMap<RecordId, Vec<RecordId>> = HashMap::new();
        for r in keys {
            let root = find(&mut parent, r);
            components.entry(root).or_default().push(r);
        }
        let mut out: Vec<Vec<RecordId>> = components
            .into_values()
            .filter(|c| c.len() >= 2)
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        out.sort();
        out
    }

    /// All matches touching a record, best first.
    #[must_use]
    pub fn matches_of(&self, r: RecordId) -> Vec<RankedMatch> {
        self.matches.iter().filter(|m| m.a == r || m.b == r).copied().collect()
    }

    /// Materialize the entities at a threshold together with a
    /// record→entity lookup — one O(matches) pass instead of the
    /// O(records × entities × entity-size) scan a per-record
    /// `entities.iter().find(...)` would cost.
    #[must_use]
    pub fn entity_map(&self, threshold: f64) -> EntityMap {
        EntityMap::new(self.entities(threshold))
    }
}

/// Entities at one certainty threshold plus a constant-time record→entity
/// index. This is what query serving materializes per threshold.
#[derive(Debug, Clone, Default)]
pub struct EntityMap {
    entities: Vec<Vec<RecordId>>,
    of: HashMap<RecordId, usize>,
}

impl EntityMap {
    /// Index a set of entities (each a sorted record list).
    #[must_use]
    pub fn new(entities: Vec<Vec<RecordId>>) -> Self {
        let mut of = HashMap::new();
        for (i, entity) in entities.iter().enumerate() {
            for &r in entity {
                of.insert(r, i);
            }
        }
        EntityMap { entities, of }
    }

    /// The entity containing a record, or `None` for singletons.
    #[must_use]
    pub fn entity_of(&self, r: RecordId) -> Option<&[RecordId]> {
        self.of.get(&r).map(|&i| self.entities[i].as_slice())
    }

    /// All non-singleton entities.
    #[must_use]
    pub fn entities(&self) -> &[Vec<RecordId>] {
        &self.entities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(a: u32, b: u32, s: f64) -> RankedMatch {
        RankedMatch::new(RecordId(a), RecordId(b), s)
    }

    fn resolution() -> Resolution {
        Resolution::new(
            vec![rm(0, 1, 2.0), rm(1, 2, 0.5), rm(3, 4, -1.0), rm(5, 6, 1.2)],
            vec![],
        )
    }

    #[test]
    fn matches_sorted_descending() {
        let r = resolution();
        let scores: Vec<f64> = r.matches.iter().map(|m| m.score).collect();
        assert_eq!(scores, vec![2.0, 1.2, 0.5, -1.0]);
    }

    #[test]
    fn certainty_threshold_truncates() {
        let r = resolution();
        assert_eq!(r.at_certainty(1.0).count(), 2);
        assert_eq!(r.at_certainty(0.0).count(), 3);
        assert_eq!(r.at_certainty(-10.0).count(), 4);
        assert_eq!(r.at_certainty(10.0).count(), 0);
    }

    #[test]
    fn crisp_matches_use_sign() {
        let r = resolution();
        assert_eq!(r.crisp_matches().count(), 3);
    }

    #[test]
    fn entities_are_transitive_closures() {
        let r = resolution();
        // At certainty 0.4: edges (0,1), (1,2), (5,6) => {0,1,2}, {5,6}.
        let entities = r.entities(0.4);
        assert_eq!(entities.len(), 2);
        assert!(entities.contains(&vec![RecordId(0), RecordId(1), RecordId(2)]));
        assert!(entities.contains(&vec![RecordId(5), RecordId(6)]));
        // At certainty 1.5: only (0,1) survives.
        let strict = r.entities(1.5);
        assert_eq!(strict, vec![vec![RecordId(0), RecordId(1)]]);
    }

    #[test]
    fn tighter_certainty_never_merges_more() {
        let r = resolution();
        let loose: usize = r.entities(0.0).iter().map(Vec::len).sum();
        let strict: usize = r.entities(1.0).iter().map(Vec::len).sum();
        assert!(strict <= loose);
    }

    #[test]
    fn matches_of_record() {
        let r = resolution();
        let of1 = r.matches_of(RecordId(1));
        assert_eq!(of1.len(), 2);
        assert!(of1[0].score >= of1[1].score);
        assert!(r.matches_of(RecordId(9)).is_empty());
    }
}
