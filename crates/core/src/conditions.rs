//! The experiment conditions of Section 6.5 (Table 9) as first-class
//! pipeline switches.

use yv_blocking::MfiBlocksConfig;

/// One of the binary conditions evaluated in Table 9. Conditions compose:
/// the paper reports `SameSrc + Cls` as the best F-1 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Uniform item weights, plain Jaccard block score, no filters.
    Base,
    /// Expert-derived item-type weights in the block score.
    ExpertWeighting,
    /// The hand-crafted Eq. 1 item similarity as the block score.
    ExpertSim,
    /// Discard candidate pairs whose records share a source ("it is
    /// deemed unlikely that the same person would appear twice in the same
    /// source").
    SameSrc,
    /// Let the ADT classifier filter low-scoring matches rather than just
    /// ranking them.
    Cls,
    /// Both filters (the paper's best configuration).
    SameSrcCls,
}

impl Condition {
    /// All conditions in the row order of Table 9.
    pub const ALL: [Condition; 6] = [
        Condition::Base,
        Condition::ExpertWeighting,
        Condition::ExpertSim,
        Condition::SameSrc,
        Condition::Cls,
        Condition::SameSrcCls,
    ];

    /// Display label matching Table 9.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Condition::Base => "Base",
            Condition::ExpertWeighting => "Expert Weighting",
            Condition::ExpertSim => "ExpertSim",
            Condition::SameSrc => "SameSrc",
            Condition::Cls => "Cls",
            Condition::SameSrcCls => "SameSrc + Cls",
        }
    }

    /// The blocking configuration this condition implies. Per Section 6.5,
    /// the filter conditions (SameSrc/Cls) run on top of Expert Weighting,
    /// which the paper fixed after observing its recall boost.
    #[must_use]
    pub fn blocking(self) -> MfiBlocksConfig {
        match self {
            Condition::Base => MfiBlocksConfig::base(),
            Condition::ExpertWeighting => MfiBlocksConfig::expert_weighting(),
            Condition::ExpertSim => MfiBlocksConfig::expert_sim(),
            Condition::SameSrc | Condition::Cls | Condition::SameSrcCls => {
                MfiBlocksConfig::expert_weighting()
            }
        }
    }

    /// Whether same-source pairs are discarded.
    #[must_use]
    pub fn same_src(self) -> bool {
        matches!(self, Condition::SameSrc | Condition::SameSrcCls)
    }

    /// Whether the classifier filters low-scoring matches.
    #[must_use]
    pub fn classify(self) -> bool {
        matches!(self, Condition::Cls | Condition::SameSrcCls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_blocking::ScoreFunction;

    #[test]
    fn table9_has_six_rows() {
        assert_eq!(Condition::ALL.len(), 6);
    }

    #[test]
    fn filters_compose() {
        assert!(!Condition::Base.same_src() && !Condition::Base.classify());
        assert!(Condition::SameSrc.same_src() && !Condition::SameSrc.classify());
        assert!(!Condition::Cls.same_src() && Condition::Cls.classify());
        assert!(Condition::SameSrcCls.same_src() && Condition::SameSrcCls.classify());
    }

    #[test]
    fn blocking_score_functions() {
        assert!(matches!(Condition::Base.blocking().score, ScoreFunction::Jaccard));
        assert!(matches!(
            Condition::ExpertWeighting.blocking().score,
            ScoreFunction::WeightedJaccard(_)
        ));
        assert!(matches!(Condition::ExpertSim.blocking().score, ScoreFunction::ExpertSim));
        assert!(matches!(
            Condition::SameSrcCls.blocking().score,
            ScoreFunction::WeightedJaccard(_)
        ));
    }

    #[test]
    fn labels_match_table9() {
        assert_eq!(Condition::SameSrcCls.label(), "SameSrc + Cls");
        assert_eq!(Condition::ExpertWeighting.label(), "Expert Weighting");
    }
}
