//! The uncertain-ER data model: ranked matches and soft clusters.
//!
//! Section 3.2: the output of uncertain ER is "a ranked list of results,
//! associating a similarity value for each match, rather than a binary
//! match/non-match decision", over a set of possibly overlapping clusters
//! where "a tuple may be simultaneously associated with multiple entities".

use serde::{Deserialize, Serialize};
use yv_records::{ItemId, RecordId};

/// One scored candidate match. Scores come from the ADTree and are
/// unbounded reals; the sign is the default match decision and the
/// magnitude the confidence (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedMatch {
    pub a: RecordId,
    pub b: RecordId,
    pub score: f64,
}

impl RankedMatch {
    /// Normalized constructor (`a < b`).
    #[must_use]
    pub fn new(a: RecordId, b: RecordId, score: f64) -> Self {
        if a <= b {
            RankedMatch { a, b, score }
        } else {
            RankedMatch { a: b, b: a, score }
        }
    }

    /// The default crisp decision: positive scores match.
    #[must_use]
    pub fn is_match(&self) -> bool {
        self.score > 0.0
    }
}

/// A soft cluster: one *possible entity*, carried over from blocking. A
/// record may belong to several soft clusters simultaneously.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftCluster {
    /// The implicit key (maximal frequent itemset) that formed the
    /// cluster.
    pub key: Vec<ItemId>,
    pub records: Vec<RecordId>,
    /// The blocking score of the cluster.
    pub cohesion: f64,
}

impl SoftCluster {
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    #[must_use]
    pub fn contains(&self, r: RecordId) -> bool {
        self.records.contains(&r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_match_normalizes_order() {
        let m = RankedMatch::new(RecordId(5), RecordId(2), 1.0);
        assert_eq!(m.a, RecordId(2));
        assert_eq!(m.b, RecordId(5));
    }

    #[test]
    fn sign_is_the_default_decision() {
        assert!(RankedMatch::new(RecordId(0), RecordId(1), 0.01).is_match());
        assert!(!RankedMatch::new(RecordId(0), RecordId(1), 0.0).is_match());
        assert!(!RankedMatch::new(RecordId(0), RecordId(1), -2.0).is_match());
    }

    #[test]
    fn soft_cluster_membership() {
        let c = SoftCluster {
            key: vec![],
            records: vec![RecordId(1), RecordId(3)],
            cohesion: 0.8,
        };
        assert_eq!(c.len(), 2);
        assert!(c.contains(RecordId(3)));
        assert!(!c.contains(RecordId(2)));
    }
}
