//! Submitter resolution — the open problem of Section 2 and Section 7.
//!
//! Pages-of-Testimony submitters carry no unique id; grouping them by
//! first name, last name and city yields 514,251 "different" submitters,
//! many of which are obvious duplicates ("misspellings of names and city
//! names, usage of a nickname, or a different transliteration"). The paper
//! leaves submitter ER as future work ("How can we exploit implicit and
//! explicit knowledge about record sources in the multi-source setting?");
//! this module implements the natural first step: fuzzy clustering of
//! submitters, which both deduplicates the source catalogue and makes the
//! `SameSrc` filter stronger (two testimonies by the *resolved* submitter
//! are unlikely to describe the same victim twice).

use std::collections::HashMap;
use yv_records::{Dataset, SourceId, SourceKind};
use yv_similarity::jaro_winkler;

/// A resolved submitter: the testimony sources believed to be the same
/// person.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitterCluster {
    pub sources: Vec<SourceId>,
}

/// Configuration for submitter resolution.
#[derive(Debug, Clone, Copy)]
pub struct SubmitterResolutionConfig {
    /// Minimum Jaro-Winkler similarity between first names.
    pub first_name_threshold: f64,
    /// Minimum Jaro-Winkler similarity between last names.
    pub last_name_threshold: f64,
    /// Minimum Jaro-Winkler similarity between cities.
    pub city_threshold: f64,
}

impl Default for SubmitterResolutionConfig {
    fn default() -> Self {
        SubmitterResolutionConfig {
            first_name_threshold: 0.85,
            last_name_threshold: 0.90,
            city_threshold: 0.85,
        }
    }
}

/// Resolve testimony submitters: block by the first letter of the last
/// name (cheap, high recall on the name noise model), then merge pairs
/// whose first/last/city all clear their thresholds. Returns clusters
/// covering every testimony source (singletons included).
#[must_use]
pub fn resolve_submitters(
    ds: &Dataset,
    config: &SubmitterResolutionConfig,
) -> Vec<SubmitterCluster> {
    // Collect testimony sources with their normalized identity fields.
    let mut submitters: Vec<(SourceId, String, String, String)> = Vec::new();
    for source in ds.sources() {
        if let SourceKind::Testimony { first_name, last_name, city } = &source.kind {
            submitters.push((
                source.id,
                first_name.to_lowercase(),
                last_name.to_lowercase(),
                city.to_lowercase(),
            ));
        }
    }
    // Block on the last-name initial.
    let mut blocks: HashMap<char, Vec<usize>> = HashMap::new();
    for (i, (_, _, last, _)) in submitters.iter().enumerate() {
        let key = last.chars().next().unwrap_or('?');
        blocks.entry(key).or_default().push(i);
    }
    // Union-find over submitters.
    let mut parent: Vec<usize> = (0..submitters.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for members in blocks.values() {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let (_, fa, la, ca) = &submitters[a];
                let (_, fb, lb, cb) = &submitters[b];
                if jaro_winkler(fa, fb) >= config.first_name_threshold
                    && jaro_winkler(la, lb) >= config.last_name_threshold
                    && jaro_winkler(ca, cb) >= config.city_threshold
                {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
    }
    let mut clusters: HashMap<usize, Vec<SourceId>> = HashMap::new();
    for (i, (source, ..)) in submitters.iter().enumerate() {
        let root = find(&mut parent, i);
        clusters.entry(root).or_default().push(*source);
    }
    let mut out: Vec<SubmitterCluster> = clusters
        .into_values()
        .map(|mut sources| {
            sources.sort_unstable();
            SubmitterCluster { sources }
        })
        .collect();
    out.sort_by(|a, b| a.sources.cmp(&b.sources));
    out
}

/// A map from every testimony source to its resolved-submitter index,
/// usable as a drop-in strengthening of the `SameSrc` filter.
#[must_use]
pub fn resolved_source_map(clusters: &[SubmitterCluster]) -> HashMap<SourceId, usize> {
    let mut map = HashMap::new();
    for (idx, cluster) in clusters.iter().enumerate() {
        for &s in &cluster.sources {
            map.insert(s, idx);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        // Two spellings of the same submitter, one clearly different.
        ds.add_source(Source::testimony(SourceId(0), "Massimo", "Foa", "Cuorgne"));
        ds.add_source(Source::testimony(SourceId(0), "Masimo", "Foa", "Cuorgne"));
        ds.add_source(Source::testimony(SourceId(0), "Rivka", "Goldberg", "Warszawa"));
        ds.add_source(Source::list(SourceId(0), "a transport list"));
        ds
    }

    #[test]
    fn near_duplicate_submitters_merge() {
        let ds = dataset();
        let clusters = resolve_submitters(&ds, &SubmitterResolutionConfig::default());
        // Massimo/Masimo merge; Rivka stays alone; the list is ignored.
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.sources.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn strict_thresholds_keep_everyone_apart() {
        let ds = dataset();
        let strict = SubmitterResolutionConfig {
            first_name_threshold: 1.0,
            last_name_threshold: 1.0,
            city_threshold: 1.0,
        };
        let clusters = resolve_submitters(&ds, &strict);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn source_map_covers_all_testimonies() {
        let ds = dataset();
        let clusters = resolve_submitters(&ds, &SubmitterResolutionConfig::default());
        let map = resolved_source_map(&clusters);
        assert_eq!(map.len(), 3);
        // The two spellings map to the same resolved submitter.
        assert_eq!(map[&SourceId(0)], map[&SourceId(1)]);
        assert_ne!(map[&SourceId(0)], map[&SourceId(2)]);
    }

    #[test]
    fn lists_are_never_clustered() {
        let ds = dataset();
        let clusters = resolve_submitters(&ds, &SubmitterResolutionConfig::default());
        for c in &clusters {
            for &s in &c.sources {
                assert!(ds.source(s).is_testimony());
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new();
        assert!(resolve_submitters(&ds, &SubmitterResolutionConfig::default()).is_empty());
    }
}
