//! The end-to-end uncertain-ER pipeline (Figure 9): preprocessing →
//! MFIBlocks → feature extraction → ADT scoring → ranked resolution.

use crate::model::{RankedMatch, SoftCluster};
use crate::resolution::Resolution;
use yv_adt::{train, AdTree, TrainConfig, TrainSet};
use yv_blocking::{mfi_blocks_recorded, MfiBlocksConfig};
use yv_obs::{MetricsRegistry, Recorder};
use yv_records::{Dataset, RecordId};
use yv_similarity::{extract, FEATURE_COUNT};

/// Pipeline configuration: blocking parameters plus the Section 6.5
/// filters and the trainer settings.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    pub blocking: MfiBlocksConfig,
    /// Discard candidate pairs sharing a source (`SameSrc`).
    pub same_src_discard: bool,
    /// Keep only matches the classifier accepts (`Cls`); otherwise every
    /// scored candidate stays in the ranked list.
    pub classify: bool,
    pub train: TrainConfig,
}

impl PipelineConfig {
    /// Build a config from a Table 9 condition.
    #[must_use]
    pub fn for_condition(cond: crate::conditions::Condition) -> Self {
        PipelineConfig {
            blocking: cond.blocking(),
            same_src_discard: cond.same_src(),
            classify: cond.classify(),
            train: TrainConfig::default(),
        }
    }
}

/// Assemble an ADT training set from labelled record pairs.
#[must_use]
pub fn build_train_set(ds: &Dataset, labelled: &[(RecordId, RecordId, bool)]) -> TrainSet {
    let mut ts = TrainSet::new(FEATURE_COUNT);
    for &(a, b, label) in labelled {
        let fv = extract(ds.record(a), ds.record(b));
        let row: Vec<Option<f64>> = (0..FEATURE_COUNT).map(|i| fv.get(i)).collect();
        ts.push(row, if label { 1 } else { -1 });
    }
    ts
}

/// A trained pipeline: the ADTree model ready to score candidate pairs.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub model: AdTree,
}

impl Pipeline {
    /// Train the ADT from labelled pairs (the simplified tag set of
    /// Section 5.1: Maybe pairs are resolved by the caller's policy before
    /// this point).
    #[must_use]
    pub fn train(
        ds: &Dataset,
        labelled: &[(RecordId, RecordId, bool)],
        config: &PipelineConfig,
    ) -> Pipeline {
        let ts = build_train_set(ds, labelled);
        Pipeline { model: train(&ts, &config.train) }
    }

    /// Wrap an externally trained model.
    #[must_use]
    pub fn with_model(model: AdTree) -> Pipeline {
        Pipeline { model }
    }

    /// Score one record pair.
    #[must_use]
    pub fn score_pair(&self, ds: &Dataset, a: RecordId, b: RecordId) -> f64 {
        let fv = extract(ds.record(a), ds.record(b));
        let row: Vec<Option<f64>> = (0..FEATURE_COUNT).map(|i| fv.get(i)).collect();
        self.model.score(&row)
    }

    /// Run the full pipeline over a dataset: block, filter, score, rank.
    #[must_use]
    pub fn resolve(&self, ds: &Dataset, config: &PipelineConfig) -> Resolution {
        self.resolve_recorded(ds, config, &Recorder::monotonic())
    }

    /// Run the full pipeline, recording stage spans (`blocking` with its
    /// per-iteration children, then `extract`, `score`, `resolve`) and
    /// counters (`candidate_pairs`, `pairs_discarded_same_src`,
    /// `pairs_scored`, `matches_kept`) on `rec`.
    ///
    /// Feature extraction and model scoring run fused per pair (keeping
    /// peak memory at one feature row); their durations are accumulated
    /// against the recorder's clock and emitted as two adjacent sibling
    /// spans, so the stage split survives into traces without a
    /// per-pair span explosion.
    #[must_use]
    pub fn resolve_recorded(
        &self,
        ds: &Dataset,
        config: &PipelineConfig,
        rec: &Recorder,
    ) -> Resolution {
        let blocked = mfi_blocks_recorded(ds, &config.blocking, rec);

        let loop_start = rec.now_ns();
        let mut extract_ns = 0u64;
        let mut score_ns = 0u64;
        let mut discarded = 0u64;
        let mut matches = Vec::with_capacity(blocked.candidate_pairs.len());
        for &(a, b) in &blocked.candidate_pairs {
            if config.same_src_discard && ds.same_source(a, b) {
                discarded += 1;
                continue;
            }
            let t0 = rec.now_ns();
            let fv = extract(ds.record(a), ds.record(b));
            let row: Vec<Option<f64>> = (0..FEATURE_COUNT).map(|i| fv.get(i)).collect();
            let t1 = rec.now_ns();
            let score = self.model.score(&row);
            score_ns += rec.now_ns().saturating_sub(t1);
            extract_ns += t1.saturating_sub(t0);
            if config.classify && score <= 0.0 {
                continue;
            }
            matches.push(RankedMatch::new(a, b, score));
        }
        rec.record_span("extract", loop_start, extract_ns);
        rec.record_span("score", loop_start.saturating_add(extract_ns), score_ns);
        rec.incr("pairs_discarded_same_src", discarded);
        rec.incr("pairs_scored", blocked.candidate_pairs.len() as u64 - discarded);
        rec.incr("matches_kept", matches.len() as u64);

        let resolve_span = rec.span("resolve");
        let clusters: Vec<SoftCluster> = blocked
            .blocks
            .iter()
            .map(|b| SoftCluster {
                key: b.items.clone(),
                records: b.records.clone(),
                cohesion: b.score,
            })
            .collect();
        let resolution = Resolution::new(matches, clusters);
        resolve_span.finish();
        resolution
    }

    /// [`Pipeline::resolve_recorded`], then publish the aggregated view
    /// into `registry`: one `yv_pipeline_stage_{span}_us` gauge per span
    /// name, one `yv_pipeline_{counter}` gauge per counter, and
    /// `yv_pipeline_peak_alloc_bytes` — the high-water mark of live bytes
    /// across this run (zero unless the counting allocator is installed;
    /// see `yv_obs::alloc_stats`). The peak is reset on entry so the
    /// reading attributes to this resolve, not the process lifetime.
    #[must_use]
    pub fn resolve_published(
        &self,
        ds: &Dataset,
        config: &PipelineConfig,
        rec: &Recorder,
        registry: &MetricsRegistry,
    ) -> Resolution {
        yv_obs::reset_peak();
        let resolution = self.resolve_recorded(ds, config, rec);
        registry.publish_recorder("yv_pipeline", rec);
        registry.set_gauge(
            "yv_pipeline_peak_alloc_bytes",
            "Peak live bytes during resolve (0 without the counting allocator)",
            yv_obs::alloc_stats().peak_bytes,
        );
        resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_blocking::mfi_blocks;
    use yv_datagen::{tag_pairs, GenConfig, Generated};

    fn fixture() -> (Generated, Pipeline, PipelineConfig) {
        let gen = GenConfig::random(700, 41).generate();
        let config = PipelineConfig::default();
        let blocked = mfi_blocks(&gen.dataset, &config.blocking);
        let tags = tag_pairs(&gen, &blocked.candidate_pairs, 5);
        let labelled: Vec<_> =
            tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
        let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
        (gen, pipeline, config)
    }

    #[test]
    fn trained_model_separates_matches() {
        let (gen, pipeline, config) = fixture();
        let resolution = pipeline.resolve(&gen.dataset, &config);
        assert!(!resolution.matches.is_empty());
        // Accuracy of the sign rule against ground truth on candidates.
        let correct = resolution
            .matches
            .iter()
            .filter(|m| m.is_match() == gen.is_match(m.a, m.b))
            .count();
        let acc = correct as f64 / resolution.matches.len() as f64;
        assert!(acc > 0.8, "pipeline accuracy {acc}");
    }

    #[test]
    fn model_uses_few_features_like_the_paper() {
        let (_, pipeline, _) = fixture();
        let used = pipeline.model.features_used().len();
        assert!(
            (1..=12).contains(&used),
            "the paper's models keep 8-10 of the 48 features; got {used}"
        );
    }

    #[test]
    fn same_src_discard_removes_same_source_pairs() {
        let (gen, pipeline, mut config) = fixture();
        config.same_src_discard = true;
        let resolution = pipeline.resolve(&gen.dataset, &config);
        for m in &resolution.matches {
            assert!(!gen.dataset.same_source(m.a, m.b));
        }
    }

    #[test]
    fn classify_filter_keeps_positive_scores_only() {
        let (gen, pipeline, mut config) = fixture();
        config.classify = true;
        let resolution = pipeline.resolve(&gen.dataset, &config);
        assert!(resolution.matches.iter().all(|m| m.score > 0.0));
    }

    #[test]
    fn filters_only_shrink_the_match_list() {
        let (gen, pipeline, config) = fixture();
        let base = pipeline.resolve(&gen.dataset, &config).matches.len();
        for (same_src, cls) in [(true, false), (false, true), (true, true)] {
            let c = PipelineConfig {
                same_src_discard: same_src,
                classify: cls,
                ..config.clone()
            };
            let n = pipeline.resolve(&gen.dataset, &c).matches.len();
            assert!(n <= base);
        }
    }

    #[test]
    fn soft_clusters_are_exposed() {
        let (gen, pipeline, config) = fixture();
        let resolution = pipeline.resolve(&gen.dataset, &config);
        assert!(!resolution.clusters.is_empty());
        assert!(resolution.clusters.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn resolve_recorded_emits_stage_spans_and_counters() {
        let (gen, pipeline, config) = fixture();
        let (rec, _clock) = Recorder::manual();
        let resolution = pipeline.resolve_recorded(&gen.dataset, &config, &rec);
        assert!(!resolution.matches.is_empty());
        let names: Vec<String> = rec.spans().into_iter().map(|s| s.name).collect();
        for stage in ["blocking", "extract", "score", "resolve"] {
            assert!(names.iter().any(|n| n == stage), "missing stage span {stage}");
        }
        assert!(rec.counter("pairs_scored") > 0);
        assert_eq!(rec.counter("matches_kept"), resolution.matches.len() as u64);
    }

    #[test]
    fn resolve_published_exports_stages_and_counters_to_the_registry() {
        let (gen, pipeline, config) = fixture();
        let (rec, _clock) = Recorder::manual();
        let registry = MetricsRegistry::new();
        let resolution = pipeline.resolve_published(&gen.dataset, &config, &rec, &registry);
        assert!(!resolution.matches.is_empty());
        let names: Vec<String> =
            registry.scalar_values().into_iter().map(|(n, _)| n).collect();
        for stage in ["blocking", "extract", "score", "resolve"] {
            let metric = format!("yv_pipeline_stage_{stage}_us");
            assert!(names.contains(&metric), "missing {metric} in {names:?}");
        }
        assert!(names.contains(&"yv_pipeline_peak_alloc_bytes".to_owned()));
        assert!(registry.gauge("yv_pipeline_pairs_scored", "").get() > 0);
        assert_eq!(
            registry.gauge("yv_pipeline_matches_kept", "").get(),
            resolution.matches.len() as u64
        );
    }

    #[test]
    fn score_pair_matches_resolve_scores() {
        let (gen, pipeline, config) = fixture();
        let resolution = pipeline.resolve(&gen.dataset, &config);
        let m = resolution.matches[0];
        let direct = pipeline.score_pair(&gen.dataset, m.a, m.b);
        assert!((direct - m.score).abs() < 1e-12);
    }
}
