//! The probabilistic-database view of uncertain ER (Section 3.2).
//!
//! "Several recent works have advocated for the use of probabilistic
//! databases to represent the multiple views of the outcome of entity
//! resolution … pairwise comparisons can be reasoned about and stored in a
//! probabilistic database, thus effectively retaining all matching
//! information, and adding a *same-as* uncertain semantic relation between
//! entities. With such models, entities can be resolved at query time or
//! alternative solutions can be presented, ranked according to some
//! measure of likelihood."
//!
//! This module implements that representation on top of the ranked
//! resolution: ADT confidence scores are calibrated into match
//! probabilities with a Platt-style logistic fit, stored as uncertain
//! *same-as* edges, and queried under possible-worlds semantics (each edge
//! an independent Bernoulli; co-reference of two records = connectivity in
//! the sampled world, estimated by seeded Monte Carlo).

use crate::model::RankedMatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use yv_records::RecordId;

/// A Platt-style calibration `P(match | score) = σ(a·score + b)`, fitted
/// by Newton-Raphson on labelled scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattCalibration {
    pub a: f64,
    pub b: f64,
}

impl Default for PlattCalibration {
    /// An uncalibrated fallback: the raw sigmoid of the score.
    fn default() -> Self {
        PlattCalibration { a: 1.0, b: 0.0 }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl PlattCalibration {
    /// Fit on `(score, is_match)` pairs by Newton-Raphson over the
    /// two-parameter logistic log-likelihood (falls back to the default
    /// when fewer than two classes are present).
    #[must_use]
    pub fn fit(samples: &[(f64, bool)]) -> PlattCalibration {
        let positives = samples.iter().filter(|&&(_, y)| y).count();
        if positives == 0 || positives == samples.len() || samples.len() < 4 {
            return PlattCalibration::default();
        }
        let mut a = 1.0f64;
        let mut b = 0.0f64;
        for _ in 0..50 {
            // Gradient and Hessian of the negative log-likelihood.
            let (mut ga, mut gb) = (0.0, 0.0);
            let (mut haa, mut hab, mut hbb) = (0.0, 0.0, 0.0);
            for &(s, y) in samples {
                let p = sigmoid(a * s + b);
                let err = p - f64::from(y);
                ga += err * s;
                gb += err;
                let w = p * (1.0 - p);
                haa += w * s * s;
                hab += w * s;
                hbb += w;
            }
            // Levenberg damping keeps the 2x2 solve stable.
            haa += 1e-6;
            hbb += 1e-6;
            let det = haa * hbb - hab * hab;
            if det.abs() < 1e-12 {
                break;
            }
            let da = (gb * hab - ga * hbb) / det;
            let db = (ga * hab - gb * haa) / det;
            a += da;
            b += db;
            if da.abs() < 1e-9 && db.abs() < 1e-9 {
                break;
            }
        }
        PlattCalibration { a, b }
    }

    /// Match probability for a raw ADT score.
    #[must_use]
    pub fn probability(&self, score: f64) -> f64 {
        sigmoid(self.a * score + self.b)
    }
}

/// The uncertain *same-as* relation: pairwise match probabilities queried
/// under possible-worlds semantics.
#[derive(Debug, Clone, Default)]
pub struct SameAsStore {
    edges: HashMap<(RecordId, RecordId), f64>,
    /// Adjacency for world sampling.
    neighbors: HashMap<RecordId, Vec<(RecordId, f64)>>,
}

impl SameAsStore {
    /// Build from ranked matches and a calibration.
    #[must_use]
    pub fn from_matches(matches: &[RankedMatch], calibration: &PlattCalibration) -> SameAsStore {
        let mut store = SameAsStore::default();
        for m in matches {
            store.insert(m.a, m.b, calibration.probability(m.score));
        }
        store
    }

    /// Insert or update an uncertain same-as edge.
    pub fn insert(&mut self, a: RecordId, b: RecordId, probability: f64) {
        let p = probability.clamp(0.0, 1.0);
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.edges.insert((a, b), p);
        self.neighbors.entry(a).or_default().push((b, p));
        self.neighbors.entry(b).or_default().push((a, p));
    }

    /// Number of uncertain edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Direct edge probability, if the pair was ever compared.
    #[must_use]
    pub fn direct(&self, a: RecordId, b: RecordId) -> Option<f64> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edges.get(&key).copied()
    }

    /// Possible-worlds co-reference probability: the probability that `a`
    /// and `b` are connected when every edge materializes independently
    /// with its stored probability. Estimated by `samples` seeded Monte
    /// Carlo world draws (exact inference is #P-hard).
    #[must_use]
    pub fn same_entity_probability(
        &self,
        a: RecordId,
        b: RecordId,
        samples: u32,
        seed: u64,
    ) -> f64 {
        if a == b {
            return 1.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut connected = 0u32;
        let mut stack = Vec::new();
        let mut visited: HashMap<RecordId, bool> = HashMap::new();
        for _ in 0..samples {
            // Sample lazily: walk from `a`, flipping each incident edge
            // once per world.
            let mut edge_state: HashMap<(RecordId, RecordId), bool> = HashMap::new();
            visited.clear();
            stack.clear();
            stack.push(a);
            visited.insert(a, true);
            let mut reached = false;
            while let Some(cur) = stack.pop() {
                if cur == b {
                    reached = true;
                    break;
                }
                if let Some(ns) = self.neighbors.get(&cur) {
                    for &(next, p) in ns {
                        if visited.contains_key(&next) {
                            continue;
                        }
                        let key = if cur <= next { (cur, next) } else { (next, cur) };
                        let up = *edge_state.entry(key).or_insert_with(|| rng.gen_bool(p));
                        if up {
                            visited.insert(next, true);
                            stack.push(next);
                        }
                    }
                }
            }
            if reached {
                connected += 1;
            }
        }
        f64::from(connected) / f64::from(samples.max(1))
    }

    /// The most likely resolution: entities formed by edges with
    /// probability ≥ 0.5 (the maximum-probability world under independent
    /// edges, restricted to connectivity).
    #[must_use]
    pub fn most_likely_entities(&self) -> Vec<Vec<RecordId>> {
        let matches: Vec<RankedMatch> = self
            .edges
            .iter()
            .filter(|&(_, &p)| p >= 0.5)
            .map(|(&(a, b), &p)| RankedMatch::new(a, b, p))
            .collect();
        crate::resolution::Resolution::new(matches, vec![]).entities(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn calibration_is_monotone_and_bounded() {
        let samples: Vec<(f64, bool)> = (0..200)
            .map(|i| {
                let s = (i as f64 - 100.0) / 20.0;
                (s, s > 0.3)
            })
            .collect();
        let cal = PlattCalibration::fit(&samples);
        let mut last = 0.0;
        for i in -10..=10 {
            let p = cal.probability(f64::from(i) / 2.0);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last - 1e-12, "calibration must be monotone");
            last = p;
        }
        // The decision boundary sits near the true threshold.
        assert!(cal.probability(0.0) < 0.5);
        assert!(cal.probability(1.0) > 0.5);
    }

    #[test]
    fn degenerate_fits_fall_back() {
        assert_eq!(PlattCalibration::fit(&[]), PlattCalibration::default());
        let all_pos: Vec<(f64, bool)> = (0..10).map(|i| (f64::from(i), true)).collect();
        assert_eq!(PlattCalibration::fit(&all_pos), PlattCalibration::default());
    }

    #[test]
    fn direct_edges_round_trip() {
        let mut store = SameAsStore::default();
        store.insert(rid(2), rid(1), 0.8);
        assert_eq!(store.direct(rid(1), rid(2)), Some(0.8));
        assert_eq!(store.direct(rid(2), rid(1)), Some(0.8));
        assert_eq!(store.direct(rid(1), rid(3)), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn certain_chain_connects_with_probability_one() {
        let mut store = SameAsStore::default();
        store.insert(rid(0), rid(1), 1.0);
        store.insert(rid(1), rid(2), 1.0);
        let p = store.same_entity_probability(rid(0), rid(2), 200, 7);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_pairs_have_probability_zero() {
        let mut store = SameAsStore::default();
        store.insert(rid(0), rid(1), 1.0);
        let p = store.same_entity_probability(rid(0), rid(9), 100, 7);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn transitive_paths_add_probability() {
        // a-b direct at 0.5; plus a-c-b path at 0.9*0.9: the union beats
        // the direct edge alone.
        let mut direct_only = SameAsStore::default();
        direct_only.insert(rid(0), rid(1), 0.5);
        let p_direct = direct_only.same_entity_probability(rid(0), rid(1), 4000, 11);

        let mut with_path = SameAsStore::default();
        with_path.insert(rid(0), rid(1), 0.5);
        with_path.insert(rid(0), rid(2), 0.9);
        with_path.insert(rid(2), rid(1), 0.9);
        let p_both = with_path.same_entity_probability(rid(0), rid(1), 4000, 11);
        assert!(
            p_both > p_direct + 0.1,
            "transitive evidence must raise the probability: {p_direct} -> {p_both}"
        );
        // Theoretical value: 1 - (1-0.5)(1-0.81) = 0.905.
        assert!((p_both - 0.905).abs() < 0.05, "got {p_both}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut store = SameAsStore::default();
        store.insert(rid(0), rid(1), 0.37);
        let p1 = store.same_entity_probability(rid(0), rid(1), 500, 3);
        let p2 = store.same_entity_probability(rid(0), rid(1), 500, 3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn most_likely_entities_use_majority_edges() {
        let mut store = SameAsStore::default();
        store.insert(rid(0), rid(1), 0.9);
        store.insert(rid(1), rid(2), 0.2);
        store.insert(rid(3), rid(4), 0.6);
        let entities = store.most_likely_entities();
        assert!(entities.contains(&vec![rid(0), rid(1)]));
        assert!(entities.contains(&vec![rid(3), rid(4)]));
        assert!(!entities.iter().any(|e| e.contains(&rid(2))));
    }
}
