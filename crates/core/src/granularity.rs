//! Multi-level resolution granularity.
//!
//! Section 4.1: "this task should allow multiple levels of granularity,
//! based upon the narrative a researcher wishes to follow" — the finest
//! granularity is a single person (Guido Foa), a coarser one the whole Foa
//! family, another all the Jews of Turin. MFIBlocks exposes the knobs: "by
//! allowing a looser compact set setting and denser neighborhoods,
//! entities can be broadened from a single individual to a granularity of
//! nuclear family and broader social units."

use yv_blocking::MfiBlocksConfig;

/// The resolution level a caller asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Individual victims — the default person-level ER task.
    Person,
    /// Nuclear families: the Capelluto children (Figure 13) are false
    /// positives for person resolution but correct at this level.
    Family,
    /// Broader social units (a town's community).
    Community,
}

impl Granularity {
    /// Blocking parameters for the level: coarser granularities loosen the
    /// compact-set size cap (`p`) and densify neighborhoods (NG).
    #[must_use]
    pub fn blocking(self) -> MfiBlocksConfig {
        let base = MfiBlocksConfig::expert_weighting();
        match self {
            Granularity::Person => base,
            Granularity::Family => MfiBlocksConfig { p: 4.0, ng: 5.0, ..base },
            Granularity::Community => {
                MfiBlocksConfig { p: 12.0, ng: 10.0, max_minsup: 8, ..base }
            }
        }
    }

    /// The certainty threshold recommended for querying at this level:
    /// coarser entities tolerate weaker evidence.
    #[must_use]
    pub fn default_certainty(self) -> f64 {
        match self {
            Granularity::Person => 0.0,
            Granularity::Family => -0.5,
            Granularity::Community => -1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarser_levels_loosen_both_knobs() {
        let person = Granularity::Person.blocking();
        let family = Granularity::Family.blocking();
        let community = Granularity::Community.blocking();
        assert!(family.p > person.p);
        assert!(family.ng > person.ng);
        assert!(community.p > family.p);
        assert!(community.ng > family.ng);
    }

    #[test]
    fn certainty_relaxes_with_granularity() {
        assert!(
            Granularity::Person.default_certainty()
                > Granularity::Family.default_certainty()
        );
        assert!(
            Granularity::Family.default_certainty()
                > Granularity::Community.default_certainty()
        );
    }
}
