//! Narrative construction — the project's end goal (Section 1: "a
//! stepping stone towards automatically creating narratives for each
//! entity in the database", and Figure 2's knowledge graph of Guido Foa).
//!
//! Given a resolved entity (a set of records believed to describe one
//! person), this module merges the records into a consolidated
//! [`PersonProfile`], builds the Figure 2-style [`KnowledgeGraph`] of
//! typed nodes and edges, and renders a short textual narrative. Conflicts
//! between sources are not hidden: every merged attribute keeps the count
//! of supporting records, and disagreeing values are listed side by side —
//! the uncertain-ER philosophy carried into the narrative layer.

use std::collections::BTreeMap;
use yv_records::{Dataset, Gender, PlaceType, RecordId};

/// One consolidated attribute value with its support (how many of the
/// entity's records assert it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attested<T> {
    pub value: T,
    pub support: usize,
}

/// A consolidated view of one entity. Multi-valued where the sources
/// disagree, ordered by support (best-attested first).
#[derive(Debug, Clone, Default)]
pub struct PersonProfile {
    pub records: Vec<RecordId>,
    pub first_names: Vec<Attested<String>>,
    pub last_names: Vec<Attested<String>>,
    pub father_names: Vec<Attested<String>>,
    pub mother_names: Vec<Attested<String>>,
    pub spouse_names: Vec<Attested<String>>,
    pub birth_years: Vec<Attested<i32>>,
    pub genders: Vec<Attested<Gender>>,
    pub birth_places: Vec<Attested<String>>,
    pub permanent_places: Vec<Attested<String>>,
    pub wartime_places: Vec<Attested<String>>,
    pub death_places: Vec<Attested<String>>,
    pub professions: Vec<Attested<String>>,
}

fn tally(values: impl Iterator<Item = String>) -> Vec<Attested<String>> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v.to_lowercase()).or_insert(0) += 1;
    }
    let mut out: Vec<Attested<String>> =
        counts.into_iter().map(|(value, support)| Attested { value, support }).collect();
    out.sort_by(|a, b| b.support.cmp(&a.support).then(a.value.cmp(&b.value)));
    out
}

impl PersonProfile {
    /// Merge an entity's records into a profile.
    #[must_use]
    pub fn build(ds: &Dataset, entity: &[RecordId]) -> PersonProfile {
        let records: Vec<&yv_records::Record> =
            entity.iter().map(|&r| ds.record(r)).collect();
        let place_values = |ty: PlaceType| {
            tally(
                records
                    .iter()
                    .filter_map(|r| r.place(ty).and_then(|p| p.city.clone())),
            )
        };
        let mut year_counts: BTreeMap<i32, usize> = BTreeMap::new();
        let mut gender_counts: BTreeMap<u8, usize> = BTreeMap::new();
        for r in &records {
            if let Some(y) = r.birth.year {
                *year_counts.entry(y).or_insert(0) += 1;
            }
            if let Some(g) = r.gender {
                *gender_counts.entry(g.code()).or_insert(0) += 1;
            }
        }
        let mut birth_years: Vec<Attested<i32>> =
            year_counts.into_iter().map(|(value, support)| Attested { value, support }).collect();
        birth_years.sort_by(|a, b| b.support.cmp(&a.support).then(a.value.cmp(&b.value)));
        let mut genders: Vec<Attested<Gender>> = gender_counts
            .into_iter()
            .filter_map(|(code, support)| {
                Gender::from_code(code).map(|value| Attested { value, support })
            })
            .collect();
        genders.sort_by_key(|a| std::cmp::Reverse(a.support));

        PersonProfile {
            records: entity.to_vec(),
            first_names: tally(records.iter().flat_map(|r| r.first_names.clone())),
            last_names: tally(records.iter().flat_map(|r| r.last_names.clone())),
            father_names: tally(records.iter().filter_map(|r| r.father_name.clone())),
            mother_names: tally(records.iter().filter_map(|r| r.mother_name.clone())),
            spouse_names: tally(records.iter().filter_map(|r| r.spouse_name.clone())),
            birth_years,
            genders,
            birth_places: place_values(PlaceType::Birth),
            permanent_places: place_values(PlaceType::Permanent),
            wartime_places: place_values(PlaceType::Wartime),
            death_places: place_values(PlaceType::Death),
            professions: tally(records.iter().filter_map(|r| r.profession.clone())),
        }
    }

    /// Best-attested display name ("guido foa"), when any name exists.
    #[must_use]
    pub fn display_name(&self) -> Option<String> {
        match (self.first_names.first(), self.last_names.first()) {
            (Some(f), Some(l)) => Some(format!("{} {}", f.value, l.value)),
            (Some(f), None) => Some(f.value.clone()),
            (None, Some(l)) => Some(l.value.clone()),
            (None, None) => None,
        }
    }

    /// True when sources disagree on an attribute (more than one attested
    /// value) — the narrative surfaces these rather than suppressing them.
    #[must_use]
    pub fn has_conflicts(&self) -> bool {
        self.last_names.len() > 1
            || self.birth_years.len() > 1
            || self.genders.len() > 1
            || self.death_places.len() > 1
    }

    /// Render a short narrative paragraph in the spirit of the Guido Foa
    /// story of Section 1.
    #[must_use]
    pub fn narrative(&self) -> String {
        let mut out = String::new();
        let name = self.display_name().unwrap_or_else(|| "an unnamed victim".to_owned());
        out.push_str(&format!(
            "{} is attested by {} report(s).",
            capitalize(&name),
            self.records.len()
        ));
        if let Some(year) = self.birth_years.first() {
            out.push_str(&format!(" Born {}", year.value));
            if let Some(bp) = self.birth_places.first() {
                out.push_str(&format!(" in {}", capitalize(&bp.value)));
            }
            out.push('.');
        }
        if let Some(father) = self.father_names.first() {
            out.push_str(&format!(" Child of {}", capitalize(&father.value)));
            if let Some(mother) = self.mother_names.first() {
                out.push_str(&format!(" and {}", capitalize(&mother.value)));
            }
            out.push('.');
        }
        if let Some(spouse) = self.spouse_names.first() {
            out.push_str(&format!(" Married to {}.", capitalize(&spouse.value)));
        }
        if let Some(home) = self.permanent_places.first() {
            out.push_str(&format!(" Lived in {}.", capitalize(&home.value)));
        }
        if let Some(death) = self.death_places.first() {
            out.push_str(&format!(" Perished in {}.", capitalize(&death.value)));
        }
        if self.has_conflicts() {
            out.push_str(" [Sources disagree on some details");
            if self.birth_years.len() > 1 {
                let years: Vec<String> =
                    self.birth_years.iter().map(|y| y.value.to_string()).collect();
                out.push_str(&format!("; birth year variously {}", years.join(", ")));
            }
            if self.last_names.len() > 1 {
                let names: Vec<String> =
                    self.last_names.iter().map(|n| capitalize(&n.value)).collect();
                out.push_str(&format!("; surname recorded as {}", names.join(" / ")));
            }
            out.push_str(".]");
        }
        out
    }
}

/// Node kinds of the Figure 2-style knowledge graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    Person(String),
    Place(String),
    Year(i32),
}

/// Typed, directed edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relation {
    FatherOf,
    MotherOf,
    SpouseOf,
    BornIn,
    BornOn,
    LivedIn,
    DiedIn,
}

/// A small typed knowledge graph for one entity.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    pub edges: Vec<(Node, Relation, Node)>,
}

impl KnowledgeGraph {
    /// Build the graph from a profile: one central person node plus
    /// best-attested relatives, places and dates.
    #[must_use]
    pub fn from_profile(profile: &PersonProfile) -> KnowledgeGraph {
        let mut edges = Vec::new();
        let Some(center_name) = profile.display_name() else {
            return KnowledgeGraph { edges };
        };
        let center = Node::Person(center_name);
        if let Some(f) = profile.father_names.first() {
            edges.push((Node::Person(f.value.clone()), Relation::FatherOf, center.clone()));
        }
        if let Some(m) = profile.mother_names.first() {
            edges.push((Node::Person(m.value.clone()), Relation::MotherOf, center.clone()));
        }
        if let Some(s) = profile.spouse_names.first() {
            edges.push((center.clone(), Relation::SpouseOf, Node::Person(s.value.clone())));
        }
        if let Some(y) = profile.birth_years.first() {
            edges.push((center.clone(), Relation::BornOn, Node::Year(y.value)));
        }
        if let Some(p) = profile.birth_places.first() {
            edges.push((center.clone(), Relation::BornIn, Node::Place(p.value.clone())));
        }
        if let Some(p) = profile.permanent_places.first() {
            edges.push((center.clone(), Relation::LivedIn, Node::Place(p.value.clone())));
        }
        if let Some(p) = profile.death_places.first() {
            edges.push((center, Relation::DiedIn, Node::Place(p.value.clone())));
        }
        KnowledgeGraph { edges }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

fn capitalize(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().chain(chars).collect::<String>(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{DateParts, GeoPoint, Place, RecordBuilder, Source, SourceId};

    /// The three Guido Foa reports of Table 1 (1920-born person: records 1
    /// and 2).
    fn guido_entity() -> (Dataset, Vec<RecordId>) {
        let mut ds = Dataset::new();
        let s0 = ds.add_source(Source::list(SourceId(0), "a"));
        let s1 = ds.add_source(Source::list(SourceId(0), "b"));
        let turin =
            Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69));
        ds.add_record(
            RecordBuilder::new(1_059_654, s0)
                .first_name("Guido")
                .last_name("Foa")
                .gender(Gender::Male)
                .birth(DateParts::full(18, 11, 1920))
                .place(PlaceType::Birth, turin.clone())
                .place(PlaceType::Permanent, turin.clone())
                .place(
                    PlaceType::Death,
                    Place { city: Some("Auschwitz".into()), ..Place::default() },
                )
                .spouse_name("Helena")
                .mother_name("Olga")
                .father_name("Donato")
                .build(),
        );
        ds.add_record(
            RecordBuilder::new(1_028_769, s1)
                .first_name("Guido")
                .last_name("Foy")
                .gender(Gender::Male)
                .birth(DateParts::full(18, 11, 1920))
                .place(PlaceType::Birth, turin)
                .mother_name("Olga")
                .father_name("Donato")
                .build(),
        );
        (ds, vec![RecordId(0), RecordId(1)])
    }

    #[test]
    fn profile_merges_with_support_counts() {
        let (ds, entity) = guido_entity();
        let profile = PersonProfile::build(&ds, &entity);
        assert_eq!(profile.display_name().as_deref(), Some("guido foa"));
        assert_eq!(profile.first_names[0].support, 2);
        // Surname conflict: foa (1) vs foy (1), alphabetical tiebreak.
        assert_eq!(profile.last_names.len(), 2);
        assert_eq!(profile.father_names[0].value, "donato");
        assert_eq!(profile.birth_years[0].value, 1920);
        assert!(profile.has_conflicts());
    }

    #[test]
    fn narrative_mentions_the_key_facts() {
        let (ds, entity) = guido_entity();
        let profile = PersonProfile::build(&ds, &entity);
        let text = profile.narrative();
        assert!(text.contains("Guido Foa"), "{text}");
        assert!(text.contains("1920"), "{text}");
        assert!(text.contains("Donato"), "{text}");
        assert!(text.contains("Olga"), "{text}");
        assert!(text.contains("Auschwitz"), "{text}");
        assert!(text.contains("disagree"), "conflicts must be surfaced: {text}");
    }

    #[test]
    fn knowledge_graph_mirrors_figure2() {
        let (ds, entity) = guido_entity();
        let profile = PersonProfile::build(&ds, &entity);
        let graph = KnowledgeGraph::from_profile(&profile);
        assert!(graph.len() >= 6);
        assert!(graph
            .edges
            .iter()
            .any(|(s, r, _)| *r == Relation::FatherOf && *s == Node::Person("donato".into())));
        assert!(graph
            .edges
            .iter()
            .any(|(_, r, o)| *r == Relation::DiedIn && *o == Node::Place("auschwitz".into())));
        assert!(graph
            .edges
            .iter()
            .any(|(_, r, o)| *r == Relation::BornOn && *o == Node::Year(1920)));
    }

    #[test]
    fn empty_entity_yields_empty_artifacts() {
        let ds = Dataset::new();
        let profile = PersonProfile::build(&ds, &[]);
        assert_eq!(profile.display_name(), None);
        assert!(KnowledgeGraph::from_profile(&profile).is_empty());
        assert!(profile.narrative().to_lowercase().contains("unnamed victim"));
    }

    #[test]
    fn single_record_has_no_conflicts() {
        let (ds, entity) = guido_entity();
        let profile = PersonProfile::build(&ds, &entity[..1]);
        assert!(!profile.has_conflicts());
        assert!(!profile.narrative().contains("disagree"));
    }
}
