//! # yv-core
//!
//! The paper's primary contribution: a model and pipeline for **uncertain
//! entity resolution** (Section 3) instantiated with MFIBlocks soft
//! clustering and ADTree ranked classification (Section 4), as deployed in
//! the Yad Vashem Names Project (Section 5).
//!
//! Uncertain ER differs from the classic pipeline in two ways:
//!
//! 1. **blocking doubles as clustering** -- the output is a set of possibly
//!    overlapping clusters, each representing one *possible* entity; and
//! 2. **no crisp decision is taken** -- the outcome is a ranked list of
//!    matches with confidence scores, and entities are disambiguated only
//!    at query time by a caller-chosen certainty threshold.
//!
//! ```no_run
//! use yv_core::{Pipeline, PipelineConfig};
//! use yv_datagen::{italy_set, tag_pairs};
//!
//! let gen = italy_set(7);
//! let config = PipelineConfig::default();
//! // Train on expert-tagged pairs, then resolve the whole dataset.
//! let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
//! let tags = tag_pairs(&gen, &blocked.candidate_pairs, 1);
//! let labelled: Vec<_> = tags
//!     .iter()
//!     .filter_map(|t| t.simplified().map(|m| (t.a, t.b, m)))
//!     .collect();
//! let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
//! let resolution = pipeline.resolve(&gen.dataset, &config);
//! for m in resolution.at_certainty(1.0).take(10) {
//!     println!("{:?} <-> {:?} with confidence {:.2}", m.a, m.b, m.score);
//! }
//! ```

pub mod conditions;
pub mod granularity;
pub mod incremental;
pub mod model;
pub mod narrative;
pub mod pipeline;
pub mod probabilistic;
pub mod query;
pub mod submitters;
pub mod resolution;

pub use conditions::Condition;
pub use granularity::Granularity;
pub use incremental::{IncrementalConfig, IncrementalResolver};
pub use model::{RankedMatch, SoftCluster};
pub use narrative::{KnowledgeGraph, PersonProfile};
pub use pipeline::{build_train_set, Pipeline, PipelineConfig};
pub use probabilistic::{PlattCalibration, SameAsStore};
pub use query::{PersonQuery, QueryHit};
pub use submitters::{resolve_submitters, SubmitterCluster, SubmitterResolutionConfig};
pub use resolution::{EntityMap, Resolution};
