//! Block scoring.
//!
//! A block's score measures the commonality of its records. The default is
//! the minimum pairwise Jaccard coefficient over the records' item bags —
//! a set-monotonic measure (adding a record can only lower the score),
//! which is what lets MFIBlocks prune by score safely. The expert-weighted
//! variant replaces set cardinalities with item-type weight sums; the
//! `ExpertSim` variant soft-matches items through Eq. 1 and loses
//! monotonicity (the paper's Table 9 shows the resulting quality drop).

use crate::config::ScoreFunction;
use yv_records::{Dataset, ItemId, RecordId};
use yv_similarity::fsim::item_similarity;
use yv_similarity::jaccard::jaccard_sorted;
use yv_similarity::ExpertWeights;

/// Score a block (its records' bags) under the configured function.
#[must_use]
pub fn block_score(ds: &Dataset, records: &[RecordId], score: &ScoreFunction) -> f64 {
    if records.len() < 2 {
        return 1.0;
    }
    let mut min = f64::INFINITY;
    for i in 0..records.len() {
        for j in i + 1..records.len() {
            let a = ds.bag(records[i]);
            let b = ds.bag(records[j]);
            let s = match score {
                ScoreFunction::Jaccard => {
                    let a_raw: Vec<u32> = a.iter().map(|id| id.0).collect();
                    let b_raw: Vec<u32> = b.iter().map(|id| id.0).collect();
                    jaccard_sorted(&a_raw, &b_raw)
                }
                ScoreFunction::WeightedJaccard(w) => weighted_jaccard(ds, a, b, w),
                ScoreFunction::ExpertSim => soft_jaccard(ds, a, b),
            };
            min = min.min(s);
            if min == 0.0 {
                return 0.0;
            }
        }
    }
    min
}

/// Weighted Jaccard: intersection / union measured in item-type weights.
fn weighted_jaccard(ds: &Dataset, a: &[ItemId], b: &[ItemId], w: &ExpertWeights) -> f64 {
    let weight = |id: ItemId| w.weight(ds.interner().item_type(id));
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0.0;
    let mut union = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                union += weight(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += weight(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let x = weight(a[i]);
                inter += x;
                union += x;
                i += 1;
                j += 1;
            }
        }
    }
    union += a[i..].iter().map(|&id| weight(id)).sum::<f64>();
    union += b[j..].iter().map(|&id| weight(id)).sum::<f64>();
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Soft Jaccard through the expert item similarity (Eq. 1): each item of
/// the smaller bag matches its best same-typed counterpart; the sum of
/// match similarities replaces the crisp intersection.
fn soft_jaccard(ds: &Dataset, a: &[ItemId], b: &[ItemId], ) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut soft_inter = 0.0;
    for &x in small {
        let mut best = 0.0f64;
        for &y in large {
            best = best.max(item_similarity(ds.interner(), x, y));
            if best >= 1.0 {
                break;
            }
        }
        soft_inter += best;
    }
    let union = (a.len() + b.len()) as f64 - soft_inter;
    if union <= 0.0 {
        1.0
    } else {
        soft_inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{DateParts, Gender, RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        // r0 and r1 highly similar; r2 unrelated.
        ds.add_record(
            RecordBuilder::new(0, s)
                .first_name("Guido")
                .last_name("Foa")
                .gender(Gender::Male)
                .birth(DateParts::year_only(1920))
                .build(),
        );
        ds.add_record(
            RecordBuilder::new(1, s)
                .first_name("Guido")
                .last_name("Foa")
                .gender(Gender::Male)
                .birth(DateParts::year_only(1921))
                .build(),
        );
        ds.add_record(
            RecordBuilder::new(2, s)
                .first_name("Moshe")
                .last_name("Kesler")
                .gender(Gender::Male)
                .build(),
        );
        ds
    }

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn similar_records_score_higher() {
        let ds = dataset();
        let close = block_score(&ds, &[rid(0), rid(1)], &ScoreFunction::Jaccard);
        let far = block_score(&ds, &[rid(0), rid(2)], &ScoreFunction::Jaccard);
        assert!(close > far, "{close} vs {far}");
    }

    #[test]
    fn adding_a_record_never_raises_the_jaccard_score() {
        // Set monotonicity: the property [18] relies on.
        let ds = dataset();
        let two = block_score(&ds, &[rid(0), rid(1)], &ScoreFunction::Jaccard);
        let three = block_score(&ds, &[rid(0), rid(1), rid(2)], &ScoreFunction::Jaccard);
        assert!(three <= two);
    }

    #[test]
    fn singleton_blocks_score_one() {
        let ds = dataset();
        for f in [ScoreFunction::Jaccard, ScoreFunction::ExpertSim] {
            assert!((block_score(&ds, &[rid(0)], &f) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_jaccard_responds_to_weights() {
        let ds = dataset();
        // Down-weighting gender (the only shared item between r0 and r2)
        // should lower their weighted score relative to uniform.
        let uniform = block_score(
            &ds,
            &[rid(0), rid(2)],
            &ScoreFunction::WeightedJaccard(ExpertWeights::uniform()),
        );
        let expert = block_score(
            &ds,
            &[rid(0), rid(2)],
            &ScoreFunction::WeightedJaccard(ExpertWeights::default()),
        );
        assert!(expert < uniform, "{expert} vs {uniform}");
    }

    #[test]
    fn uniform_weighted_jaccard_equals_plain() {
        let ds = dataset();
        let plain = block_score(&ds, &[rid(0), rid(1)], &ScoreFunction::Jaccard);
        let weighted = block_score(
            &ds,
            &[rid(0), rid(1)],
            &ScoreFunction::WeightedJaccard(ExpertWeights::uniform()),
        );
        assert!((plain - weighted).abs() < 1e-12);
    }

    #[test]
    fn expert_sim_soft_matches_near_years() {
        let ds = dataset();
        // r0 (1920) and r1 (1921) differ in birth year; crisp Jaccard
        // counts the years as disjoint, fsim scores them 0.98.
        let crisp = block_score(&ds, &[rid(0), rid(1)], &ScoreFunction::Jaccard);
        let soft = block_score(&ds, &[rid(0), rid(1)], &ScoreFunction::ExpertSim);
        assert!(soft > crisp, "{soft} vs {crisp}");
    }
}
