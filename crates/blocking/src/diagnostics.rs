//! Compact-set / sparse-neighborhood diagnostics.
//!
//! MFIBlocks enforces the two cluster-quality properties of Chaudhuri et
//! al. [7] *constructively* (the size cap approximates compact sets, the
//! NG threshold enforces sparse neighborhoods). This module measures how
//! well a finished blocking actually satisfies them, so parameter choices
//! can be audited instead of trusted:
//!
//! * **compact set (CS)** — members of a block should be more similar to
//!   each other than to records outside it. We report, per block, the
//!   margin between the worst within-block pair similarity and the *mean*
//!   member-to-sampled-outsider similarity. (The mean, not the max: under
//!   soft clustering a member's other duplicates legitimately live outside
//!   this block and would dominate a max.)
//! * **sparse neighborhood (SN)** — no record should accumulate an
//!   outsized candidate neighborhood. We report the neighbor-count
//!   distribution against the `NG · minsup` cap.

use crate::mfiblocks::BlockingResult;
use std::collections::{HashMap, HashSet};
use yv_records::{Dataset, RecordId};
use yv_similarity::jaccard::jaccard_sorted;

/// Aggregated diagnostics over one blocking result.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingDiagnostics {
    /// Fraction of audited blocks whose worst internal similarity beats
    /// the mean sampled outsider similarity (the compact-set property).
    pub compact_fraction: f64,
    /// Mean margin `(worst internal) − (mean sampled outsider)` over the
    /// audited blocks; positive = compact on average.
    pub mean_compact_margin: f64,
    /// Maximum distinct-neighbor count of any record.
    pub max_neighbors: usize,
    /// Mean distinct-neighbor count over records that have any.
    pub mean_neighbors: f64,
    /// Fraction of records whose neighborhood stays within
    /// `ceil(ng · minsup)` for the *loosest* minsup used (the SN audit).
    pub sparse_fraction: f64,
    /// Number of blocks audited for compactness.
    pub audited_blocks: usize,
}

/// Audit a blocking result. `outsider_samples` caps how many outside
/// records are compared per block (deterministic stride sampling keeps the
/// audit linear).
#[must_use]
pub fn audit(
    ds: &Dataset,
    result: &BlockingResult,
    ng: f64,
    outsider_samples: usize,
) -> BlockingDiagnostics {
    let bags: Vec<Vec<u32>> =
        ds.bags().iter().map(|b| b.iter().map(|i| i.0).collect()).collect();
    let n = ds.len();

    // Compact-set audit.
    let mut compact_hits = 0usize;
    let mut margin_sum = 0.0;
    let mut audited = 0usize;
    for block in &result.blocks {
        if block.records.len() < 2 || n <= block.records.len() {
            continue;
        }
        let members: HashSet<RecordId> = block.records.iter().copied().collect();
        // Worst internal pair similarity.
        let mut worst_internal = f64::INFINITY;
        for (i, &a) in block.records.iter().enumerate() {
            for &b in &block.records[i + 1..] {
                worst_internal =
                    worst_internal.min(jaccard_sorted(&bags[a.index()], &bags[b.index()]));
            }
        }
        // Mean member-to-outsider similarity over a deterministic sample.
        let stride = (n / outsider_samples.max(1)).max(1);
        let mut outside_sum = 0.0f64;
        let mut outside_n = 0usize;
        for outsider in (0..n).step_by(stride) {
            let outsider = RecordId(outsider as u32);
            if members.contains(&outsider) {
                continue;
            }
            for &member in &block.records {
                outside_sum +=
                    jaccard_sorted(&bags[member.index()], &bags[outsider.index()]);
                outside_n += 1;
            }
        }
        audited += 1;
        let mean_outside = if outside_n == 0 { 0.0 } else { outside_sum / outside_n as f64 };
        let margin = worst_internal - mean_outside;
        margin_sum += margin;
        if margin > 0.0 {
            compact_hits += 1;
        }
    }

    // Sparse-neighborhood audit.
    let mut neighbors: HashMap<RecordId, HashSet<RecordId>> = HashMap::new();
    for &(a, b) in &result.candidate_pairs {
        neighbors.entry(a).or_default().insert(b);
        neighbors.entry(b).or_default().insert(a);
    }
    let loosest_minsup = result.blocks.iter().map(|b| b.minsup).max().unwrap_or(2);
    let cap = (ng * loosest_minsup as f64).ceil() as usize;
    let counts: Vec<usize> = neighbors.values().map(HashSet::len).collect();
    let within_cap = counts.iter().filter(|&&c| c <= cap).count();

    BlockingDiagnostics {
        compact_fraction: if audited == 0 {
            1.0
        } else {
            compact_hits as f64 / audited as f64
        },
        mean_compact_margin: if audited == 0 { 0.0 } else { margin_sum / audited as f64 },
        max_neighbors: counts.iter().copied().max().unwrap_or(0),
        mean_neighbors: if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / counts.len() as f64
        },
        sparse_fraction: if counts.is_empty() {
            1.0
        } else {
            within_cap as f64 / counts.len() as f64
        },
        audited_blocks: audited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MfiBlocksConfig;
    use crate::mfiblocks::mfi_blocks;
    use yv_datagen::GenConfig;

    fn fixture() -> (yv_datagen::Generated, BlockingResult) {
        let gen = GenConfig::random(600, 21).generate();
        let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        (gen, result)
    }

    #[test]
    fn blocks_are_mostly_compact() {
        let (gen, result) = fixture();
        let diag = audit(&gen.dataset, &result, 3.0, 64);
        assert!(diag.audited_blocks > 0);
        assert!(
            diag.compact_fraction > 0.5,
            "most surviving blocks should be compact: {diag:?}"
        );
    }

    #[test]
    fn tighter_ng_is_sparser() {
        let gen = GenConfig::random(600, 22).generate();
        let tight = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default().with_ng(1.5));
        let loose = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default().with_ng(5.0));
        let d_tight = audit(&gen.dataset, &tight, 1.5, 32);
        let d_loose = audit(&gen.dataset, &loose, 5.0, 32);
        assert!(
            d_tight.mean_neighbors <= d_loose.mean_neighbors + 1e-9,
            "tight {} vs loose {}",
            d_tight.mean_neighbors,
            d_loose.mean_neighbors
        );
    }

    #[test]
    fn empty_result_is_trivially_clean() {
        let ds = yv_records::Dataset::new();
        let result = mfi_blocks(&ds, &MfiBlocksConfig::default());
        let diag = audit(&ds, &result, 3.0, 16);
        assert_eq!(diag.audited_blocks, 0);
        assert_eq!(diag.compact_fraction, 1.0);
        assert_eq!(diag.sparse_fraction, 1.0);
        assert_eq!(diag.max_neighbors, 0);
    }

    #[test]
    fn neighbor_counts_match_candidate_pairs() {
        let (_, result) = fixture();
        let total_incidences: usize = result.candidate_pairs.len() * 2;
        let gen2 = GenConfig::random(600, 21).generate();
        let diag = audit(&gen2.dataset, &result, 3.0, 16);
        // Mean * count == total incidences (each pair adds one neighbor to
        // each endpoint; duplicates impossible since pairs are distinct).
        let records_with_neighbors =
            result.candidate_pairs.iter().flat_map(|&(a, b)| [a, b]).collect::<std::collections::HashSet<_>>().len();
        let reconstructed = diag.mean_neighbors * records_with_neighbors as f64;
        assert!((reconstructed - total_incidences as f64).abs() < 1e-6);
    }
}
