//! The sparse-neighborhood (NG) condition.
//!
//! Lines 9–15 of Algorithm 1: after candidate blocks are materialized, a
//! score threshold `minTh` is derived such that filtering blocks scoring at
//! or below it restores the sparse-neighborhood property — no record
//! accumulates more than `NG · minsup` distinct candidate neighbors. Higher
//! NG tolerates more overlap (higher recall, lower precision — Figure 16).

use std::collections::BTreeMap;
use yv_records::RecordId;

/// Derive the NG score threshold for one minsup iteration.
///
/// For every record, blocks containing it are visited from highest to
/// lowest score, accumulating distinct neighbors; once the cap
/// `ceil(ng · minsup)` is exceeded, the record demands that all its lower-
/// scoring blocks be pruned, i.e. a per-record threshold equal to the score
/// of the first violating block. `minTh` is the maximum such demand
/// (blocks scoring strictly above survive).
#[must_use]
pub fn ng_threshold(
    blocks: &[(Vec<RecordId>, f64)],
    ng: f64,
    minsup: u64,
) -> f64 {
    let cap = (ng * minsup as f64).ceil() as usize;
    // Record -> list of (block index) sorted later by score. BTreeMap so
    // the per-record visit order (and thus any score-tie behavior) is the
    // same on every run.
    let mut memberships: BTreeMap<RecordId, Vec<usize>> = BTreeMap::new();
    for (bi, (records, _)) in blocks.iter().enumerate() {
        for &r in records {
            memberships.entry(r).or_default().push(bi);
        }
    }
    let mut min_th = f64::NEG_INFINITY;
    let mut neighbors: std::collections::HashSet<RecordId> = std::collections::HashSet::new();
    for (record, mut block_ids) in memberships {
        block_ids.sort_by(|&a, &b| blocks[b].1.total_cmp(&blocks[a].1));
        neighbors.clear();
        for bi in block_ids {
            let (records, score) = &blocks[bi];
            neighbors.extend(records.iter().copied().filter(|&r| r != record));
            if neighbors.len() > cap {
                // Every block of this record scoring <= this one must go.
                if *score > min_th {
                    min_th = *score;
                }
                break;
            }
        }
    }
    min_th
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ids: &[u32], score: f64) -> (Vec<RecordId>, f64) {
        (ids.iter().map(|&i| RecordId(i)).collect(), score)
    }

    #[test]
    fn no_violation_means_no_threshold() {
        let blocks = vec![block(&[0, 1], 0.9), block(&[2, 3], 0.8)];
        let th = ng_threshold(&blocks, 3.0, 2);
        assert_eq!(th, f64::NEG_INFINITY);
        assert!(blocks.iter().all(|(_, s)| *s > th));
    }

    #[test]
    fn crowded_record_sets_threshold() {
        // Record 0 sits in four blocks, gaining 2 fresh neighbors each;
        // with cap = ceil(0.5 * 2) = 1 the second-best block already
        // violates.
        let blocks = vec![
            block(&[0, 1, 2], 0.9),
            block(&[0, 3, 4], 0.8),
            block(&[0, 5, 6], 0.7),
            block(&[0, 7, 8], 0.6),
        ];
        let th = ng_threshold(&blocks, 0.5, 2);
        assert!((th - 0.9).abs() < 1e-12, "got {th}");
        // Only blocks scoring above 0.9 survive: none here.
        assert_eq!(blocks.iter().filter(|(_, s)| *s > th).count(), 0);
    }

    #[test]
    fn looser_ng_keeps_more_blocks() {
        let blocks = vec![
            block(&[0, 1, 2], 0.9),
            block(&[0, 3, 4], 0.8),
            block(&[0, 5, 6], 0.7),
        ];
        let tight = ng_threshold(&blocks, 1.0, 2);
        let loose = ng_threshold(&blocks, 3.0, 2);
        let kept_tight = blocks.iter().filter(|(_, s)| *s > tight).count();
        let kept_loose = blocks.iter().filter(|(_, s)| *s > loose).count();
        assert!(kept_loose >= kept_tight);
        assert_eq!(kept_loose, 3, "cap 6 neighbors: all blocks fit");
    }

    #[test]
    fn threshold_is_monotone_in_ng() {
        let blocks = vec![
            block(&[0, 1, 2, 3], 0.9),
            block(&[0, 4, 5, 6], 0.8),
            block(&[0, 7, 8, 9], 0.7),
            block(&[0, 10, 11], 0.6),
        ];
        let mut last = f64::INFINITY;
        for ng in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let th = ng_threshold(&blocks, ng, 2);
            assert!(th <= last, "threshold should relax as NG grows");
            last = th;
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(ng_threshold(&[], 3.0, 2), f64::NEG_INFINITY);
    }
}
