//! MFIBlocks configuration.

use yv_similarity::ExpertWeights;

/// How candidate blocks are scored (Section 6.5 conditions).
#[derive(Debug, Clone, Default)]
#[allow(clippy::large_enum_variant)] // the weight table is 28 f64s; configs are not hot
pub enum ScoreFunction {
    /// Minimum pairwise Jaccard of record item bags within the block —
    /// set-monotonic, the property MFIBlocks relies on ([18]). Uniform item
    /// weights: the `Base` condition.
    #[default]
    Jaccard,
    /// Weighted Jaccard with expert item-type weights (`Expert Weighting`).
    WeightedJaccard(ExpertWeights),
    /// The hand-crafted expert item similarity of Eq. 1 (`ExpertSim`).
    /// Soft-matches items of the same type; *not* set-monotonic, which the
    /// paper found detrimental (Table 9).
    ExpertSim,
}

/// MFIBlocks parameters.
#[derive(Debug, Clone)]
pub struct MfiBlocksConfig {
    /// `MaxMinSup`: the first (largest) minsup level; iteration proceeds
    /// down to 2. Matches the archival estimate of at most eight
    /// duplicates.
    pub max_minsup: u64,
    /// Neighborhood Growth: how much block overlap is tolerated per record
    /// (Section 6.5; swept over 1.5–5 in Figures 15–16).
    pub ng: f64,
    /// Block size cap factor: blocks with more than `minsup · p` records
    /// are pruned (line 8 of Algorithm 1).
    pub p: f64,
    /// Block scoring function.
    pub score: ScoreFunction,
    /// Prune this fraction of the most frequent items before mining
    /// (Section 6.3 uses 0.0003); `None` disables pruning.
    pub prune_frequent: Option<f64>,
    /// Additionally prune items occurring in more than this fraction of
    /// records (gender codes, country names). The paper's 0.03% vocabulary
    /// fraction presumes a 6.5M-record multilingual vocabulary; on small
    /// subsets this record-fraction cap is the scale-free equivalent.
    pub prune_common: Option<f64>,
    /// Worker threads for block scoring (1 = sequential).
    pub threads: usize,
}

impl Default for MfiBlocksConfig {
    fn default() -> Self {
        MfiBlocksConfig {
            max_minsup: 5,
            ng: 3.0,
            p: 2.0,
            score: ScoreFunction::default(),
            prune_frequent: Some(0.0003),
            prune_common: Some(0.05),
            threads: 1,
        }
    }
}

impl MfiBlocksConfig {
    /// The `Base` condition of Table 9: uniform weights, plain Jaccard.
    #[must_use]
    pub fn base() -> Self {
        Self::default()
    }

    /// The `Expert Weighting` condition of Table 9.
    #[must_use]
    pub fn expert_weighting() -> Self {
        MfiBlocksConfig { score: ScoreFunction::WeightedJaccard(ExpertWeights::default()), ..Self::default() }
    }

    /// The `ExpertSim` condition of Table 9.
    #[must_use]
    pub fn expert_sim() -> Self {
        MfiBlocksConfig { score: ScoreFunction::ExpertSim, ..Self::default() }
    }

    /// Builder-style override of `MaxMinSup`.
    #[must_use]
    pub fn with_max_minsup(mut self, max_minsup: u64) -> Self {
        self.max_minsup = max_minsup;
        self
    }

    /// Builder-style override of NG.
    #[must_use]
    pub fn with_ng(mut self, ng: f64) -> Self {
        self.ng = ng;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_recommended_settings() {
        let c = MfiBlocksConfig::default();
        // Section 6.5: MaxMinSup = 5 and NG in [3, 4] are the preferred
        // settings.
        assert_eq!(c.max_minsup, 5);
        assert!((3.0..=4.0).contains(&c.ng));
        assert!(c.prune_frequent.is_some());
    }

    #[test]
    fn builders_override() {
        let c = MfiBlocksConfig::base().with_max_minsup(6).with_ng(1.5);
        assert_eq!(c.max_minsup, 6);
        assert!((c.ng - 1.5).abs() < 1e-12);
    }

    #[test]
    fn condition_constructors_pick_score_functions() {
        assert!(matches!(MfiBlocksConfig::base().score, ScoreFunction::Jaccard));
        assert!(matches!(
            MfiBlocksConfig::expert_weighting().score,
            ScoreFunction::WeightedJaccard(_)
        ));
        assert!(matches!(MfiBlocksConfig::expert_sim().score, ScoreFunction::ExpertSim));
    }
}
