//! # yv-blocking
//!
//! The MFIBlocks soft-clustering blocking algorithm (Kenig & Gal [18],
//! Algorithm 1 of the paper).
//!
//! MFIBlocks makes the blocking step double as the final clustering step of
//! uncertain ER: blocks may overlap (a record can sit in several blocks
//! under different implicit keys), no blocking key is designed by hand
//! ("let the data talk" — any itemset the data supports can act as a key),
//! and block quality is enforced through the compact-set and
//! sparse-neighborhood (NG) conditions of Chaudhuri et al. [7].
//!
//! The algorithm iterates `minsup` from `MaxMinSup` down to 2; at each
//! level it mines maximal frequent itemsets from the still-uncovered
//! records, materializes their supports as candidate blocks, prunes blocks
//! larger than `minsup·p`, derives a score threshold from the NG condition,
//! and emits the candidate pairs of the surviving blocks.
//!
//! ```
//! use yv_blocking::{mfi_blocks, MfiBlocksConfig};
//! use yv_datagen::GenConfig;
//!
//! let generated = GenConfig::random(300, 7).generate();
//! let result = mfi_blocks(&generated.dataset, &MfiBlocksConfig::default());
//! assert!(!result.candidate_pairs.is_empty());
//! ```

pub mod config;
pub mod diagnostics;
pub mod mfiblocks;
pub mod neighborhood;
pub mod score;

pub use config::{MfiBlocksConfig, ScoreFunction};
pub use diagnostics::{audit, BlockingDiagnostics};
pub use mfiblocks::{
    mfi_blocks, mfi_blocks_published, mfi_blocks_recorded, Block, BlockingResult,
    BlockingStats,
};
