//! Algorithm 1: the MFIBlocks main loop.

use crate::config::MfiBlocksConfig;
use crate::neighborhood::ng_threshold;
use crate::score::block_score;
use std::collections::HashSet;
use std::time::Duration;
use yv_mfi::{mine_maximal, prune_common_items, prune_top_frequent};
use yv_obs::{MetricsRegistry, Recorder};
use yv_records::{Dataset, ItemId, RecordId};

/// A surviving block: the maximal frequent itemset acting as its implicit
/// key, its supporting records and its score.
#[derive(Debug, Clone)]
pub struct Block {
    pub items: Vec<ItemId>,
    pub records: Vec<RecordId>,
    pub score: f64,
    /// The minsup level at which the block was mined.
    pub minsup: u64,
}

impl Block {
    /// All unordered record pairs of the block.
    pub fn pairs(&self) -> impl Iterator<Item = (RecordId, RecordId)> + '_ {
        self.records.iter().enumerate().flat_map(move |(i, &a)| {
            self.records[i + 1..].iter().map(move |&b| if a < b { (a, b) } else { (b, a) })
        })
    }
}

/// Counters and timings for the performance study (Figure 12).
#[derive(Debug, Clone, Default)]
pub struct BlockingStats {
    pub iterations: u32,
    pub mfis_mined: usize,
    pub blocks_considered: usize,
    pub blocks_kept: usize,
    pub records_covered: usize,
    /// Time spent inside the FP-Growth/FPMax miner — the bottleneck the
    /// paper measures (90% of runtime on their setup).
    pub mining_time: Duration,
    pub total_time: Duration,
    /// Items removed by frequent-item pruning.
    pub items_pruned: usize,
}

/// The blocking outcome: soft (possibly overlapping) blocks and the
/// deduplicated candidate-pair set.
#[derive(Debug, Clone)]
pub struct BlockingResult {
    pub blocks: Vec<Block>,
    pub candidate_pairs: Vec<(RecordId, RecordId)>,
    pub stats: BlockingStats,
}

impl BlockingResult {
    /// Blocks containing a given record (soft clustering: may be several).
    #[must_use]
    pub fn blocks_of(&self, r: RecordId) -> Vec<&Block> {
        self.blocks.iter().filter(|b| b.records.contains(&r)).collect()
    }
}

/// Run MFIBlocks over a dataset.
///
/// Timings in [`BlockingStats`] come from an internal wall-clock
/// [`Recorder`]; use [`mfi_blocks_recorded`] to capture the full span
/// stream (per-iteration mining/scoring/filtering) as well.
#[must_use]
pub fn mfi_blocks(ds: &Dataset, config: &MfiBlocksConfig) -> BlockingResult {
    mfi_blocks_recorded(ds, config, &Recorder::monotonic())
}

/// Run MFIBlocks, recording the span taxonomy on `rec`:
///
/// ```text
/// blocking                     the whole run
/// ├── prune_items              frequent/common-item pruning before mining
/// └── iteration (minsup=k)     one pass of the minsup loop
///     ├── mine                 FP-Growth/FPMax maximal-itemset mining
///     ├── find_support         posting-list intersection + maximality/size pruning
///     ├── score_blocks         block scoring (parallel when configured)
///     └── ng_filter            sparse-neighborhood threshold + coverage update
/// ```
///
/// The clock is injected through the recorder, so this function never
/// reads the wall clock itself (the yv-audit S1 rule holds by
/// construction) and timing can never influence which blocks survive.
#[must_use]
pub fn mfi_blocks_recorded(
    ds: &Dataset,
    config: &MfiBlocksConfig,
    rec: &Recorder,
) -> BlockingResult {
    let blocking_span = rec.span("blocking");
    let n = ds.len();
    let mut stats = BlockingStats::default();
    let mut mining_ns = 0u64;

    // Item bags as raw u32s, optionally with ultra-frequent items pruned.
    let prune_span = rec.span("prune_items");
    let raw_bags: Vec<Vec<u32>> =
        ds.bags().iter().map(|bag| bag.iter().map(|id| id.0).collect()).collect();
    let mut mining_bags: Vec<Vec<u32>> = match config.prune_frequent {
        Some(fraction) => {
            let (pruned, removed) = prune_top_frequent(&raw_bags, fraction);
            stats.items_pruned = removed.len();
            pruned
        }
        None => raw_bags,
    };
    if let Some(fraction) = config.prune_common {
        let (pruned, removed) = prune_common_items(&mining_bags, fraction);
        stats.items_pruned += removed.len();
        mining_bags = pruned;
    }
    prune_span.finish();

    let mut covered = vec![false; n];
    let mut pairs: HashSet<(RecordId, RecordId)> = HashSet::new();
    let mut kept_blocks: Vec<Block> = Vec::new();

    let mut minsup = config.max_minsup.max(2);
    loop {
        let uncovered: Vec<usize> = (0..n).filter(|&i| !covered[i]).collect();
        if uncovered.is_empty() {
            break;
        }
        let iteration_span = rec.span_with("iteration", &[("minsup", minsup)]);
        // Mine MFIs from the uncovered records (line 6).
        let subset: Vec<Vec<u32>> =
            uncovered.iter().map(|&i| mining_bags[i].clone()).collect();
        let mine_span = rec.span_with("mine", &[("minsup", minsup)]);
        let mfis = mine_maximal(&subset, minsup);
        mining_ns += mine_span.finish();
        stats.mfis_mined += mfis.len();
        stats.iterations += 1;

        // FindSupport (line 7): inverted index over the uncovered subset.
        let support_span = rec.span_with("find_support", &[("minsup", minsup)]);
        let n_items = ds.interner().len();
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for (local, &global) in uncovered.iter().enumerate() {
            for &item in &mining_bags[global] {
                postings[item as usize].push(local as u32);
            }
        }

        let size_cap = (minsup as f64 * config.p).floor() as usize;
        let mut candidates: Vec<(Vec<ItemId>, Vec<RecordId>)> = Vec::new();
        for mfi in &mfis {
            let Some(support) = intersect_postings(&postings, &mfi.items) else {
                continue;
            };
            // Filter blocks larger than minsup * p (line 8).
            if support.len() < 2 || support.len() > size_cap.max(2) {
                continue;
            }
            let records: Vec<RecordId> =
                support.iter().map(|&local| RecordId(uncovered[local as usize] as u32)).collect();
            let items: Vec<ItemId> = mfi.items.iter().map(|&i| ItemId(i)).collect();
            candidates.push((items, records));
        }
        stats.blocks_considered += candidates.len();
        support_span.finish();

        // Score blocks (parallel when configured).
        let score_span = rec.span_with("score_blocks", &[("minsup", minsup)]);
        let scores = score_blocks(ds, &candidates, config);
        let scored: Vec<(Vec<RecordId>, f64)> = candidates
            .iter()
            .zip(&scores)
            .map(|((_, records), &s)| (records.clone(), s))
            .collect();
        score_span.finish();

        // Sparse-neighborhood threshold (lines 9–14) and filtering
        // (lines 15–16).
        let filter_span = rec.span_with("ng_filter", &[("minsup", minsup)]);
        let min_th = ng_threshold(&scored, config.ng, minsup);
        for ((items, records), &score) in candidates.iter().zip(&scores) {
            if score <= min_th {
                continue;
            }
            // Surviving block: emit pairs and mark coverage (lines 17–19).
            // Membership is sorted before emission so cluster output is
            // canonical regardless of how support was materialized.
            let mut items = items.clone();
            items.sort_unstable();
            let mut records = records.clone();
            records.sort_unstable();
            let block = Block { items, records, score, minsup };
            for (a, b) in block.pairs() {
                pairs.insert((a, b));
                covered[a.index()] = true;
                covered[b.index()] = true;
            }
            kept_blocks.push(block);
        }
        filter_span.finish();
        iteration_span.finish();

        if minsup == 2 {
            break;
        }
        minsup -= 1;
    }

    stats.blocks_kept = kept_blocks.len();
    stats.records_covered = covered.iter().filter(|&&c| c).count();
    stats.mining_time = Duration::from_nanos(mining_ns);

    let mut candidate_pairs: Vec<(RecordId, RecordId)> = pairs.into_iter().collect();
    candidate_pairs.sort_unstable();

    rec.incr("mfis_mined", stats.mfis_mined as u64);
    rec.incr("blocks_considered", stats.blocks_considered as u64);
    rec.incr("blocks_kept", stats.blocks_kept as u64);
    rec.incr("candidate_pairs", candidate_pairs.len() as u64);
    rec.incr("items_pruned", stats.items_pruned as u64);
    stats.total_time = Duration::from_nanos(blocking_span.finish());

    BlockingResult { blocks: kept_blocks, candidate_pairs, stats }
}

/// Intersect sorted posting lists of an itemset, rarest item first.
/// Returns `None` when any item has no postings.
fn intersect_postings(postings: &[Vec<u32>], items: &[u32]) -> Option<Vec<u32>> {
    let mut lists: Vec<&Vec<u32>> = items.iter().map(|&i| &postings[i as usize]).collect();
    lists.sort_by_key(|l| l.len());
    if lists.first().is_some_and(|l| l.is_empty()) {
        return None;
    }
    let mut acc: Vec<u32> = lists[0].clone();
    for list in &lists[1..] {
        let mut out = Vec::with_capacity(acc.len().min(list.len()));
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < list.len() {
            match acc[i].cmp(&list[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(acc[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc = out;
        if acc.is_empty() {
            return None;
        }
    }
    Some(acc)
}

/// [`mfi_blocks_recorded`], then publish the aggregated view into
/// `registry`: one `yv_blocking_stage_{span}_us` gauge per span name in
/// the taxonomy above, one `yv_blocking_{counter}` gauge per recorder
/// counter, and `yv_blocking_peak_alloc_bytes` — the high-water mark of
/// live bytes across this run (zero unless the counting allocator is
/// installed). The peak is reset on entry so the reading attributes to
/// this blocking pass, not the process lifetime.
#[must_use]
pub fn mfi_blocks_published(
    ds: &Dataset,
    config: &MfiBlocksConfig,
    rec: &Recorder,
    registry: &MetricsRegistry,
) -> BlockingResult {
    yv_obs::reset_peak();
    let result = mfi_blocks_recorded(ds, config, rec);
    registry.publish_recorder("yv_blocking", rec);
    registry.set_gauge(
        "yv_blocking_peak_alloc_bytes",
        "Peak live bytes during blocking (0 without the counting allocator)",
        yv_obs::alloc_stats().peak_bytes,
    );
    result
}

/// Score candidate blocks, chunked over `config.threads` workers (the
/// paper distributes this stage over a Spark pseudo-cluster; scoped threads
/// are our substitution).
fn score_blocks(
    ds: &Dataset,
    candidates: &[(Vec<ItemId>, Vec<RecordId>)],
    config: &MfiBlocksConfig,
) -> Vec<f64> {
    if config.threads <= 1 || candidates.len() < 64 {
        return candidates
            .iter()
            .map(|(_, records)| block_score(ds, records, &config.score))
            .collect();
    }
    let chunk = candidates.len().div_ceil(config.threads);
    let mut scores = vec![0.0; candidates.len()];
    // std scoped threads re-raise any worker panic on join — no Result to
    // unwrap, and a panicking worker cannot yield half-written scores.
    std::thread::scope(|scope| {
        for (slot, work) in scores.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
            scope.spawn(move || {
                for (out, (_, records)) in slot.iter_mut().zip(work) {
                    *out = block_score(ds, records, &config.score);
                }
            });
        }
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_datagen::GenConfig;

    fn generated() -> yv_datagen::Generated {
        GenConfig::random(600, 31).generate()
    }

    fn recall(gen: &yv_datagen::Generated, pairs: &[(RecordId, RecordId)]) -> f64 {
        let gold: HashSet<(RecordId, RecordId)> = gen.matching_pairs().into_iter().collect();
        if gold.is_empty() {
            return 1.0;
        }
        let hit = pairs.iter().filter(|p| gold.contains(p)).count();
        hit as f64 / gold.len() as f64
    }

    #[test]
    fn finds_most_duplicates() {
        let gen = generated();
        let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        let r = recall(&gen, &result.candidate_pairs);
        assert!(r > 0.5, "recall {r}");
        // And the candidate set is far smaller than the Cartesian product.
        let n = gen.dataset.len();
        assert!(result.candidate_pairs.len() < n * (n - 1) / 2 / 10);
    }

    #[test]
    fn higher_ng_never_reduces_pairs() {
        let gen = generated();
        let tight =
            mfi_blocks(&gen.dataset, &MfiBlocksConfig::default().with_ng(1.5));
        let loose =
            mfi_blocks(&gen.dataset, &MfiBlocksConfig::default().with_ng(5.0));
        assert!(loose.candidate_pairs.len() >= tight.candidate_pairs.len());
    }

    #[test]
    fn blocks_respect_size_cap() {
        let gen = generated();
        let config = MfiBlocksConfig::default();
        let result = mfi_blocks(&gen.dataset, &config);
        for block in &result.blocks {
            let cap = (block.minsup as f64 * config.p).floor() as usize;
            assert!(block.records.len() <= cap.max(2), "block of {}", block.records.len());
        }
    }

    #[test]
    fn soft_clustering_produces_overlap() {
        let gen = generated();
        let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default().with_ng(5.0));
        let mut membership = std::collections::HashMap::new();
        for b in &result.blocks {
            for &r in &b.records {
                *membership.entry(r).or_insert(0usize) += 1;
            }
        }
        assert!(
            membership.values().any(|&c| c > 1),
            "some record should sit in several blocks"
        );
    }

    #[test]
    fn deterministic() {
        let gen = generated();
        let a = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        let b = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        assert_eq!(a.candidate_pairs, b.candidate_pairs);
    }

    #[test]
    fn parallel_scoring_matches_sequential() {
        let gen = generated();
        let seq = mfi_blocks(&gen.dataset, &MfiBlocksConfig { threads: 1, ..MfiBlocksConfig::default() });
        let par = mfi_blocks(&gen.dataset, &MfiBlocksConfig { threads: 4, ..MfiBlocksConfig::default() });
        assert_eq!(seq.candidate_pairs, par.candidate_pairs);
    }

    #[test]
    fn pruning_reduces_mining_vocabulary() {
        let gen = generated();
        let with = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        let without = mfi_blocks(
            &gen.dataset,
            &MfiBlocksConfig {
                prune_frequent: None,
                prune_common: None,
                ..MfiBlocksConfig::default()
            },
        );
        assert!(with.stats.items_pruned > 0);
        assert_eq!(without.stats.items_pruned, 0);
    }

    #[test]
    fn stats_are_populated() {
        let gen = generated();
        let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.mfis_mined > 0);
        assert!(result.stats.blocks_kept > 0);
        assert!(result.stats.records_covered > 0);
        assert!(result.stats.total_time >= result.stats.mining_time);
    }

    #[test]
    fn published_run_exports_stage_gauges_and_counters() {
        let gen = generated();
        let (rec, _clock) = Recorder::manual();
        let registry = MetricsRegistry::new();
        let result =
            mfi_blocks_published(&gen.dataset, &MfiBlocksConfig::default(), &rec, &registry);
        assert!(!result.blocks.is_empty());
        let names: Vec<String> =
            registry.scalar_values().into_iter().map(|(n, _)| n).collect();
        for stage in ["blocking", "mine", "find_support", "score_blocks", "ng_filter"] {
            let metric = format!("yv_blocking_stage_{stage}_us");
            assert!(names.contains(&metric), "missing {metric} in {names:?}");
        }
        assert!(names.contains(&"yv_blocking_peak_alloc_bytes".to_owned()));
        assert!(registry.gauge("yv_blocking_mfis_mined", "").get() > 0);
    }

    #[test]
    fn recorded_trace_is_deterministic_and_carries_the_taxonomy() {
        let gen = generated();
        let run = || {
            let (rec, _clock) = Recorder::manual();
            let result = mfi_blocks_recorded(&gen.dataset, &MfiBlocksConfig::default(), &rec);
            (yv_obs::chrome_trace(&rec), result.candidate_pairs)
        };
        let (trace_a, pairs_a) = run();
        let (trace_b, pairs_b) = run();
        assert_eq!(trace_a, trace_b, "manual-clock traces must be byte-identical");
        assert_eq!(pairs_a, pairs_b);
        for name in
            ["blocking", "prune_items", "iteration", "mine", "find_support", "score_blocks", "ng_filter"]
        {
            assert!(trace_a.contains(&format!("\"name\":\"{name}\"")), "{name} span missing");
        }
        assert!(trace_a.contains("\"minsup\":5"), "iteration spans carry their minsup level");
        assert!(trace_a.contains("\"name\":\"candidate_pairs\""), "counters are exported");
    }

    #[test]
    fn pairs_are_normalized_and_unique() {
        let gen = generated();
        let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
        let mut seen = HashSet::new();
        for &(a, b) in &result.candidate_pairs {
            assert!(a < b);
            assert!(seen.insert((a, b)));
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new();
        let result = mfi_blocks(&ds, &MfiBlocksConfig::default());
        assert!(result.blocks.is_empty());
        assert!(result.candidate_pairs.is_empty());
    }
}
