//! Blocking invariants over generated datasets: every surviving block is a
//! genuine support set of its itemset key, respects the size cap, and the
//! candidate pairs are exactly the blocks' pairs.

use std::collections::HashSet;
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_datagen::GenConfig;

#[test]
fn blocks_are_support_sets_of_their_keys() {
    let gen = GenConfig::random(700, 3).generate();
    let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
    for block in &result.blocks {
        for &record in &block.records {
            let bag: HashSet<_> = gen.dataset.bag(record).iter().copied().collect();
            for item in &block.items {
                assert!(
                    bag.contains(item),
                    "record {record:?} lacks block key item {item:?}"
                );
            }
        }
    }
}

#[test]
fn candidate_pairs_equal_union_of_block_pairs() {
    let gen = GenConfig::random(700, 3).generate();
    let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
    let mut from_blocks: HashSet<_> = HashSet::new();
    for block in &result.blocks {
        from_blocks.extend(block.pairs());
    }
    let from_result: HashSet<_> = result.candidate_pairs.iter().copied().collect();
    assert_eq!(from_blocks, from_result);
}

#[test]
fn every_block_has_at_least_two_records_and_one_item() {
    let gen = GenConfig::random(700, 3).generate();
    let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
    for block in &result.blocks {
        assert!(block.records.len() >= 2);
        assert!(!block.items.is_empty());
        assert!(block.minsup >= 2);
        assert!(block.score.is_finite());
        assert!(block.score >= 0.0);
    }
}

#[test]
fn covered_records_statistic_is_consistent() {
    let gen = GenConfig::random(700, 3).generate();
    let result = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
    let covered: HashSet<_> = result
        .candidate_pairs
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect();
    assert_eq!(covered.len(), result.stats.records_covered);
}

#[test]
fn single_record_dataset_produces_nothing() {
    use yv_records::{Dataset, RecordBuilder, Source, SourceId};
    let mut ds = Dataset::new();
    let s = ds.add_source(Source::list(SourceId(0), "l"));
    ds.add_record(RecordBuilder::new(1, s).first_name("Solo").build());
    let result = mfi_blocks(&ds, &MfiBlocksConfig::default());
    assert!(result.blocks.is_empty());
    assert!(result.candidate_pairs.is_empty());
}

#[test]
fn max_minsup_one_is_clamped_to_two() {
    let gen = GenConfig::random(300, 5).generate();
    let config = MfiBlocksConfig { max_minsup: 1, ..MfiBlocksConfig::default() };
    let result = mfi_blocks(&gen.dataset, &config);
    // minsup is clamped to 2, the algorithm still runs one iteration.
    assert_eq!(result.stats.iterations, 1);
    for block in &result.blocks {
        assert_eq!(block.minsup, 2);
    }
}

/// Canonical byte serialization of a blocking outcome: every field that
/// `yv block` derives its cluster output from, floats as IEEE bits.
fn canonical_bytes(result: &yv_blocking::BlockingResult) -> Vec<u8> {
    let mut out = Vec::new();
    for block in &result.blocks {
        out.extend_from_slice(&block.minsup.to_le_bytes());
        out.extend_from_slice(&block.score.to_bits().to_le_bytes());
        for item in &block.items {
            out.extend_from_slice(&item.0.to_le_bytes());
        }
        for record in &block.records {
            out.extend_from_slice(&record.0.to_le_bytes());
        }
        out.push(b'\n');
    }
    for &(a, b) in &result.candidate_pairs {
        out.extend_from_slice(&a.0.to_le_bytes());
        out.extend_from_slice(&b.0.to_le_bytes());
    }
    out
}

#[test]
fn cluster_output_is_byte_identical_across_twenty_runs() {
    // Regression for the hash-order hazards ISSUE 2 flags (memberships
    // iteration in the NG threshold, block emission order): repeated runs
    // over the same dataset must agree byte for byte, including scores.
    let gen = GenConfig::random(500, 11).generate();
    let config = MfiBlocksConfig::default();
    let reference = canonical_bytes(&mfi_blocks(&gen.dataset, &config));
    assert!(!reference.is_empty(), "fixture dataset must produce blocks");
    for run in 1..20 {
        let bytes = canonical_bytes(&mfi_blocks(&gen.dataset, &config));
        assert_eq!(bytes, reference, "run {run} diverged from run 0");
    }
}

#[test]
fn parallel_scoring_is_byte_identical_to_sequential() {
    let gen = GenConfig::random(500, 11).generate();
    let seq = MfiBlocksConfig { threads: 1, ..MfiBlocksConfig::default() };
    let par = MfiBlocksConfig { threads: 4, ..MfiBlocksConfig::default() };
    assert_eq!(
        canonical_bytes(&mfi_blocks(&gen.dataset, &seq)),
        canonical_bytes(&mfi_blocks(&gen.dataset, &par))
    );
}
