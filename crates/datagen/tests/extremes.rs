//! Failure injection: the generator must stay well-formed under extreme
//! configurations (total dropout, total noise, degenerate sizes).

use yv_datagen::{GenConfig, MvConfig, Region};

#[test]
fn full_dropout_yields_empty_but_valid_records() {
    let gen = GenConfig { dropout: 1.0, ..GenConfig::random(300, 1) }.generate();
    assert!(!gen.dataset.is_empty());
    for rid in gen.dataset.record_ids() {
        // Bags may be empty; pattern analysis and blocking must not panic.
        let _ = gen.dataset.bag(rid);
    }
    let stats = yv_records::PatternStats::analyze(&gen.dataset);
    assert!(stats.distinct_patterns() >= 1, "the empty pattern still counts");
}

#[test]
fn full_noise_still_produces_matchable_structure() {
    let gen = GenConfig { name_noise: 1.0, date_noise: 1.0, ..GenConfig::random(300, 2) }
        .generate();
    assert!(gen.gold_pair_count() > 0);
    // Blocking still runs on heavily corrupted data.
    let result =
        yv_blocking::mfi_blocks(&gen.dataset, &yv_blocking::MfiBlocksConfig::default());
    assert!(result.stats.iterations >= 1);
}

#[test]
fn tiny_datasets_are_valid() {
    for n in [1usize, 2, 5, 10] {
        let gen = GenConfig::random(n, 3).generate();
        assert!(!gen.dataset.is_empty());
        assert!(gen.dataset.len() <= n + 8, "overshoot bounded by one person's reports");
        for rid in gen.dataset.record_ids() {
            let _ = gen.person_of(rid);
            let _ = gen.family_of(rid);
        }
    }
}

#[test]
fn mv_larger_than_the_set_is_clamped_sanely() {
    let gen = GenConfig {
        n_records: 100,
        mv: Some(MvConfig { n_reports: 100 }),
        ..GenConfig::italy(4)
    }
    .generate();
    // All requested records are MV records; organic part is empty.
    assert_eq!(gen.mv_records().len(), 100);
}

#[test]
fn single_region_sets_only_use_that_region() {
    let gen = GenConfig {
        regions: vec![Region::Greece],
        ..GenConfig::random(400, 5)
    }
    .generate();
    for p in &gen.persons {
        assert_eq!(p.region, Region::Greece);
    }
}

#[test]
fn zero_records_request() {
    let gen = GenConfig::random(0, 6).generate();
    assert_eq!(gen.dataset.len(), 0);
    assert_eq!(gen.gold_pair_count(), 0);
    assert!(gen.matching_pairs().is_empty());
}
