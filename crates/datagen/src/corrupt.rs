//! Corruption models: the noise separating a report from the ground truth.
//!
//! The Names Project preprocessing already canonicalizes most spelling
//! variants into equivalence classes (Section 2), but residual noise
//! remains: "we encountered some cases of clerical errors (Bella→Della)"
//! (Section 5.1), transliteration variants across the 30+ source languages,
//! nicknames, and date errors typical of testimony filed decades after the
//! fact.

use crate::names::nicknames;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use yv_records::DateParts;

/// Transliteration rules: pairs that swap freely when names cross
/// alphabets (Latin / Hebrew / Cyrillic / Greek).
const TRANSLITERATIONS: &[(&str, &str)] = &[
    ("w", "v"),
    ("y", "i"),
    ("c", "k"),
    ("ks", "x"),
    ("sch", "sh"),
    ("sz", "sh"),
    ("cz", "ch"),
    ("j", "y"),
    ("ph", "f"),
    ("th", "t"),
    ("ie", "i"),
    ("ou", "u"),
];

/// Apply one random transliteration rule, if any applies; otherwise return
/// the input unchanged.
pub fn transliterate(rng: &mut StdRng, name: &str) -> String {
    let lower = name.to_lowercase();
    let mut applicable: Vec<(usize, &str, &str)> = Vec::new();
    for &(a, b) in TRANSLITERATIONS {
        if let Some(pos) = lower.find(a) {
            applicable.push((pos, a, b));
        }
        if let Some(pos) = lower.find(b) {
            applicable.push((pos, b, a));
        }
    }
    let Some(&(pos, from, to)) = applicable.choose(rng) else {
        return name.to_owned();
    };
    let mut out = lower.clone();
    out.replace_range(pos..pos + from.len(), to);
    capitalize(&out)
}

/// One clerical error: substitute, delete or duplicate a single character
/// (Bella→Della style).
pub fn clerical_error(rng: &mut StdRng, name: &str) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 3 {
        return name.to_owned();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => {
            // Substitute with a nearby letter.
            let c = out[pos].to_ascii_lowercase();
            let replacement = match c {
                'b' => 'd',
                'd' => 'b',
                'm' => 'n',
                'n' => 'm',
                'e' => 'a',
                'a' => 'e',
                'o' => 'a',
                'u' => 'o',
                'l' => 'i',
                other => {
                    if other.is_ascii_lowercase() {
                        (((other as u8 - b'a' + 1) % 26) + b'a') as char
                    } else {
                        other
                    }
                }
            };
            out[pos] = if chars[pos].is_uppercase() {
                replacement.to_ascii_uppercase()
            } else {
                replacement
            };
        }
        1 => {
            if out.len() > 3 {
                out.remove(pos);
            }
        }
        _ => {
            out.insert(pos, out[pos]);
        }
    }
    out.into_iter().collect()
}

/// Replace a name with one of its known nicknames / diminutives, when the
/// table has any.
pub fn nickname(rng: &mut StdRng, name: &str) -> String {
    let options = nicknames(name);
    match options.choose(rng) {
        Some(n) => (*n).to_owned(),
        None => name.to_owned(),
    }
}

/// Corrupt a name with the given probability; on corruption one of the
/// three mechanisms fires (transliteration 50%, nickname 30%, clerical
/// 20%).
pub fn corrupt_name(rng: &mut StdRng, name: &str, p: f64) -> String {
    if !rng.gen_bool(p.clamp(0.0, 1.0)) {
        return name.to_owned();
    }
    let roll: f64 = rng.gen();
    if roll < 0.5 {
        transliterate(rng, name)
    } else if roll < 0.8 {
        nickname(rng, name)
    } else {
        clerical_error(rng, name)
    }
}

/// Corrupt a birth date with probability `p`: year off by ±1–3 (ages were
/// often estimated), or day/month swapped when both are valid as either.
pub fn corrupt_date(rng: &mut StdRng, date: DateParts, p: f64) -> DateParts {
    if date.is_empty() || !rng.gen_bool(p.clamp(0.0, 1.0)) {
        return date;
    }
    let mut out = date;
    if rng.gen_bool(0.7) {
        if let Some(y) = out.year {
            let delta = rng.gen_range(1..=3) * if rng.gen_bool(0.5) { 1 } else { -1 };
            out.year = Some(y + delta);
        }
    } else if let (Some(d), Some(m)) = (out.day, out.month) {
        if d <= 12 && m <= 28 {
            out.day = Some(m);
            out.month = Some(d);
        } else if let Some(dd) = out.day {
            out.day = Some(((dd + rng.gen_range(1u8..=3)) % 28).max(1));
        }
    }
    out
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn transliteration_changes_known_patterns() {
        let mut r = rng(1);
        let mut changed = 0;
        for _ in 0..50 {
            if transliterate(&mut r, "Wolf") != "Wolf" {
                changed += 1;
            }
        }
        assert!(changed > 0, "w/v should swap at least sometimes");
    }

    #[test]
    fn transliteration_preserves_unmatchable_names() {
        let mut r = rng(2);
        // No rule applies to "Bb" (wrong case patterns aside).
        assert_eq!(transliterate(&mut r, "Bbb"), "Bbb");
    }

    #[test]
    fn clerical_error_edits_one_position() {
        let mut r = rng(3);
        for _ in 0..50 {
            let out = clerical_error(&mut r, "Bella");
            let dist = yv_similarity::strings::levenshtein("Bella", &out);
            assert!(dist <= 1, "one edit max: Bella -> {out}");
        }
    }

    #[test]
    fn short_names_are_left_alone() {
        let mut r = rng(4);
        assert_eq!(clerical_error(&mut r, "Al"), "Al");
    }

    #[test]
    fn nickname_replaces_from_table() {
        let mut r = rng(5);
        let out = nickname(&mut r, "Avraham");
        assert!(crate::names::nicknames("Avraham").contains(&out.as_str()));
        assert_eq!(nickname(&mut r, "Xyzzy"), "Xyzzy");
    }

    #[test]
    fn zero_probability_is_identity() {
        let mut r = rng(6);
        assert_eq!(corrupt_name(&mut r, "Guido", 0.0), "Guido");
        let d = DateParts::full(18, 11, 1920);
        assert_eq!(corrupt_date(&mut r, d, 0.0), d);
    }

    #[test]
    fn date_corruption_stays_plausible() {
        let mut r = rng(7);
        let d = DateParts::full(18, 11, 1920);
        for _ in 0..100 {
            let out = corrupt_date(&mut r, d, 1.0);
            if let Some(y) = out.year {
                assert!((1917..=1923).contains(&y));
            }
            if let Some(day) = out.day {
                assert!((1..=31).contains(&day));
            }
            if let Some(m) = out.month {
                assert!((1..=12).contains(&m));
            }
        }
    }

    #[test]
    fn empty_date_never_corrupted() {
        let mut r = rng(8);
        let d = DateParts::default();
        assert_eq!(corrupt_date(&mut r, d, 1.0), d);
    }
}
