//! The generator's own equivalence dictionary: the ground-truth variant
//! tables (nicknames, gazetteer transliteration twins) exposed as the
//! [`EquivalenceClasses`] the Names Project experts would have curated.
//!
//! This is what lets experiments ablate the paper's claim that
//! "preprocessing of all misspelling and name synonyms led to a large yet
//! relatively clean database": blocking with the dictionary applied
//! corresponds to the paper's pre-cleaned inputs, without it to raw
//! multi-alphabet chaos.

use crate::names::{self, nicknames};
use crate::places;
use crate::sets::Region;
use yv_records::{Dataset, EquivalenceClasses, RecordId, Source};

/// Build the dictionary covering every nickname in the generator's tables
/// and every gazetteer city that shares coordinates with another spelling
/// (the Torino/Turin twins).
#[must_use]
pub fn equivalence_classes() -> EquivalenceClasses {
    let mut eq = EquivalenceClasses::new();
    for region in Region::ALL {
        for pool in [names::male_first_names(region), names::female_first_names(region)] {
            for name in pool {
                for variant in nicknames(name) {
                    eq.register(name, variant);
                }
            }
        }
        // Gazetteer twins: same coordinates, different spellings.
        let gaz = places::residences(region);
        for (i, a) in gaz.iter().enumerate() {
            for b in &gaz[i + 1..] {
                if (a.lat - b.lat).abs() < 1e-9 && (a.lon - b.lon).abs() < 1e-9 {
                    eq.register(a.city, b.city);
                }
            }
        }
    }
    eq
}

/// Rebuild a dataset with the dictionary applied to every record — the
/// "with preprocessing" arm of the ablation. Sources and record order are
/// preserved, so gold-standard record ids remain valid.
#[must_use]
pub fn canonicalized_dataset(ds: &Dataset, eq: &EquivalenceClasses) -> Dataset {
    let mut out = Dataset::new();
    for source in ds.sources() {
        out.add_source(Source { id: source.id, kind: source.kind.clone() });
    }
    for rid in ds.record_ids() {
        let mut record = ds.record(rid).clone();
        eq.apply(&mut record);
        let new_id = out.add_record(record);
        debug_assert_eq!(new_id, rid);
    }
    out
}

/// Convenience: record ids are stable across canonicalization.
#[must_use]
pub fn ids_preserved(a: &Dataset, b: &Dataset) -> bool {
    a.len() == b.len()
        && a.record_ids().zip(b.record_ids()).all(|(x, y): (RecordId, RecordId)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::GenConfig;

    #[test]
    fn dictionary_covers_nicknames_and_twins() {
        let eq = equivalence_classes();
        assert!(!eq.is_empty());
        assert_eq!(eq.canonicalize("Avrum"), "avraham");
        assert_eq!(eq.canonicalize("Turin"), "torino");
    }

    #[test]
    fn canonicalization_reduces_vocabulary() {
        let gen = GenConfig::random(2_000, 77).generate();
        let eq = equivalence_classes();
        let canon = canonicalized_dataset(&gen.dataset, &eq);
        assert!(ids_preserved(&gen.dataset, &canon));
        assert!(
            canon.interner().len() < gen.dataset.interner().len(),
            "merging variants must shrink the item vocabulary: {} -> {}",
            gen.dataset.interner().len(),
            canon.interner().len()
        );
    }

    #[test]
    fn canonicalization_improves_blocking_recall() {
        let gen = GenConfig::random(1_500, 13).generate();
        let eq = equivalence_classes();
        let canon = canonicalized_dataset(&gen.dataset, &eq);
        let config = yv_blocking::MfiBlocksConfig::default();
        let raw = yv_blocking::mfi_blocks(&gen.dataset, &config);
        let clean = yv_blocking::mfi_blocks(&canon, &config);
        let gold: std::collections::HashSet<_> = gen.matching_pairs().into_iter().collect();
        let recall = |pairs: &[(RecordId, RecordId)]| {
            pairs.iter().filter(|p| gold.contains(*p)).count() as f64 / gold.len() as f64
        };
        let r_raw = recall(&raw.candidate_pairs);
        let r_clean = recall(&clean.candidate_pairs);
        assert!(
            r_clean >= r_raw - 0.02,
            "preprocessing must not lose recall: {r_raw:.3} -> {r_clean:.3}"
        );
    }
}
