//! The simulated expert-tagging oracle.
//!
//! Yad Vashem archival experts tagged candidate pairs on a five-level scale
//! `{Yes, Probably Yes, Maybe, Probably No, No}`; a *Maybe* means "the
//! information contained in the pair is insufficient to decide" (Section
//! 5.1). Of the 10,017 tagged pairs, 611 (~6%) were Maybe.
//!
//! The oracle sees the generator's ground truth and the *information
//! content* of a pair (how many attributes both records populate): rich
//! pairs get confident tags, information-poor pairs drift toward the
//! probabilistic tags and Maybe — reproducing the tag-vs-similarity profile
//! of Figure 8 without ever consulting the matcher under test.

use crate::report::Generated;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yv_records::{AggregateType, RecordId};

/// The five-level expert tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpertTag {
    Yes,
    ProbablyYes,
    Maybe,
    ProbablyNo,
    No,
}

impl ExpertTag {
    /// The simplified binary label of Section 5.1 (Yes ∪ ProbablyYes vs.
    /// No ∪ ProbablyNo); `None` for Maybe.
    #[must_use]
    pub fn simplified(self) -> Option<bool> {
        match self {
            ExpertTag::Yes | ExpertTag::ProbablyYes => Some(true),
            ExpertTag::No | ExpertTag::ProbablyNo => Some(false),
            ExpertTag::Maybe => None,
        }
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExpertTag::Yes => "Yes",
            ExpertTag::ProbablyYes => "Probably Yes",
            ExpertTag::Maybe => "Maybe",
            ExpertTag::ProbablyNo => "Probably No",
            ExpertTag::No => "No",
        }
    }

    pub const ALL: [ExpertTag; 5] = [
        ExpertTag::Yes,
        ExpertTag::ProbablyYes,
        ExpertTag::Maybe,
        ExpertTag::ProbablyNo,
        ExpertTag::No,
    ];
}

/// A tagged candidate pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaggedPair {
    pub a: RecordId,
    pub b: RecordId,
    pub tag: ExpertTag,
}

impl TaggedPair {
    /// Simplified binary label (None for Maybe).
    #[must_use]
    pub fn simplified(&self) -> Option<bool> {
        self.tag.simplified()
    }
}

/// Number of aggregate attributes populated on *both* records — the
/// oracle's information-content measure.
#[must_use]
pub fn shared_information(gen: &Generated, a: RecordId, b: RecordId) -> usize {
    let ra = gen.dataset.record(a);
    let rb = gen.dataset.record(b);
    AggregateType::ALL
        .iter()
        .filter(|&&agg| ra.has_aggregate(agg) && rb.has_aggregate(agg))
        .count()
}

/// Tag candidate pairs with the simulated expert oracle. Deterministic for
/// a given `(gen, pairs, seed)`.
#[must_use]
pub fn tag_pairs(gen: &Generated, pairs: &[(RecordId, RecordId)], seed: u64) -> Vec<TaggedPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    pairs
        .iter()
        .map(|&(a, b)| {
            let truth = gen.is_match(a, b);
            let info = shared_information(gen, a, b);
            let tag = sample_tag(&mut rng, truth, info);
            TaggedPair { a, b, tag }
        })
        .collect()
}

fn sample_tag(rng: &mut StdRng, truth: bool, info: usize) -> ExpertTag {
    use ExpertTag::{Maybe, No, ProbablyNo, ProbablyYes, Yes};
    // (Yes, ProbablyYes, Maybe, ProbablyNo, No) weights per regime.
    let weights: [f64; 5] = match (truth, info) {
        (true, i) if i >= 6 => [0.90, 0.08, 0.02, 0.00, 0.00],
        (true, i) if i >= 4 => [0.55, 0.32, 0.10, 0.03, 0.00],
        (true, _) => [0.05, 0.40, 0.45, 0.08, 0.02],
        (false, i) if i >= 6 => [0.00, 0.01, 0.02, 0.07, 0.90],
        (false, i) if i >= 4 => [0.00, 0.02, 0.08, 0.20, 0.70],
        (false, _) => [0.01, 0.04, 0.25, 0.30, 0.40],
    };
    let total: f64 = weights.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    for (tag, &w) in [Yes, ProbablyYes, Maybe, ProbablyNo, No].iter().zip(&weights) {
        if roll < w {
            return *tag;
        }
        roll -= w;
    }
    No
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::GenConfig;

    fn tagged_fixture() -> (Generated, Vec<TaggedPair>) {
        let gen = GenConfig::random(1_500, 23).generate();
        // Candidate pairs: all gold pairs plus an equal number of random
        // non-matches (a cheap stand-in for blocking output).
        let mut pairs = gen.matching_pairs();
        let n_gold = pairs.len();
        let n = gen.dataset.len() as u32;
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(1);
        use rand::Rng;
        while pairs.len() < n_gold * 2 {
            let a = RecordId(rng.gen_range(0..n));
            let b = RecordId(rng.gen_range(0..n));
            if a < b && !gen.is_match(a, b) {
                pairs.push((a, b));
            }
        }
        let tags = tag_pairs(&gen, &pairs, 99);
        (gen, tags)
    }

    #[test]
    fn simplified_mapping() {
        assert_eq!(ExpertTag::Yes.simplified(), Some(true));
        assert_eq!(ExpertTag::ProbablyYes.simplified(), Some(true));
        assert_eq!(ExpertTag::Maybe.simplified(), None);
        assert_eq!(ExpertTag::ProbablyNo.simplified(), Some(false));
        assert_eq!(ExpertTag::No.simplified(), Some(false));
    }

    #[test]
    fn tags_mostly_agree_with_truth() {
        let (gen, tags) = tagged_fixture();
        let decided: Vec<_> =
            tags.iter().filter_map(|t| t.simplified().map(|s| (t, s))).collect();
        let correct = decided
            .iter()
            .filter(|(t, s)| gen.is_match(t.a, t.b) == *s)
            .count();
        let acc = correct as f64 / decided.len() as f64;
        assert!(acc > 0.85, "oracle accuracy {acc}");
    }

    #[test]
    fn maybe_fraction_is_small_but_present() {
        let (_, tags) = tagged_fixture();
        let maybes = tags.iter().filter(|t| t.tag == ExpertTag::Maybe).count();
        let frac = maybes as f64 / tags.len() as f64;
        assert!((0.02..0.25).contains(&frac), "Maybe fraction {frac}");
    }

    #[test]
    fn maybes_concentrate_on_information_poor_pairs() {
        let (gen, tags) = tagged_fixture();
        let avg_info = |pred: &dyn Fn(&TaggedPair) -> bool| {
            let xs: Vec<usize> = tags
                .iter()
                .filter(|t| pred(t))
                .map(|t| shared_information(&gen, t.a, t.b))
                .collect();
            xs.iter().sum::<usize>() as f64 / xs.len().max(1) as f64
        };
        let maybe_info = avg_info(&|t| t.tag == ExpertTag::Maybe);
        let yes_info = avg_info(&|t| t.tag == ExpertTag::Yes);
        assert!(
            maybe_info < yes_info,
            "Maybe pairs should be information-poorer: {maybe_info} vs {yes_info}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let gen = GenConfig::random(500, 7).generate();
        let pairs = gen.matching_pairs();
        let t1 = tag_pairs(&gen, &pairs, 42);
        let t2 = tag_pairs(&gen, &pairs, 42);
        assert_eq!(t1, t2);
    }

    #[test]
    fn shared_information_counts_mutual_attributes() {
        let (gen, _) = tagged_fixture();
        for (a, b) in gen.matching_pairs().into_iter().take(20) {
            let info = shared_information(&gen, a, b);
            assert!(info <= AggregateType::ALL.len());
        }
    }
}
