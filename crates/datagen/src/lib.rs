//! # yv-datagen
//!
//! A seeded synthetic generator for Yad Vashem Names-Project-like datasets.
//!
//! The real database (6.5M victim reports, >500,000 sources) is not
//! publicly available; this generator is the substitution documented in
//! DESIGN.md. It produces ground-truth *persons* organized in families
//! within six pre-war Jewish communities (the stratification of Section
//! 5.1), then emits 1-8 *reports* per person (archival experts estimate at
//! most eight duplicates), each filed by a *source* -- a testimony submitter
//! (usually a relative) or a victim list -- with:
//!
//! * **per-source schemas**: a source records a fixed subset of attributes,
//!   which is what creates the clustered data patterns of Figure 11;
//! * **field prevalence calibrated to Table 3** (e.g. last name 98%,
//!   DOB 64%, father's name 52% on the full set; 78% father's-name on the
//!   Italian subset);
//! * **corruption**: transliteration variants, clerical misspellings,
//!   nicknames, date errors and place-part truncation;
//! * the **"MV" phenomenon** for the Italy set: one submitter contributing
//!   1,400 reports with the fixed pattern
//!   `{First, Last, Father, BirthPlace, DeathPlace}` (Section 6.4);
//! * a **simulated expert tagging oracle** producing the five-level
//!   Yes/ProbablyYes/Maybe/ProbablyNo/No scale with Maybe concentrated on
//!   information-poor pairs (~6% of tags, Section 6.4).
//!
//! Everything is driven by a caller-supplied seed: the same seed yields the
//! same dataset, gold standard and tags.

pub mod corrupt;
pub mod equivalence;
pub mod names;
pub mod person;
pub mod places;
pub mod report;
pub mod sets;
pub mod tagging;

pub use equivalence::{canonicalized_dataset, equivalence_classes};
pub use person::{FamilyId, Person, PersonId};
pub use report::{Generated, MvConfig};
pub use sets::{full_set, italy_set, random_set, GenConfig, Region};
pub use tagging::{tag_pairs, ExpertTag, TaggedPair};
