//! Ground-truth persons and families.
//!
//! Persons are generated in family units (two parents and 0–5 children)
//! sharing a surname and places — the structure behind the paper's
//! family-granularity discussion (the Capelluto children of Figure 13 are
//! false positives for *person* resolution but true positives for *family*
//! resolution).

use crate::names;
use crate::places::{self, GazetteerEntry};
use crate::sets::Region;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use yv_records::{DateParts, Gender};

/// Ground-truth identifier of a person.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PersonId(pub u64);

/// Ground-truth identifier of a family unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamilyId(pub u64);

/// A ground-truth person: the "real" individual that victim reports
/// describe, with complete attributes (reports will observe noisy,
/// incomplete projections of this).
#[derive(Debug, Clone)]
pub struct Person {
    pub id: PersonId,
    pub family: FamilyId,
    pub region: Region,
    pub gender: Gender,
    pub first_name: String,
    pub last_name: String,
    /// For married women: the family name before marriage.
    pub maiden_name: Option<String>,
    pub father_name: Option<String>,
    pub mother_name: Option<String>,
    pub mothers_maiden: Option<String>,
    pub spouse_name: Option<String>,
    pub birth: DateParts,
    pub profession: Option<String>,
    pub birth_place: GazetteerEntry,
    pub permanent_place: GazetteerEntry,
    pub wartime_place: GazetteerEntry,
    pub death_place: GazetteerEntry,
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("pool is non-empty")
}

/// Generate `n_families` family units in a region, returning the persons
/// flattened. `next_ids` supplies globally unique person/family counters.
pub fn generate_families(
    rng: &mut StdRng,
    region: Region,
    n_families: usize,
    next_person: &mut u64,
    next_family: &mut u64,
) -> Vec<Person> {
    let mut persons = Vec::new();
    for _ in 0..n_families {
        let family = FamilyId(*next_family);
        *next_family += 1;
        let residences = places::residences(region);
        let home = *residences.choose(rng).expect("gazetteer non-empty");
        let wartime = if rng.gen_bool(0.7) {
            home
        } else {
            *residences.choose(rng).expect("gazetteer non-empty")
        };
        let death = *places::DEATH_PLACES.choose(rng).expect("death places non-empty");
        let surname = pick(rng, names::last_names(region)).to_owned();
        let father_first = pick(rng, names::male_first_names(region)).to_owned();
        let mother_first = pick(rng, names::female_first_names(region)).to_owned();
        let mother_maiden = pick(rng, names::last_names(region)).to_owned();
        let grandfather = pick(rng, names::male_first_names(region)).to_owned();
        let grandmother = pick(rng, names::female_first_names(region)).to_owned();

        // Father.
        let father_birth_year = rng.gen_range(1880..1915);
        persons.push(Person {
            id: PersonId(alloc(next_person)),
            family,
            region,
            gender: Gender::Male,
            first_name: father_first.clone(),
            last_name: surname.clone(),
            maiden_name: None,
            father_name: Some(grandfather.clone()),
            mother_name: Some(grandmother.clone()),
            mothers_maiden: rng.gen_bool(0.6).then(|| pick(rng, names::last_names(region)).to_owned()),
            spouse_name: Some(mother_first.clone()),
            birth: random_birth(rng, father_birth_year),
            profession: Some(pick(rng, names::PROFESSIONS).to_owned()),
            birth_place: *residences.choose(rng).expect("gazetteer"),
            permanent_place: home,
            wartime_place: wartime,
            death_place: death,
        });

        // Mother (takes the family surname; keeps a maiden name).
        persons.push(Person {
            id: PersonId(alloc(next_person)),
            family,
            region,
            gender: Gender::Female,
            first_name: mother_first.clone(),
            last_name: surname.clone(),
            maiden_name: Some(mother_maiden.clone()),
            father_name: Some(pick(rng, names::male_first_names(region)).to_owned()),
            mother_name: Some(pick(rng, names::female_first_names(region)).to_owned()),
            mothers_maiden: rng.gen_bool(0.6).then(|| pick(rng, names::last_names(region)).to_owned()),
            spouse_name: Some(father_first.clone()),
            birth: {
                let offset = rng.gen_range(0..8);
                random_birth(rng, father_birth_year + offset)
            },
            profession: rng.gen_bool(0.5).then(|| pick(rng, names::PROFESSIONS).to_owned()),
            birth_place: *residences.choose(rng).expect("gazetteer"),
            permanent_place: home,
            wartime_place: wartime,
            death_place: death,
        });

        // Children: share surname, father/mother names and places.
        let n_children = rng.gen_range(0..=5);
        for _ in 0..n_children {
            let gender = if rng.gen_bool(0.5) { Gender::Male } else { Gender::Female };
            let first = match gender {
                Gender::Male => pick(rng, names::male_first_names(region)),
                Gender::Female => pick(rng, names::female_first_names(region)),
            }
            .to_owned();
            let child_birth_year = father_birth_year + rng.gen_range(20..40);
            persons.push(Person {
                id: PersonId(alloc(next_person)),
                family,
                region,
                gender,
                first_name: first,
                last_name: surname.clone(),
                maiden_name: None,
                father_name: Some(father_first.clone()),
                mother_name: Some(mother_first.clone()),
                mothers_maiden: Some(mother_maiden.clone()),
                spouse_name: None,
                birth: random_birth(rng, child_birth_year),
                profession: if child_birth_year < 1925 && rng.gen_bool(0.5) {
                    Some(pick(rng, names::PROFESSIONS).to_owned())
                } else {
                    None
                },
                birth_place: home,
                permanent_place: home,
                wartime_place: wartime,
                death_place: death,
            });
        }
    }
    persons
}

fn alloc(counter: &mut u64) -> u64 {
    let v = *counter;
    *counter += 1;
    v
}

fn random_birth(rng: &mut StdRng, year: i32) -> DateParts {
    DateParts::full(rng.gen_range(1..=28), rng.gen_range(1..=12), year)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(seed: u64, families: usize) -> Vec<Person> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut p, mut f) = (0, 0);
        generate_families(&mut rng, Region::Italy, families, &mut p, &mut f)
    }

    #[test]
    fn families_share_surname_and_places() {
        let persons = gen(42, 10);
        let mut by_family: std::collections::HashMap<FamilyId, Vec<&Person>> = Default::default();
        for p in &persons {
            by_family.entry(p.family).or_default().push(p);
        }
        assert_eq!(by_family.len(), 10);
        for members in by_family.values() {
            assert!(members.len() >= 2, "at least both parents");
            let surname = &members[0].last_name;
            assert!(members.iter().all(|m| &m.last_name == surname));
            let home = members[0].permanent_place.city;
            assert!(members.iter().all(|m| m.permanent_place.city == home));
        }
    }

    #[test]
    fn children_reference_their_parents() {
        let persons = gen(7, 20);
        let parents: Vec<&Person> = persons.iter().filter(|p| p.spouse_name.is_some()).collect();
        let children: Vec<&Person> = persons.iter().filter(|p| p.spouse_name.is_none()).collect();
        for child in children {
            let father = parents
                .iter()
                .find(|p| p.family == child.family && p.gender == Gender::Male)
                .expect("father exists");
            assert_eq!(child.father_name.as_deref(), Some(father.first_name.as_str()));
            // Children are born after their father.
            assert!(child.birth.year.unwrap() > father.birth.year.unwrap());
        }
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let persons = gen(3, 15);
        let mut ids: Vec<u64> = persons.iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), persons.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = gen(99, 5);
        let b = gen(99, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.first_name, y.first_name);
            assert_eq!(x.birth, y.birth);
        }
    }

    #[test]
    fn mothers_carry_maiden_names() {
        let persons = gen(11, 30);
        let mothers =
            persons.iter().filter(|p| p.gender == Gender::Female && p.spouse_name.is_some());
        for m in mothers {
            assert!(m.maiden_name.is_some());
        }
    }
}
