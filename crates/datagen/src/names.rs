//! Region-specific name pools.
//!
//! Six pre-war Jewish communities differing culturally and linguistically
//! (Section 5.1: "Six geographical regions were selected from the dataset,
//! each representing a different pre-Holocaust Jewish community").
//! Each region carries male and female given-name pools, surname pools and
//! a nickname table; transliteration noise is applied separately by
//! [`crate::corrupt`].

use crate::sets::Region;

/// Male given names per region.
#[must_use]
pub fn male_first_names(region: Region) -> &'static [&'static str] {
    match region {
        Region::Italy => &[
            "Guido", "Massimo", "Donato", "Italo", "Alberto", "Aldo", "Angelo", "Arturo",
            "Attilio", "Bruno", "Carlo", "Cesare", "Dario", "Davide", "Emanuele", "Enrico",
            "Ettore", "Federico", "Franco", "Giacomo", "Gino", "Giorgio", "Giuseppe", "Leone",
            "Lelio", "Luciano", "Marco", "Mario", "Maurizio", "Michele", "Raffaele", "Renato",
            "Renzo", "Roberto", "Salvatore", "Samuele", "Sergio", "Silvio", "Ugo", "Vittorio",
        ],
        Region::Poland => &[
            "Avraham", "Yitzhak", "Moshe", "Yaakov", "Shlomo", "David", "Chaim", "Mordechai",
            "Shmuel", "Yosef", "Hersh", "Leib", "Mendel", "Pinchas", "Zelig", "Berel", "Fishel",
            "Getzel", "Kalman", "Lazar", "Meir", "Naftali", "Nachman", "Peretz", "Rafael",
            "Shimon", "Simcha", "Tevye", "Velvel", "Wolf", "Yehuda", "Yechiel", "Zalman",
            "Zev", "Aron", "Baruch", "Eliezer", "Gershon", "Hillel", "Isser",
        ],
        Region::Hungary => &[
            "Laszlo", "Istvan", "Ferenc", "Gyorgy", "Jozsef", "Sandor", "Bela", "Imre",
            "Janos", "Karoly", "Lajos", "Miklos", "Pal", "Tibor", "Zoltan", "Andor", "Arpad",
            "Dezso", "Erno", "Geza", "Gyula", "Jeno", "Kalman", "Marton", "Odon", "Rezso",
            "Samu", "Vilmos", "Zsigmond", "Adolf", "Armin", "Dávid", "Herman", "Ignac",
            "Izidor", "Lipot", "Mor", "Salamon", "Simon", "Tivadar",
        ],
        Region::Germany => &[
            "Siegfried", "Heinrich", "Hermann", "Julius", "Kurt", "Ludwig", "Max", "Otto",
            "Paul", "Richard", "Rudolf", "Walter", "Werner", "Wilhelm", "Alfred", "Arthur",
            "Bernhard", "Bruno", "Erich", "Ernst", "Felix", "Fritz", "Georg", "Gustav",
            "Hans", "Hugo", "Isidor", "Jakob", "Josef", "Karl", "Leo", "Leopold", "Manfred",
            "Moritz", "Norbert", "Oskar", "Salomon", "Siegmund", "Theodor", "Victor",
        ],
        Region::Greece => &[
            "Alberto", "Daniel", "Elia", "Isaac", "Jacob", "Joseph", "Leon", "Maurice",
            "Menachem", "Moise", "Nissim", "Pepo", "Raphael", "Salomon", "Samuel", "Solomon",
            "Victor", "Vital", "Abram", "Asher", "Baruch", "Bension", "Bohor", "David",
            "Eliau", "Gabriel", "Haim", "Isaco", "Israel", "Judah", "Mair", "Mordohai",
            "Moshon", "Rahamim", "Sabetay", "Santo", "Shemtov", "Simantov", "Yakov", "Yuda",
        ],
        Region::Ussr => &[
            "Boris", "Grigori", "Iosif", "Lev", "Mikhail", "Naum", "Semyon", "Yakov",
            "Aleksandr", "Anatoli", "Arkadi", "David", "Efim", "Emmanuil", "Evsei", "Fyodor",
            "Gennadi", "Ilya", "Isaak", "Izrail", "Lazar", "Leonid", "Mark", "Matvei",
            "Moisei", "Pavel", "Pyotr", "Roman", "Ruvim", "Samuil", "Solomon", "Vladimir",
            "Veniamin", "Viktor", "Vulf", "Yefim", "Yegor", "Yuri", "Zakhar", "Zinovi",
        ],
    }
}

/// Female given names per region.
#[must_use]
pub fn female_first_names(region: Region) -> &'static [&'static str] {
    match region {
        Region::Italy => &[
            "Estela", "Olga", "Helena", "Clotilde", "Ada", "Alba", "Alessandra", "Amelia",
            "Anna", "Bianca", "Bice", "Camilla", "Carla", "Celeste", "Clara", "Corinna",
            "Diana", "Elena", "Elisa", "Elsa", "Emma", "Enrichetta", "Ester", "Eugenia",
            "Fanny", "Fortunata", "Gemma", "Gina", "Giulia", "Ida", "Irene", "Lea", "Lidia",
            "Luisa", "Margherita", "Maria", "Marcella", "Rina", "Silvia", "Zimbul",
        ],
        Region::Poland => &[
            "Sara", "Rivka", "Leah", "Rachel", "Chana", "Devorah", "Esther", "Feiga",
            "Gittel", "Golda", "Hinda", "Ita", "Mindel", "Miriam", "Necha", "Pesia",
            "Perla", "Reizel", "Rochel", "Ruchla", "Shifra", "Sheindel", "Sosia", "Tauba",
            "Tema", "Tzipora", "Yenta", "Yocheved", "Zelda", "Zlata", "Bluma", "Brandel",
            "Chaya", "Dina", "Dvora", "Frieda", "Fruma", "Hadassa", "Henia", "Malka",
        ],
        Region::Hungary => &[
            "Erzsebet", "Ilona", "Margit", "Maria", "Roza", "Sarolta", "Terez", "Zsuzsanna",
            "Aranka", "Berta", "Edit", "Elza", "Etelka", "Eva", "Flora", "Gizella",
            "Hermina", "Iren", "Janka", "Jolan", "Judit", "Julianna", "Katalin", "Klara",
            "Lenke", "Lili", "Magda", "Malvin", "Olga", "Piroska", "Regina", "Rozalia",
            "Serena", "Szidonia", "Valeria", "Vilma", "Reka", "Iboly", "Agnes", "Anna",
        ],
        Region::Germany => &[
            "Bertha", "Charlotte", "Clara", "Edith", "Else", "Emma", "Erna", "Frieda",
            "Gertrud", "Grete", "Hedwig", "Helene", "Henriette", "Herta", "Hilde", "Ida",
            "Ilse", "Irma", "Johanna", "Kaethe", "Lina", "Lotte", "Margarete", "Martha",
            "Meta", "Paula", "Recha", "Regina", "Rosa", "Rosalie", "Ruth", "Selma",
            "Sophie", "Thekla", "Toni", "Wilhelmine", "Bella", "Della", "Mina", "Jenny",
        ],
        Region::Greece => &[
            "Allegra", "Bella", "Bienvenida", "Boulissa", "Diamante", "Dona", "Esterina",
            "Fortunee", "Gracia", "Kadena", "Luna", "Malka", "Mazaltov", "Miriam", "Oro",
            "Palomba", "Perla", "Rachel", "Rebecca", "Regina", "Reina", "Rosa", "Sara",
            "Signora", "Sol", "Stella", "Sultana", "Venezia", "Victoria", "Vida", "Zimbul",
            "Clara", "Djoya", "Elsa", "Giulia", "Hana", "Lea", "Matilde", "Rena", "Rika",
        ],
        Region::Ussr => &[
            "Anna", "Basya", "Berta", "Bronya", "Dora", "Elizaveta", "Esfir", "Eva",
            "Fanya", "Feiga", "Genya", "Gita", "Golda", "Ida", "Klara", "Lyubov", "Manya",
            "Maria", "Mariya", "Mina", "Nadezhda", "Nina", "Olga", "Polina", "Raisa",
            "Rakhil", "Revekka", "Rimma", "Roza", "Slava", "Sofiya", "Sonya", "Tamara",
            "Tsilya", "Vera", "Yelena", "Yevgeniya", "Zhenya", "Zinaida", "Zoya",
        ],
    }
}

/// Surnames per region.
#[must_use]
pub fn last_names(region: Region) -> &'static [&'static str] {
    match region {
        Region::Italy => &[
            "Foa", "Levi", "Segre", "Ottolenghi", "Momigliano", "Treves", "Artom", "Bachi",
            "Bassani", "Calabi", "Calo", "Cantoni", "Capelluto", "Castelnuovo", "Colombo",
            "Coen", "DeBenedetti", "Della Torre", "Diena", "Disegni", "Finzi", "Fiorentino",
            "Foligno", "Fubini", "Funaro", "Gallico", "Genazzani", "Jona", "Lattes", "Luzzati",
            "Malvano", "Milano", "Modigliani", "Montalcini", "Morpurgo", "Muggia", "Norzi",
            "Olivetti", "Orvieto", "Ovazza", "Pavia", "Pugliese", "Ravenna", "Recanati",
            "Sacerdote", "Segni", "Sinigaglia", "Soave", "Sonnino", "Terracini", "Vitale",
            "Viterbo", "Zargani", "Anau", "Ancona", "Ascoli", "Bemporad", "Camerini",
            "Castelfranco", "Errera",
        ],
        Region::Poland => &[
            "Kesler", "Apoteker", "Postel", "Grinberg", "Goldberg", "Rozenberg", "Zilberman",
            "Vaisman", "Fridman", "Kaplan", "Lewin", "Blum", "Cukier", "Diament", "Edelman",
            "Fajgenbaum", "Gelbart", "Gersztajn", "Gitler", "Gurfinkiel", "Herszkowicz",
            "Jakubowicz", "Kirszenbaum", "Kleinman", "Korn", "Kranc", "Lederman", "Lichtenstein",
            "Mandelbaum", "Milgrom", "Najman", "Nusbaum", "Orenstein", "Perelman", "Rajch",
            "Rotenberg", "Rubinstein", "Szapiro", "Szwarc", "Tenenbaum", "Unger", "Wajnberg",
            "Waksman", "Warszawski", "Wasserman", "Zajdman", "Zylbersztajn", "Borenstein",
            "Brzezinski", "Ciechanowski", "Domb", "Erlich", "Feldman", "Frenkiel", "Glik",
            "Halpern", "Igla", "Jablonski", "Kac", "Landau",
        ],
        Region::Hungary => &[
            "Kovacs", "Szabo", "Nagy", "Weisz", "Klein", "Grosz", "Schwartz", "Braun",
            "Deutsch", "Fischer", "Friedman", "Gruenwald", "Katz", "Kertesz", "Kohn",
            "Lazar", "Lengyel", "Lichtman", "Lowinger", "Lukacs", "Mandel", "Molnar",
            "Pollak", "Reich", "Rosenfeld", "Roth", "Rozsa", "Salamon", "Schlesinger",
            "Schoen", "Spitzer", "Stein", "Steiner", "Stern", "Szanto", "Szekely", "Ungar",
            "Vamos", "Varga", "Weinberger", "Winkler", "Balazs", "Berkovits", "Biro",
            "Boros", "Csillag", "Engel", "Farkas", "Fekete", "Feldmann", "Fenyo", "Frankel",
            "Gara", "Gero", "Halasz", "Hegedus", "Herczeg", "Horvath", "Izsak", "Kadar",
        ],
        Region::Germany => &[
            "Rosenthal", "Goldschmidt", "Lilienthal", "Blumenfeld", "Rosenbaum", "Loewenstein",
            "Oppenheimer", "Wertheim", "Bamberger", "Baruch", "Behrend", "Bielefeld",
            "Birnbaum", "Blumenthal", "Cohn", "Dessauer", "Dreyfuss", "Ehrlich", "Einstein",
            "Falkenstein", "Feuchtwanger", "Frank", "Fraenkel", "Friedlaender", "Goldmann",
            "Grunewald", "Guggenheim", "Gutmann", "Hamburger", "Heilbronn", "Herzfeld",
            "Hirsch", "Hirschfeld", "Kahn", "Kaufmann", "Landauer", "Lehmann", "Levinsohn",
            "Liebermann", "Loewe", "Marcus", "Mayer", "Mendelssohn", "Meyerhof", "Neumann",
            "Nussbaum", "Rosenberg", "Rothschild", "Salomon", "Schiff", "Seligmann",
            "Simon", "Strauss", "Tietz", "Ullmann", "Wallach", "Wassermann", "Weil",
            "Wolff", "Wurzburger",
        ],
        Region::Greece => &[
            "Capelluto", "Alhadeff", "Amato", "Angel", "Benveniste", "Berro", "Capuano",
            "Cohen", "Codron", "Franco", "Gabriel", "Galante", "Hanan", "Hasson", "Israel",
            "Levy", "Menasce", "Modiano", "Notrica", "Pelossof", "Pizanti", "Rahamim",
            "Russo", "Sidis", "Soriano", "Soulam", "Surmani", "Tarica", "Turiel", "Varon",
            "Almeleh", "Amarillo", "Arouete", "Attas", "Beraha", "Botton", "Camhi",
            "Carasso", "Errera", "Eskenazi", "Fais", "Florentin", "Gattegno", "Hazan",
            "Kamhi", "Mallah", "Matalon", "Mordoh", "Nahmias", "Nefussy", "Perahia",
            "Pinhas", "Saltiel", "Saporta", "Sarfati", "Sciaky", "Strumza", "Venezia",
            "Yahiel", "Zacharia",
        ],
        Region::Ussr => &[
            "Abramovich", "Averbukh", "Belenki", "Berman", "Bernshtein", "Brodski",
            "Vinokur", "Vitkin", "Volfson", "Gendelman", "Gershman", "Ginzburg", "Gluskin",
            "Goldshtein", "Gorelik", "Grinshpun", "Gurevich", "Dvorkin", "Epshtein",
            "Zhitomirski", "Zaslavski", "Izrailev", "Ioffe", "Kagan", "Kantor", "Katsnelson",
            "Kisin", "Kogan", "Kreindel", "Kuperman", "Lapidus", "Lerner", "Liberman",
            "Lifshits", "Lurie", "Mazur", "Margolin", "Mirkin", "Nemirovski", "Ostrovski",
            "Perlov", "Pinski", "Plotkin", "Polyak", "Portnoi", "Rabinovich", "Reznik",
            "Rivkin", "Roitman", "Rubin", "Sverdlov", "Shapiro", "Shifrin", "Shub",
            "Slutski", "Smolyar", "Tsukerman", "Shneider", "Feldman", "Khait",
        ],
    }
}

/// Professions (coded in the real database; we use labels as codes).
pub const PROFESSIONS: &[&str] = &[
    "merchant", "tailor", "shoemaker", "teacher", "physician", "lawyer", "carpenter",
    "baker", "butcher", "watchmaker", "bookkeeper", "pharmacist", "engineer", "rabbi",
    "seamstress", "housewife", "student", "farmer", "glazier", "printer", "furrier",
    "locksmith", "musician", "nurse", "barber", "tinsmith", "weaver", "clerk", "peddler",
    "photographer",
];

/// Nickname / diminutive table: canonical name → common variants recorded
/// instead of the canonical form.
#[must_use]
pub fn nicknames(name: &str) -> &'static [&'static str] {
    match name {
        "Avraham" => &["Avram", "Abram", "Abraham", "Avrum"],
        "Yitzhak" => &["Itzhak", "Izak", "Icchok", "Isaac"],
        "Moshe" => &["Moishe", "Mojsze", "Moses", "Moisei"],
        "Yaakov" => &["Yankel", "Jakob", "Jacob", "Yakov"],
        "David" => &["Dudl", "Dawid", "Davide"],
        "Shmuel" => &["Samuel", "Szmul", "Samuele"],
        "Yosef" => &["Josef", "Jozef", "Joseph", "Giuseppe"],
        "Esther" => &["Estera", "Ester", "Esterka"],
        "Sara" => &["Sarah", "Sura", "Sala"],
        "Rivka" => &["Rebecca", "Rywka", "Riva"],
        "Chana" => &["Hanna", "Anna", "Khana"],
        "Miriam" => &["Maria", "Mirla", "Mira"],
        "Giuseppe" => &["Beppe", "Yosef"],
        "Vittorio" => &["Vito"],
        "Alberto" => &["Berto"],
        "Isaak" => &["Isak", "Itzik"],
        "Salomon" => &["Shlomo", "Salamon", "Solomon"],
        "Wilhelm" => &["Willi", "Wolf"],
        "Elizaveta" => &["Liza", "Lisa"],
        "Aleksandr" => &["Sasha", "Shura"],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_region_has_substantial_pools() {
        for region in Region::ALL {
            assert!(male_first_names(region).len() >= 40, "{region:?} male pool");
            assert!(female_first_names(region).len() >= 40, "{region:?} female pool");
            assert!(last_names(region).len() >= 59, "{region:?} surname pool");
        }
    }

    #[test]
    fn pools_have_no_duplicates() {
        for region in Region::ALL {
            for pool in [male_first_names(region), female_first_names(region), last_names(region)]
            {
                let mut seen = std::collections::HashSet::new();
                for name in pool {
                    assert!(seen.insert(*name), "duplicate {name} in {region:?}");
                }
            }
        }
    }

    #[test]
    fn nicknames_do_not_contain_the_canonical_name() {
        for name in ["Avraham", "Yitzhak", "Moshe", "Sara"] {
            assert!(!nicknames(name).contains(&name));
            assert!(!nicknames(name).is_empty());
        }
        assert!(nicknames("Nobody").is_empty());
    }

    #[test]
    fn regions_have_distinct_flavors() {
        // Italian and Polish surname pools should barely overlap.
        let italy: std::collections::HashSet<_> = last_names(Region::Italy).iter().collect();
        let poland: std::collections::HashSet<_> = last_names(Region::Poland).iter().collect();
        assert!(italy.intersection(&poland).count() <= 2);
    }
}
