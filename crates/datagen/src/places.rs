//! Region-specific place gazetteers with coordinates.
//!
//! Each gazetteer entry carries the four place parts of the Names Project
//! schema (city / county / region / country) plus GPS coordinates (the ERD
//! of Figure 3 stores coordinates per place).

use crate::sets::Region;
use yv_records::{GeoPoint, Place};

/// A gazetteer entry.
#[derive(Debug, Clone, Copy)]
pub struct GazetteerEntry {
    pub city: &'static str,
    pub county: &'static str,
    pub region: &'static str,
    pub country: &'static str,
    pub lat: f64,
    pub lon: f64,
}

impl GazetteerEntry {
    /// Materialize as a fully-specified [`Place`].
    #[must_use]
    pub fn place(&self) -> Place {
        Place::full(
            self.city,
            self.county,
            self.region,
            self.country,
            GeoPoint::new(self.lat, self.lon),
        )
    }
}

macro_rules! gaz {
    ($( ($city:literal, $county:literal, $region:literal, $country:literal, $lat:literal, $lon:literal) ),+ $(,)?) => {
        &[ $( GazetteerEntry { city: $city, county: $county, region: $region, country: $country, lat: $lat, lon: $lon } ),+ ]
    };
}

/// Residence places of a region's community.
#[must_use]
pub fn residences(region: Region) -> &'static [GazetteerEntry] {
    match region {
        Region::Italy => gaz![
            ("Torino", "Torino", "Piemonte", "Italy", 45.0703, 7.6869),
            ("Turin", "Torino", "Piemonte", "Italy", 45.0703, 7.6869),
            ("Moncalieri", "Torino", "Piemonte", "Italy", 44.9996, 7.6828),
            ("Cuorgne", "Torino", "Piemonte", "Italy", 45.3906, 7.6497),
            ("Canischio", "Torino", "Piemonte", "Italy", 45.3753, 7.5964),
            ("Milano", "Milano", "Lombardia", "Italy", 45.4642, 9.1900),
            ("Venezia", "Venezia", "Veneto", "Italy", 45.4408, 12.3155),
            ("Genova", "Genova", "Liguria", "Italy", 44.4056, 8.9463),
            ("Firenze", "Firenze", "Toscana", "Italy", 43.7696, 11.2558),
            ("Livorno", "Livorno", "Toscana", "Italy", 43.5485, 10.3106),
            ("Roma", "Roma", "Lazio", "Italy", 41.9028, 12.4964),
            ("Trieste", "Trieste", "Friuli", "Italy", 45.6495, 13.7768),
            ("Ferrara", "Ferrara", "Emilia", "Italy", 44.8381, 11.6198),
            ("Modena", "Modena", "Emilia", "Italy", 44.6471, 10.9252),
            ("Ancona", "Ancona", "Marche", "Italy", 43.6158, 13.5189),
            ("Pisa", "Pisa", "Toscana", "Italy", 43.7228, 10.4017),
            ("Casale Monferrato", "Alessandria", "Piemonte", "Italy", 45.1333, 8.4500),
            ("Alessandria", "Alessandria", "Piemonte", "Italy", 44.9133, 8.6150),
            ("Mantova", "Mantova", "Lombardia", "Italy", 45.1564, 10.7914),
            ("Padova", "Padova", "Veneto", "Italy", 45.4064, 11.8768),
        ],
        Region::Poland => gaz![
            ("Warszawa", "Warszawa", "Mazowieckie", "Poland", 52.2297, 21.0122),
            ("Lodz", "Lodz", "Lodzkie", "Poland", 51.7592, 19.4560),
            ("Krakow", "Krakow", "Malopolskie", "Poland", 50.0647, 19.9450),
            ("Lublin", "Lublin", "Lubelskie", "Poland", 51.2465, 22.5684),
            ("Bialystok", "Bialystok", "Podlaskie", "Poland", 53.1325, 23.1688),
            ("Lwow", "Lwow", "Lwowskie", "Poland", 49.8397, 24.0297),
            ("Wilno", "Wilno", "Wilenskie", "Poland", 54.6872, 25.2797),
            ("Lubaczow", "Lubaczow", "Lwowskie", "Poland", 50.1561, 23.1233),
            ("Antopol", "Kobryn", "Polesie", "Poland", 52.2028, 24.7839),
            ("Kobryn", "Kobryn", "Polesie", "Poland", 52.2139, 24.3564),
            ("Pinsk", "Pinsk", "Polesie", "Poland", 52.1229, 26.0951),
            ("Radom", "Radom", "Kieleckie", "Poland", 51.4025, 21.1471),
            ("Kielce", "Kielce", "Kieleckie", "Poland", 50.8661, 20.6286),
            ("Czestochowa", "Czestochowa", "Kieleckie", "Poland", 50.8118, 19.1203),
            ("Piotrkow", "Piotrkow", "Lodzkie", "Poland", 51.4047, 19.7032),
            ("Tarnow", "Tarnow", "Krakowskie", "Poland", 50.0121, 20.9858),
            ("Przemysl", "Przemysl", "Lwowskie", "Poland", 49.7838, 22.7677),
            ("Bedzin", "Bedzin", "Kieleckie", "Poland", 50.3249, 19.1266),
            ("Sosnowiec", "Sosnowiec", "Kieleckie", "Poland", 50.2863, 19.1042),
            ("Grodno", "Grodno", "Bialostockie", "Poland", 53.6694, 23.8131),
        ],
        Region::Hungary => gaz![
            ("Budapest", "Pest", "Pest", "Hungary", 47.4979, 19.0402),
            ("Debrecen", "Hajdu", "Hajdu", "Hungary", 47.5316, 21.6273),
            ("Szeged", "Csongrad", "Csongrad", "Hungary", 46.2530, 20.1414),
            ("Miskolc", "Borsod", "Borsod", "Hungary", 48.1035, 20.7784),
            ("Pecs", "Baranya", "Baranya", "Hungary", 46.0727, 18.2323),
            ("Gyor", "Gyor", "Gyor", "Hungary", 47.6875, 17.6504),
            ("Nyiregyhaza", "Szabolcs", "Szabolcs", "Hungary", 47.9554, 21.7167),
            ("Kecskemet", "Pest", "Pest", "Hungary", 46.8964, 19.6897),
            ("Szekesfehervar", "Fejer", "Fejer", "Hungary", 47.1860, 18.4221),
            ("Szombathely", "Vas", "Vas", "Hungary", 47.2307, 16.6218),
            ("Sopron", "Sopron", "Sopron", "Hungary", 47.6817, 16.5845),
            ("Kaposvar", "Somogy", "Somogy", "Hungary", 46.3594, 17.7968),
            ("Eger", "Heves", "Heves", "Hungary", 47.9025, 20.3772),
            ("Munkacs", "Bereg", "Karpatalja", "Hungary", 48.4392, 22.7129),
            ("Ungvar", "Ung", "Karpatalja", "Hungary", 48.6208, 22.2879),
            ("Szatmarnemeti", "Szatmar", "Partium", "Hungary", 47.7928, 22.8857),
            ("Nagyvarad", "Bihar", "Partium", "Hungary", 47.0722, 21.9211),
            ("Kolozsvar", "Kolozs", "Erdely", "Hungary", 46.7712, 23.6236),
            ("Kassa", "Abauj", "Felvidek", "Hungary", 48.7164, 21.2611),
            ("Mako", "Csanad", "Csanad", "Hungary", 46.2219, 20.4809),
        ],
        Region::Germany => gaz![
            ("Berlin", "Berlin", "Brandenburg", "Germany", 52.5200, 13.4050),
            ("Frankfurt", "Frankfurt", "Hessen", "Germany", 50.1109, 8.6821),
            ("Hamburg", "Hamburg", "Hamburg", "Germany", 53.5511, 9.9937),
            ("Koeln", "Koeln", "Rheinland", "Germany", 50.9375, 6.9603),
            ("Muenchen", "Muenchen", "Bayern", "Germany", 48.1351, 11.5820),
            ("Leipzig", "Leipzig", "Sachsen", "Germany", 51.3397, 12.3731),
            ("Breslau", "Breslau", "Schlesien", "Germany", 51.1079, 17.0385),
            ("Dresden", "Dresden", "Sachsen", "Germany", 51.0504, 13.7373),
            ("Nuernberg", "Nuernberg", "Bayern", "Germany", 49.4521, 11.0767),
            ("Stuttgart", "Stuttgart", "Wuerttemberg", "Germany", 48.7758, 9.1829),
            ("Mannheim", "Mannheim", "Baden", "Germany", 49.4875, 8.4660),
            ("Wuerzburg", "Wuerzburg", "Bayern", "Germany", 49.7913, 9.9534),
            ("Mainz", "Mainz", "Hessen", "Germany", 49.9929, 8.2473),
            ("Kassel", "Kassel", "Hessen", "Germany", 51.3127, 9.4797),
            ("Hannover", "Hannover", "Niedersachsen", "Germany", 52.3759, 9.7320),
            ("Essen", "Essen", "Rheinland", "Germany", 51.4556, 7.0116),
            ("Dortmund", "Dortmund", "Westfalen", "Germany", 51.5136, 7.4653),
            ("Karlsruhe", "Karlsruhe", "Baden", "Germany", 49.0069, 8.4037),
            ("Fuerth", "Fuerth", "Bayern", "Germany", 49.4772, 10.9887),
            ("Bamberg", "Bamberg", "Bayern", "Germany", 49.8988, 10.9028),
        ],
        Region::Greece => gaz![
            ("Rhodes", "Rhodes", "Dodecanese", "Greece", 36.4349, 28.2176),
            ("Salonika", "Salonika", "Macedonia", "Greece", 40.6401, 22.9444),
            ("Athens", "Attica", "Attica", "Greece", 37.9838, 23.7275),
            ("Kavala", "Kavala", "Macedonia", "Greece", 40.9396, 24.4069),
            ("Ioannina", "Ioannina", "Epirus", "Greece", 39.6650, 20.8537),
            ("Corfu", "Corfu", "Ionian", "Greece", 39.6243, 19.9217),
            ("Volos", "Magnesia", "Thessaly", "Greece", 39.3622, 22.9420),
            ("Larissa", "Larissa", "Thessaly", "Greece", 39.6390, 22.4191),
            ("Drama", "Drama", "Macedonia", "Greece", 41.1528, 24.1472),
            ("Serres", "Serres", "Macedonia", "Greece", 41.0856, 23.5484),
            ("Kastoria", "Kastoria", "Macedonia", "Greece", 40.5193, 21.2687),
            ("Kos", "Kos", "Dodecanese", "Greece", 36.8938, 27.2877),
            ("Chania", "Chania", "Crete", "Greece", 35.5138, 24.0180),
            ("Trikala", "Trikala", "Thessaly", "Greece", 39.5556, 21.7679),
            ("Xanthi", "Xanthi", "Thrace", "Greece", 41.1349, 24.8880),
            ("Komotini", "Rhodope", "Thrace", "Greece", 41.1224, 25.4066),
            ("Veria", "Imathia", "Macedonia", "Greece", 40.5242, 22.2028),
            ("Florina", "Florina", "Macedonia", "Greece", 40.7828, 21.4092),
            ("Didymoteicho", "Evros", "Thrace", "Greece", 41.3486, 26.4964),
            ("Preveza", "Preveza", "Epirus", "Greece", 38.9597, 20.7517),
        ],
        Region::Ussr => gaz![
            ("Kiev", "Kiev", "Ukraine", "USSR", 50.4501, 30.5234),
            ("Odessa", "Odessa", "Ukraine", "USSR", 46.4825, 30.7233),
            ("Minsk", "Minsk", "Belorussia", "USSR", 53.9006, 27.5590),
            ("Kharkov", "Kharkov", "Ukraine", "USSR", 49.9935, 36.2304),
            ("Dnepropetrovsk", "Dnepropetrovsk", "Ukraine", "USSR", 48.4647, 35.0462),
            ("Vitebsk", "Vitebsk", "Belorussia", "USSR", 55.1904, 30.2049),
            ("Gomel", "Gomel", "Belorussia", "USSR", 52.4345, 30.9754),
            ("Mogilev", "Mogilev", "Belorussia", "USSR", 53.9007, 30.3313),
            ("Zhitomir", "Zhitomir", "Ukraine", "USSR", 50.2547, 28.6587),
            ("Berdichev", "Zhitomir", "Ukraine", "USSR", 49.8916, 28.6003),
            ("Vinnitsa", "Vinnitsa", "Ukraine", "USSR", 49.2331, 28.4682),
            ("Uman", "Cherkassy", "Ukraine", "USSR", 48.7484, 30.2219),
            ("Nikolaev", "Nikolaev", "Ukraine", "USSR", 46.9750, 31.9946),
            ("Kherson", "Kherson", "Ukraine", "USSR", 46.6354, 32.6169),
            ("Poltava", "Poltava", "Ukraine", "USSR", 49.5883, 34.5514),
            ("Chernigov", "Chernigov", "Ukraine", "USSR", 51.4982, 31.2893),
            ("Bobruisk", "Mogilev", "Belorussia", "USSR", 53.1446, 29.2214),
            ("Smolensk", "Smolensk", "Russia", "USSR", 54.7818, 32.0401),
            ("Rostov", "Rostov", "Russia", "USSR", 47.2357, 39.7015),
            ("Kishinev", "Kishinev", "Bessarabia", "USSR", 47.0105, 28.8638),
        ],
    }
}

/// Death places: camps, ghettos and killing sites where fates were
/// recorded.
pub const DEATH_PLACES: &[GazetteerEntry] = gaz![
    ("Auschwitz", "Oswiecim", "Krakowskie", "Poland", 50.0343, 19.1784),
    ("Sobibor", "Wlodawa", "Lubelskie", "Poland", 51.4477, 23.5936),
    ("Treblinka", "Sokolow", "Mazowieckie", "Poland", 52.6311, 22.0514),
    ("Belzec", "Tomaszow", "Lubelskie", "Poland", 50.3842, 23.4428),
    ("Majdanek", "Lublin", "Lubelskie", "Poland", 51.2180, 22.5992),
    ("Chelmno", "Kolo", "Lodzkie", "Poland", 52.1539, 18.7281),
    ("Mauthausen", "Perg", "Oberoesterreich", "Austria", 48.2561, 14.5003),
    ("Dachau", "Dachau", "Bayern", "Germany", 48.2699, 11.4683),
    ("Buchenwald", "Weimar", "Thueringen", "Germany", 51.0219, 11.2494),
    ("Bergen-Belsen", "Celle", "Niedersachsen", "Germany", 52.7584, 9.9076),
    ("Theresienstadt", "Litomerice", "Bohemia", "Czechoslovakia", 50.5119, 14.1503),
    ("Ravensbrueck", "Fuerstenberg", "Brandenburg", "Germany", 53.1903, 13.1677),
    ("Stutthof", "Sztutowo", "Pomorskie", "Poland", 54.3275, 19.1514),
    ("Babi Yar", "Kiev", "Ukraine", "USSR", 50.4716, 30.4497),
    ("Ponary", "Wilno", "Wilenskie", "Poland", 54.6275, 25.2117),
    ("Drancy", "Seine", "Ile-de-France", "France", 48.9200, 2.4530),
    ("Fossoli", "Modena", "Emilia", "Italy", 44.8252, 10.8823),
    ("Risiera di San Sabba", "Trieste", "Friuli", "Italy", 45.6186, 13.7892),
    ("Transnistria", "Transnistria", "Transnistria", "USSR", 47.5000, 29.5000),
    ("Jasenovac", "Sisak", "Slavonia", "Croatia", 45.2672, 16.9086),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_region_has_a_gazetteer() {
        for region in Region::ALL {
            let g = residences(region);
            assert!(g.len() >= 20, "{region:?}");
            for e in g {
                assert!(!e.city.is_empty());
                assert!((-90.0..=90.0).contains(&e.lat));
                assert!((-180.0..=180.0).contains(&e.lon));
            }
        }
    }

    #[test]
    fn entry_materializes_full_place() {
        let p = residences(Region::Italy)[0].place();
        assert_eq!(p.city.as_deref(), Some("Torino"));
        assert_eq!(p.country.as_deref(), Some("Italy"));
        assert!(p.coords.is_some());
    }

    #[test]
    fn death_places_include_the_papers_examples() {
        // The paper's running examples and source descriptions mention
        // Auschwitz, Sobibor, Mauthausen and Transnistria.
        for name in ["Auschwitz", "Sobibor", "Mauthausen", "Transnistria", "Drancy"] {
            assert!(DEATH_PLACES.iter().any(|e| e.city == name), "{name} missing");
        }
    }

    #[test]
    fn torino_and_turin_are_transliteration_twins() {
        // The Guido Foa reports spell Turin both ways (Table 1); the
        // gazetteer carries both with identical coordinates.
        let g = residences(Region::Italy);
        let torino = g.iter().find(|e| e.city == "Torino").unwrap();
        let turin = g.iter().find(|e| e.city == "Turin").unwrap();
        assert!((torino.lat - turin.lat).abs() < 1e-9);
    }
}
