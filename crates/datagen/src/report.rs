//! Report emission: project ground-truth persons into noisy, schema-sparse
//! victim reports filed by testimony submitters and victim lists.

use crate::corrupt::{corrupt_date, corrupt_name, transliterate};
use crate::person::{FamilyId, Person, PersonId};
use crate::sets::{generate_persons, GenConfig, PrevalenceTargets};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use yv_records::{
    Dataset, DateParts, Gender, Place, PlaceType, Record, RecordBuilder, RecordId, Source,
    SourceId,
};

/// The "MV" submitter injection (Section 6.4): one submitter contributing
/// `n_reports` reports, all with the fixed pattern
/// `{FirstName, LastName, FatherName, BirthPlace, DeathPlace}`.
#[derive(Debug, Clone, Copy)]
pub struct MvConfig {
    pub n_reports: usize,
}

/// A generated dataset together with its ground truth.
#[derive(Debug)]
pub struct Generated {
    pub dataset: Dataset,
    /// Ground-truth persons; `persons[i].id == PersonId(i)`.
    pub persons: Vec<Person>,
    truth: Vec<PersonId>,
    families: Vec<FamilyId>,
    /// The MV submitter's source, when injected.
    pub mv_source: Option<SourceId>,
}

impl Generated {
    /// The ground-truth person a record describes.
    #[must_use]
    pub fn person_of(&self, r: RecordId) -> PersonId {
        self.truth[r.index()]
    }

    /// The ground-truth family of a record's person.
    #[must_use]
    pub fn family_of(&self, r: RecordId) -> FamilyId {
        self.families[r.index()]
    }

    /// True when two records describe the same person (the gold standard
    /// for person-level ER).
    #[must_use]
    pub fn is_match(&self, a: RecordId, b: RecordId) -> bool {
        self.person_of(a) == self.person_of(b)
    }

    /// True when two records describe members of the same family (the gold
    /// standard for family-granularity ER).
    #[must_use]
    pub fn same_family(&self, a: RecordId, b: RecordId) -> bool {
        self.family_of(a) == self.family_of(b)
    }

    /// All ground-truth matching pairs `(a, b)` with `a < b`.
    #[must_use]
    pub fn matching_pairs(&self) -> Vec<(RecordId, RecordId)> {
        let mut by_person: HashMap<PersonId, Vec<RecordId>> = HashMap::new();
        for rid in self.dataset.record_ids() {
            by_person.entry(self.person_of(rid)).or_default().push(rid);
        }
        let mut pairs = Vec::new();
        for records in by_person.values() {
            for i in 0..records.len() {
                for j in i + 1..records.len() {
                    pairs.push((records[i], records[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Number of ground-truth matching pairs.
    #[must_use]
    pub fn gold_pair_count(&self) -> usize {
        self.matching_pairs().len()
    }

    /// Records filed by the MV submitter.
    #[must_use]
    pub fn mv_records(&self) -> Vec<RecordId> {
        match self.mv_source {
            None => Vec::new(),
            Some(src) => self
                .dataset
                .record_ids()
                .filter(|&r| self.dataset.record(r).source == src)
                .collect(),
        }
    }
}

/// A source schema: for every aggregate, the probability that a record
/// from this source carries it. The probability is `0.0` for attributes
/// outside the source's schema and close to `1.0` for attributes inside
/// it, so records from one source cluster into a dominant data pattern
/// with dropout satellites — the shape of Figure 11.
///
/// Calibration: for a record-level prevalence target `t`, the attribute
/// enters the schema with probability `s = min(1, 1.15·t)` and, once in,
/// each record carries it with probability `r = min(1, t/s)`, so the
/// expected prevalence is `s·r ≈ t` while keeping per-source clustering.
#[derive(Debug, Clone)]
struct Schema {
    first: f64,
    last: f64,
    gender: f64,
    dob: f64,
    dob_year_only: bool,
    father: f64,
    mother: f64,
    spouse: f64,
    maiden: f64,
    mothers_maiden: f64,
    profession: f64,
    /// Per place type: record-level presence probability + part mask
    /// (city/county/region/country).
    places: [(f64, [bool; 4]); 4],
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SourceKind {
    Testimony,
    List,
}

/// Quota mask: exactly `round(target·n)` of `n` schemas get the attribute
/// (fractional remainder resolved by one coin flip). Stratified assignment
/// removes the schema-level binomial variance a small source pool would
/// otherwise have, so record-level prevalence tracks Table 3 tightly while
/// every individual source keeps an all-or-nothing schema — the Figure 11
/// clustering.
fn quota_mask(rng: &mut StdRng, n: usize, target: f64) -> Vec<bool> {
    let target = target.clamp(0.0, 1.0);
    let exact = target * n as f64;
    let mut k = exact.floor() as usize;
    let frac = exact - k as f64;
    if frac > 0.0 && rng.gen_bool(frac) {
        k += 1;
    }
    let k = k.min(n);
    let mut mask = vec![false; n];
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(k) {
        mask[i] = true;
    }
    mask
}

/// Sample a pool of `n` source schemas whose *aggregate* attribute
/// frequencies match the prevalence targets exactly (quota assignment).
fn sample_schema_pool(
    rng: &mut StdRng,
    targets: &PrevalenceTargets,
    kind: SourceKind,
    n: usize,
) -> Vec<Schema> {
    // Family-name attributes are availability-limited on the person side;
    // divide the target by availability so record-level prevalence lands
    // near the target.
    const AVAIL_SPOUSE: f64 = 0.45;
    const AVAIL_MAIDEN: f64 = 0.22;
    const AVAIL_MM: f64 = 0.85;
    const AVAIL_PROF: f64 = 0.55;
    let family_bias = match kind {
        SourceKind::Testimony => 1.3,
        SourceKind::List => 0.85,
    };
    let masks = [
        quota_mask(rng, n, targets.first_name),
        quota_mask(rng, n, targets.last_name),
        quota_mask(rng, n, targets.gender),
        quota_mask(rng, n, targets.dob),
        quota_mask(rng, n, targets.father * family_bias),
        quota_mask(rng, n, targets.mother * family_bias),
        quota_mask(rng, n, targets.spouse / AVAIL_SPOUSE * family_bias),
        quota_mask(rng, n, targets.maiden / AVAIL_MAIDEN),
        quota_mask(rng, n, targets.mothers_maiden / AVAIL_MM),
        quota_mask(rng, n, targets.profession / AVAIL_PROF),
        quota_mask(rng, n, targets.birth_place),
        quota_mask(rng, n, targets.permanent),
        quota_mask(rng, n, targets.wartime),
        quota_mask(rng, n, targets.death_place),
    ];
    let on = |m: &[bool], i: usize| if m[i] { 1.0 } else { 0.0 };
    (0..n)
        .map(|i| {
            let place = |rng: &mut StdRng, present: f64| {
                let parts = [
                    rng.gen_bool(0.85),
                    rng.gen_bool(0.70),
                    rng.gen_bool(0.55),
                    rng.gen_bool(0.95),
                ];
                (present, parts)
            };
            Schema {
                first: on(&masks[0], i),
                last: on(&masks[1], i),
                gender: on(&masks[2], i),
                dob: on(&masks[3], i),
                dob_year_only: rng.gen_bool(match kind {
                    SourceKind::Testimony => 0.2,
                    SourceKind::List => 0.4,
                }),
                father: on(&masks[4], i),
                mother: on(&masks[5], i),
                spouse: on(&masks[6], i),
                maiden: on(&masks[7], i),
                mothers_maiden: on(&masks[8], i),
                profession: on(&masks[9], i),
                places: [
                    place(rng, on(&masks[10], i)),
                    place(rng, on(&masks[11], i)),
                    place(rng, on(&masks[12], i)),
                    place(rng, on(&masks[13], i)),
                ],
            }
        })
        .collect()
}

impl Schema {
    /// The MV submitter's degenerate fixed schema. Gender is included:
    /// Table 3 reports 97% gender prevalence on the Italy set even though
    /// MV supplies 15% of it, so his reports must carry gender (it is
    /// derivable from the given name during registration).
    fn mv() -> Schema {
        Schema {
            first: 1.0,
            last: 1.0,
            gender: 1.0,
            dob: 0.0,
            dob_year_only: false,
            father: 1.0,
            mother: 0.0,
            spouse: 0.0,
            maiden: 0.0,
            mothers_maiden: 0.0,
            profession: 0.0,
            places: [
                (1.0, [true; 4]), // birth place
                (0.0, [false; 4]),
                (0.0, [false; 4]),
                (1.0, [true; 4]), // death place
            ],
        }
    }
}

/// The duplicate-count distribution: archival experts estimate at most
/// eight reports per victim, with single-report victims dominating.
const DUP_WEIGHTS: [f64; 8] = [0.45, 0.25, 0.12, 0.08, 0.05, 0.03, 0.015, 0.005];

fn sample_dup_count(rng: &mut StdRng) -> usize {
    let total: f64 = DUP_WEIGHTS.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    for (k, &w) in DUP_WEIGHTS.iter().enumerate() {
        if roll < w {
            return k + 1;
        }
        roll -= w;
    }
    DUP_WEIGHTS.len()
}

/// Run the generator for a configuration.
#[must_use]
pub fn generate(config: &GenConfig) -> Generated {
    let persons = generate_persons(config);
    debug_assert!(persons.iter().enumerate().all(|(i, p)| p.id.0 as usize == i));
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut dataset = Dataset::new();
    let mut truth: Vec<PersonId> = Vec::new();
    let mut families: Vec<FamilyId> = Vec::new();
    let mut book_id = 1_000_000u64;

    // The requested total includes any MV injection.
    let organic_target =
        config.n_records.saturating_sub(config.mv.map_or(0, |m| m.n_reports));

    // List sources per region (two thirds of reports come from lists).
    let mut lists_by_region: HashMap<crate::sets::Region, Vec<(SourceId, Schema)>> =
        HashMap::new();
    let expected_list_reports = organic_target * 2 / 3;
    let lists_per_region =
        (expected_list_reports / 250 / config.regions.len().max(1)).max(3);
    for &region in &config.regions {
        let schemas =
            sample_schema_pool(&mut rng, &config.targets, SourceKind::List, lists_per_region);
        let mut lists = Vec::new();
        for (li, schema) in schemas.into_iter().enumerate() {
            let id = dataset.add_source(Source::list(
                SourceId(0),
                &format!("{region:?} victim list #{li}"),
            ));
            lists.push((id, schema));
        }
        lists_by_region.insert(region, lists);
    }

    // Pages of Testimony are a single form; what varies is which fields a
    // submitter filled in. A small pool of form-schemas per region (form
    // revisions across decades and languages) keeps testimony patterns
    // clustered as in Figure 11.
    let mut testimony_pool: HashMap<crate::sets::Region, Vec<Schema>> = HashMap::new();
    for &region in &config.regions {
        let pool = sample_schema_pool(&mut rng, &config.targets, SourceKind::Testimony, 12);
        testimony_pool.insert(region, pool);
    }

    // Testimony submitters are created lazily per family.
    let mut submitter_of_family: HashMap<FamilyId, (SourceId, Schema, usize)> = HashMap::new();

    let mut emitted = 0usize;
    'person_loop: for person in &persons {
        let k = sample_dup_count(&mut rng);
        for _ in 0..k {
            if emitted >= organic_target {
                break 'person_loop;
            }
            let is_testimony = rng.gen_bool(1.0 / 3.0);
            let (source, schema) = if is_testimony {
                let entry = submitter_of_family.get(&person.family).filter(|(_, _, n)| *n < 5);
                match entry {
                    Some((id, schema, _)) => {
                        let (id, schema) = (*id, schema.clone());
                        submitter_of_family.get_mut(&person.family).expect("present").2 += 1;
                        (id, schema)
                    }
                    None => {
                        // A relative files Pages of Testimony: shares the
                        // family surname.
                        let first = match rng.gen_bool(0.5) {
                            true => crate::names::male_first_names(person.region)
                                .choose(&mut rng)
                                .expect("pool"),
                            false => crate::names::female_first_names(person.region)
                                .choose(&mut rng)
                                .expect("pool"),
                        };
                        let city = crate::places::residences(person.region)
                            .choose(&mut rng)
                            .expect("gazetteer")
                            .city;
                        let schema = testimony_pool[&person.region]
                            .choose(&mut rng)
                            .expect("pool non-empty")
                            .clone();
                        let id = dataset.add_source(Source::testimony(
                            SourceId(0),
                            first,
                            &person.last_name,
                            city,
                        ));
                        submitter_of_family.insert(person.family, (id, schema.clone(), 1));
                        (id, schema)
                    }
                }
            } else {
                let lists = &lists_by_region[&person.region];
                let (id, schema) = lists.choose(&mut rng).expect("lists exist");
                (*id, schema.clone())
            };
            let record = make_report(&mut rng, person, &schema, source, book_id, config, false);
            book_id += 1;
            dataset.add_record(record);
            truth.push(person.id);
            families.push(person.family);
            emitted += 1;
        }
    }

    // MV injection: one submitter, fixed degenerate schema, low noise.
    let mv_source = config.mv.map(|mv| {
        let source = dataset.add_source(Source::testimony(SourceId(0), "M", "V", "Torino"));
        let schema = Schema::mv();
        let mut person_indices: Vec<usize> = (0..persons.len()).collect();
        person_indices.shuffle(&mut rng);
        for &pi in person_indices.iter().cycle().take(mv.n_reports) {
            let record =
                make_report(&mut rng, &persons[pi], &schema, source, book_id, config, true);
            book_id += 1;
            dataset.add_record(record);
            truth.push(persons[pi].id);
            families.push(persons[pi].family);
        }
        source
    });

    Generated { dataset, persons, truth, families, mv_source }
}

/// Emit one report of `person` through a source `schema`.
fn make_report(
    rng: &mut StdRng,
    person: &Person,
    schema: &Schema,
    source: SourceId,
    book_id: u64,
    config: &GenConfig,
    accurate: bool,
) -> Record {
    let name_noise = if accurate { 0.03 } else { config.name_noise };
    // Per-record inclusion: schema probability combined with dropout
    // (illegible handwriting); accurate (MV) reports skip the dropout.
    let dropout = if accurate { 0.0 } else { config.dropout };
    let keep = move |rng: &mut StdRng, p: f64| {
        p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) && !rng.gen_bool(dropout)
    };
    let mut b = RecordBuilder::new(book_id, source);
    if keep(rng, schema.first) {
        b = b.first_name(corrupt_name(rng, &person.first_name, name_noise));
        // Occasionally a second recorded given name (a variant).
        if !accurate && rng.gen_bool(0.05) {
            b = b.first_name(corrupt_name(rng, &person.first_name, 0.9));
        }
    }
    if keep(rng, schema.last) {
        b = b.last_name(corrupt_name(rng, &person.last_name, name_noise));
    }
    if keep(rng, schema.gender) {
        // 1% clerical gender flips.
        let g = if rng.gen_bool(0.01) {
            match person.gender {
                Gender::Male => Gender::Female,
                Gender::Female => Gender::Male,
            }
        } else {
            person.gender
        };
        b = b.gender(g);
    }
    if keep(rng, schema.dob) {
        let date = if schema.dob_year_only {
            DateParts::year_only(person.birth.year.expect("generator sets years"))
        } else {
            person.birth
        };
        b = b.birth(corrupt_date(rng, date, config.date_noise));
    }
    if person.father_name.is_some() && keep(rng, schema.father) {
        b = b.father_name(corrupt_name(
            rng,
            person.father_name.as_deref().expect("checked"),
            name_noise,
        ));
    }
    if person.mother_name.is_some() && keep(rng, schema.mother) {
        b = b.mother_name(corrupt_name(
            rng,
            person.mother_name.as_deref().expect("checked"),
            name_noise,
        ));
    }
    if person.spouse_name.is_some() && keep(rng, schema.spouse) {
        b = b.spouse_name(corrupt_name(
            rng,
            person.spouse_name.as_deref().expect("checked"),
            name_noise,
        ));
    }
    if person.maiden_name.is_some() && keep(rng, schema.maiden) {
        b = b.maiden_name(corrupt_name(
            rng,
            person.maiden_name.as_deref().expect("checked"),
            name_noise,
        ));
    }
    if person.mothers_maiden.is_some() && keep(rng, schema.mothers_maiden) {
        b = b.mothers_maiden(corrupt_name(
            rng,
            person.mothers_maiden.as_deref().expect("checked"),
            name_noise,
        ));
    }
    if person.profession.is_some() && keep(rng, schema.profession) {
        b = b.profession(person.profession.as_deref().expect("checked"));
    }
    let gazetteer_places = [
        (PlaceType::Birth, &person.birth_place),
        (PlaceType::Permanent, &person.permanent_place),
        (PlaceType::Wartime, &person.wartime_place),
        (PlaceType::Death, &person.death_place),
    ];
    for (i, (ty, entry)) in gazetteer_places.into_iter().enumerate() {
        let (present, parts) = &schema.places[i];
        if !keep(rng, *present) {
            continue;
        }
        let full = entry.place();
        let mut place = Place::default();
        for (pi, part) in yv_records::field::PlacePart::ALL.iter().enumerate() {
            if parts[pi] {
                let mut value = full.part(*part).expect("gazetteer places are full").to_owned();
                // Spelling variants on city names; coordinates still
                // resolve because the Names Project canonicalizes place
                // codes.
                if *part == yv_records::field::PlacePart::City && !accurate && rng.gen_bool(0.08)
                {
                    value = transliterate(rng, &value);
                }
                place.set_part(*part, Some(value));
            }
        }
        if place.city.is_some() {
            place.coords = full.coords;
        }
        if !place.is_empty() {
            b = b.place(ty, place);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::GenConfig;

    fn small() -> Generated {
        GenConfig { n_records: 800, ..GenConfig::random(800, 11) }.generate()
    }

    #[test]
    fn emits_about_the_requested_count() {
        let g = small();
        let n = g.dataset.len();
        assert!((700..=800).contains(&n), "got {n}");
    }

    #[test]
    fn truth_is_parallel_to_records() {
        let g = small();
        assert_eq!(g.dataset.len(), g.truth.len());
        assert_eq!(g.dataset.len(), g.families.len());
        for rid in g.dataset.record_ids() {
            let pid = g.person_of(rid);
            assert!((pid.0 as usize) < g.persons.len());
            assert_eq!(g.persons[pid.0 as usize].family, g.family_of(rid));
        }
    }

    #[test]
    fn duplicates_exist_and_are_bounded() {
        let g = small();
        let mut counts: HashMap<PersonId, usize> = HashMap::new();
        for rid in g.dataset.record_ids() {
            *counts.entry(g.person_of(rid)).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max <= 8, "expert estimate: at most 8 duplicates, got {max}");
        assert!(counts.values().any(|&c| c >= 2), "some duplicates must exist");
        assert!(!g.matching_pairs().is_empty());
    }

    #[test]
    fn same_person_implies_same_family() {
        let g = small();
        for (a, b) in g.matching_pairs() {
            assert!(g.same_family(a, b));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GenConfig::random(400, 5).generate();
        let b = GenConfig::random(400, 5).generate();
        assert_eq!(a.dataset.len(), b.dataset.len());
        for rid in a.dataset.record_ids() {
            assert_eq!(a.dataset.record(rid), b.dataset.record(rid));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GenConfig::random(400, 5).generate();
        let b = GenConfig::random(400, 6).generate();
        let same = a
            .dataset
            .record_ids()
            .take(50)
            .filter(|&r| {
                b.dataset.len() > r.index() && a.dataset.record(r) == b.dataset.record(r)
            })
            .count();
        assert!(same < 50);
    }

    #[test]
    fn mv_reports_have_the_fixed_pattern() {
        let g = crate::sets::italy_set(3);
        let mv = g.mv_records();
        assert_eq!(mv.len(), 1_400);
        for &rid in mv.iter().take(100) {
            let r = g.dataset.record(rid);
            assert!(!r.first_names.is_empty());
            assert!(!r.last_names.is_empty());
            assert!(r.father_name.is_some() || {
                // Mothers' records lack a father only if the ground-truth
                // person had none; our persons always have fathers.
                false
            });
            assert!(r.place(PlaceType::Birth).is_some());
            assert!(r.place(PlaceType::Death).is_some());
            assert!(r.gender.is_some(), "MV records carry gender (Table 3)");
            assert!(r.birth.is_empty());
            assert!(r.spouse_name.is_none());
        }
    }

    #[test]
    fn italy_set_has_expected_size() {
        let g = crate::sets::italy_set(1);
        // 9,499 requested: ~8,099 organic (stops at a person boundary)
        // plus exactly 1,400 MV reports.
        let n = g.dataset.len();
        assert!((9_300..=9_600).contains(&n), "got {n}");
    }

    #[test]
    fn prevalence_tracks_table3_targets() {
        let g = crate::sets::random_set(4_000, 17);
        let prev = yv_records::patterns::prevalence(&g.dataset);
        let get = |agg: yv_records::AggregateType| {
            prev.iter().find(|p| p.agg == agg).expect("present").fraction
        };
        use yv_records::AggregateType as A;
        // Generous tolerances: the generator is calibrated, not fitted.
        let cases = [
            (A::LastName, 0.98, 0.08),
            (A::FirstName, 0.97, 0.08),
            (A::Gender, 0.88, 0.10),
            (A::Dob, 0.64, 0.12),
            (A::FatherName, 0.52, 0.12),
            (A::MotherName, 0.40, 0.12),
            (A::SpouseName, 0.27, 0.12),
            (A::PermanentPlace, 0.70, 0.12),
            (A::BirthPlace, 0.36, 0.12),
            (A::Profession, 0.35, 0.15),
        ];
        for (agg, target, tol) in cases {
            let got = get(agg);
            assert!(
                (got - target).abs() <= tol,
                "{agg:?}: got {got:.2}, target {target:.2}"
            );
        }
    }

    #[test]
    fn sources_cluster_patterns() {
        // Records from one list share a schema => far fewer patterns than
        // records.
        let g = small();
        let stats = yv_records::PatternStats::analyze(&g.dataset);
        assert!(stats.distinct_patterns() * 2 < g.dataset.len());
    }
}
