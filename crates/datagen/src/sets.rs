//! Top-level dataset constructors: the Italy set, the stratified random
//! set and the scaled "full" set, with prevalence targets calibrated to
//! Table 3.

use crate::report::{generate, Generated, MvConfig};
use crate::person::generate_families;
use crate::Person;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The six pre-war communities of the stratified sample (Section 5.1).
/// Differences are "either cultural-linguistic or in the progression of
/// persecution during WWII itself".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    Italy,
    Poland,
    Hungary,
    Germany,
    Greece,
    Ussr,
}

impl Region {
    pub const ALL: [Region; 6] = [
        Region::Italy,
        Region::Poland,
        Region::Hungary,
        Region::Germany,
        Region::Greece,
        Region::Ussr,
    ];
}

/// Per-aggregate prevalence targets (the % column of Table 3).
#[derive(Debug, Clone, Copy)]
pub struct PrevalenceTargets {
    pub last_name: f64,
    pub first_name: f64,
    pub gender: f64,
    pub dob: f64,
    pub father: f64,
    pub mother: f64,
    pub spouse: f64,
    pub maiden: f64,
    pub mothers_maiden: f64,
    pub permanent: f64,
    pub wartime: f64,
    pub birth_place: f64,
    pub death_place: f64,
    pub profession: f64,
}

/// Table 3, "Full Set" column.
pub const FULL_TARGETS: PrevalenceTargets = PrevalenceTargets {
    last_name: 0.98,
    first_name: 0.97,
    gender: 0.88,
    dob: 0.64,
    father: 0.52,
    mother: 0.40,
    spouse: 0.27,
    maiden: 0.12,
    mothers_maiden: 0.12,
    permanent: 0.70,
    wartime: 0.58,
    birth_place: 0.36,
    death_place: 0.34,
    profession: 0.35,
};

/// Table 3, "10K Italy Set" column — the record-level prevalence the
/// generated Italy set should exhibit *including* the MV submitter's
/// 1,400 fixed-pattern reports.
pub const ITALY_TARGETS: PrevalenceTargets = PrevalenceTargets {
    last_name: 0.99,
    first_name: 0.99,
    gender: 0.97,
    dob: 0.67,
    father: 0.78,
    mother: 0.59,
    spouse: 0.21,
    maiden: 0.13,
    mothers_maiden: 0.13,
    permanent: 0.88,
    wartime: 0.72,
    birth_place: 0.90,
    death_place: 0.60,
    profession: 0.27,
};

/// Targets for the *organic* (non-MV) 85.3% of the Italy set, solved so
/// that after adding the MV reports (which carry only first/last/gender/
/// father/birth-place/death-place) the whole set lands on
/// [`ITALY_TARGETS`]: `overall = 0.853·organic + 0.147·mv_indicator`.
pub const ITALY_ORGANIC_TARGETS: PrevalenceTargets = PrevalenceTargets {
    last_name: 0.99,
    first_name: 0.99,
    gender: 0.97,
    dob: 0.785,
    father: 0.742,
    mother: 0.69,
    spouse: 0.246,
    maiden: 0.152,
    mothers_maiden: 0.152,
    permanent: 1.0,
    wartime: 0.844,
    birth_place: 0.88,
    death_place: 0.53,
    profession: 0.317,
};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub seed: u64,
    /// Approximate number of reports to emit (the generator stops at the
    /// first person boundary at or past this count).
    pub n_records: usize,
    pub regions: Vec<Region>,
    pub targets: PrevalenceTargets,
    /// Probability that an emitted name is corrupted.
    pub name_noise: f64,
    /// Probability that an emitted birth date is corrupted.
    pub date_noise: f64,
    /// Per-field dropout on top of the source schema (illegible
    /// handwriting etc.).
    pub dropout: f64,
    /// Inject the "MV" submitter phenomenon.
    pub mv: Option<MvConfig>,
}

impl GenConfig {
    /// Configuration matching the public Italy subset: 9,499 records, a
    /// single region, and the MV submitter with his 1,400 fixed-pattern
    /// reports.
    #[must_use]
    pub fn italy(seed: u64) -> Self {
        GenConfig {
            seed,
            n_records: 9_499,
            regions: vec![Region::Italy],
            targets: ITALY_ORGANIC_TARGETS,
            // Italian records pass through more transliteration layers
            // (Italian/Hebrew/German camp records); the higher noise also
            // surfaces the MV contrast of Table 6 — MV reports are
            // historian-accurate while organic reports are not.
            name_noise: 0.25,
            date_noise: 0.2,
            dropout: 0.03,
            mv: Some(MvConfig { n_reports: 1_400 }),
        }
    }

    /// Stratified random sample over all six regions with full-set
    /// prevalence targets.
    #[must_use]
    pub fn random(n_records: usize, seed: u64) -> Self {
        GenConfig {
            seed,
            n_records,
            regions: Region::ALL.to_vec(),
            targets: FULL_TARGETS,
            name_noise: 0.15,
            date_noise: 0.12,
            dropout: 0.03,
            mv: None,
        }
    }

    /// Run the generator.
    #[must_use]
    pub fn generate(&self) -> Generated {
        generate(self)
    }
}

/// Generate ground-truth persons for a config (used internally by
/// [`generate`] and directly by tests needing raw persons).
#[must_use]
pub fn generate_persons(config: &GenConfig) -> Vec<Person> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    // ~2.2 reports per person, ~4.5 persons per family.
    let persons_needed = (config.n_records as f64 / 2.2).ceil() as usize;
    let families_per_region =
        (persons_needed as f64 / 4.5 / config.regions.len() as f64).ceil() as usize;
    let mut persons = Vec::new();
    let (mut next_person, mut next_family) = (0u64, 0u64);
    for &region in &config.regions {
        persons.extend(generate_families(
            &mut rng,
            region,
            families_per_region.max(1),
            &mut next_person,
            &mut next_family,
        ));
    }
    persons
}

/// The public Italy subset analogue: ~9,499 reports, one region, MV
/// submitter included.
#[must_use]
pub fn italy_set(seed: u64) -> Generated {
    GenConfig::italy(seed).generate()
}

/// The stratified 100K-analogue random sample (size is a parameter so the
/// experiment harness can scale it).
#[must_use]
pub fn random_set(n_records: usize, seed: u64) -> Generated {
    GenConfig::random(n_records, seed).generate()
}

/// The scaled "full dataset" stand-in (identical distribution to
/// [`random_set`]; the name documents intent at call sites).
#[must_use]
pub fn full_set(n_records: usize, seed: u64) -> Generated {
    random_set(n_records, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persons_scale_with_requested_records() {
        let small = generate_persons(&GenConfig::random(500, 1));
        let large = generate_persons(&GenConfig::random(5_000, 1));
        assert!(large.len() > small.len() * 5);
    }

    #[test]
    fn stratification_covers_all_regions() {
        let persons = generate_persons(&GenConfig::random(3_000, 2));
        for region in Region::ALL {
            assert!(persons.iter().any(|p| p.region == region), "{region:?} missing");
        }
    }

    #[test]
    fn italy_config_is_single_region_with_mv() {
        let c = GenConfig::italy(0);
        assert_eq!(c.regions, vec![Region::Italy]);
        assert!(c.mv.is_some());
        assert_eq!(c.n_records, 9_499);
    }
}
