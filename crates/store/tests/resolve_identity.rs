//! Fuzzy-resolution invariants: the ranked candidate list a `RESOLVE`
//! serves is a pure function of the store's logical state — independent
//! of the shard count, of the thread interleaving that filled the store,
//! and of whether the store was just built, replayed from its WALs, or
//! folded into a snapshot and reopened. Rankings are compared through
//! [`yv_store::protocol::format_candidates`], the exact bytes a server
//! would put on the wire, so "identical" means byte-identical.

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use yv_core::{IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig};
use yv_records::{Record, RecordBuilder, SourceId};
use yv_store::protocol::format_candidates;
use yv_store::{ResolveOptions, Store};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yv-store-resolve-identity").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trained_resolver(n_records: usize, seed: u64) -> IncrementalResolver {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    IncrementalResolver::bootstrap(gen.dataset, pipeline, config, IncrementalConfig::default())
}

/// Arrivals spanning every shard of a 4-way store (same pool as the
/// shard-identity test, so the routing variety is already proven there).
fn arrivals(n: usize) -> Vec<Record> {
    const FIRST: [&str; 6] = ["Guido", "Sara", "Moshe", "Rivka", "David", "Chana"];
    const LAST: [&str; 11] = [
        "Foa", "Levi", "Postel", "Roth", "Katz", "Blum", "Stern", "Weiss", "Adler", "Braun",
        "Segal",
    ];
    (0..n)
        .map(|i| {
            RecordBuilder::new(800_000 + i as u64, SourceId(0))
                .first_name(FIRST[i % FIRST.len()])
                .last_name(LAST[(i * 7) % LAST.len()])
                .build()
        })
        .collect()
}

/// Misspelled probes of names the arrival pool plants: substitutions,
/// deletions and a duplication, plus one exact name and one miss.
const PROBES: [&str; 10] =
    ["Lewi", "Fao", "Postl", "Rot", "Kats", "Gvido", "Sarra", "Mosh", "Levi", "Zzzzz"];

/// Render the full probe battery as wire bytes, one formatted response
/// per probe, under both default and tightened options.
fn battery(store: &Store) -> Vec<String> {
    let defaults = ResolveOptions::default();
    let tight = ResolveOptions { k: 3, min_score: 0.2, ..ResolveOptions::default() };
    PROBES
        .iter()
        .flat_map(|probe| {
            [
                format_candidates(&store.resolve(probe, &defaults).hits),
                format_candidates(&store.resolve(probe, &tight).hits),
            ]
        })
        .collect()
}

/// The headline property: a 4-shard store filled by 4 racing writers
/// ranks every probe byte-identically to a 1-shard store holding the
/// same records — and to itself after a WAL-replay restart and after a
/// snapshot/reopen cycle.
#[test]
fn resolve_rankings_survive_restart_and_ignore_shard_count() {
    let multi_dir = fresh_dir("rankings-multi");
    let single_dir = fresh_dir("rankings-single");
    let multi = Store::create(&multi_dir, trained_resolver(100, 17), 4).unwrap();
    let single = Store::create(&single_dir, trained_resolver(100, 17), 1).unwrap();

    // 4 writer threads scatter the arrivals across the shards.
    let pool = arrivals(40);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let multi = &multi;
            let pool = &pool;
            scope.spawn(move || {
                for (i, record) in pool.iter().enumerate() {
                    if i % 4 == t {
                        multi.add_record(record.clone()).unwrap();
                    }
                }
            });
        }
    });
    // The single-shard store gets the same arrivals serially. RESOLVE
    // rankings don't depend on arrival order (record ids do, but the
    // pool is one record per (first, last) pairing per index, and the
    // comparison below is against the multi store's own restart — the
    // cross-store comparison uses the sequencer-applied order).
    let order = {
        use yv_store::wal::{self, WalEntry};
        let mut merged = Vec::new();
        for s in 0..4 {
            merged.extend(wal::replay(&multi_dir.join(yv_store::wal_file_name(s))).unwrap());
        }
        merged.sort_by_key(|(seq, _)| *seq);
        merged.into_iter().map(|(_, entry)| match entry {
            WalEntry::Record(record) => *record,
            WalEntry::Source(_) => panic!("no sources were added"),
        })
    };
    for record in order {
        single.add_record(record).unwrap();
    }

    let before = battery(&multi);
    assert_eq!(before.len(), PROBES.len() * 2);
    // Sanity: the battery is not vacuous — misspellings really hit.
    assert!(before[0].contains("name=levi"), "Lewi finds levi: {:?}", before[0]);
    assert!(before.last().unwrap().starts_with("OK 0\n"), "Zzzzz finds nothing");

    assert_eq!(battery(&single), before, "shard count must not leak into rankings");

    // Restart via WAL replay...
    drop(multi);
    let replayed = Store::open(&multi_dir).unwrap();
    assert!(replayed.stats().wal_entries > 0, "arrivals came back via replay");
    assert_eq!(battery(&replayed), before, "replayed rankings are byte-identical");

    // ...and via snapshot + reopen.
    replayed.snapshot().unwrap();
    drop(replayed);
    let reopened = Store::open(&multi_dir).unwrap();
    assert_eq!(reopened.stats().wal_entries, 0);
    assert_eq!(battery(&reopened), before, "snapshot rankings are byte-identical");
}

/// Options shape the ranking the way the protocol promises: `k`
/// truncates a prefix of the default ranking, and `min_score` is an
/// inclusive floor.
#[test]
fn resolve_options_truncate_and_floor_the_default_ranking() {
    let dir = fresh_dir("options");
    let store = Store::create(&dir, trained_resolver(120, 29), 2).unwrap();
    for record in arrivals(20) {
        store.add_record(record).unwrap();
    }

    let full = store.resolve("Lewi", &ResolveOptions { k: usize::MAX, ..Default::default() });
    assert!(full.hits.len() >= 2, "need at least two candidates: {:?}", full.hits);
    for k in 1..full.hits.len() {
        let truncated = store.resolve("Lewi", &ResolveOptions { k, ..Default::default() });
        assert_eq!(truncated.hits, full.hits[..k], "k={k} is a prefix");
    }
    let floor = full.hits[0].score;
    let floored =
        store.resolve("Lewi", &ResolveOptions { min_score: floor, ..Default::default() });
    assert!(floored.hits.iter().all(|h| h.score >= floor));
    assert!(floored.hits.contains(&full.hits[0]), "the floor is inclusive");
}
