//! End-to-end serving: concurrent TCP clients, durable arrivals, and
//! kill/restart identity (snapshot + WAL replay reproduce exactly the
//! pre-crash query results).

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use yv_core::{IncrementalConfig, IncrementalResolver, PersonQuery, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig};
use yv_store::{serve, Store};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yv-store-e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trained_resolver(n_records: usize, seed: u64) -> IncrementalResolver {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    IncrementalResolver::bootstrap(gen.dataset, pipeline, config, IncrementalConfig::default())
}

/// Send one request line, read the full response block (through the `.`
/// terminator).
fn roundtrip(stream: &mut TcpStream, request: &str) -> Vec<String> {
    stream.write_all(format!("{request}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server closed mid-response");
        let line = line.trim_end().to_owned();
        if line == "." {
            return lines;
        }
        lines.push(line);
    }
}

/// One-shot client: connect, run requests in order, return all responses.
fn client(addr: std::net::SocketAddr, requests: &[&str]) -> Vec<Vec<String>> {
    let mut stream = TcpStream::connect(addr).unwrap();
    requests.iter().map(|r| roundtrip(&mut stream, r)).collect()
}

/// The query battery whose answers must survive a restart.
const QUERIES: &[&str] = &[
    "QUERY first=Guido",
    "QUERY last=Foa certainty=1.0",
    "QUERY first=Sara last=Levi",
    "QUERY certainty=0.5",
    "QUERY first=Moshe similarity=0.8",
];

#[test]
fn concurrent_clients_durable_adds_and_restart_identity() {
    let dir = fresh_dir("serve-restart");
    let store = Store::create(&dir, trained_resolver(250, 21)).unwrap();
    let records_before = store.stats().records;

    // ---- first server lifetime -------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve(store, listener, 6).unwrap());

    // Four clients hammer queries concurrently.
    let concurrent: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || client(addr, QUERIES)))
        .collect();
    let concurrent_answers: Vec<Vec<Vec<String>>> =
        concurrent.into_iter().map(|t| t.join().unwrap()).collect();
    // Same battery, same store — every client saw identical answers.
    for other in &concurrent_answers[1..] {
        assert_eq!(&concurrent_answers[0], other);
    }
    for (query, answer) in QUERIES.iter().zip(&concurrent_answers[0]) {
        assert!(answer[0].starts_with("OK "), "{query} -> {answer:?}");
    }

    // A writer adds two records (durable via WAL), then the battery again.
    let adds = client(
        addr,
        &[
            "ADD book=900001 source=0 first=Guido last=Foa gender=m year=1936",
            "ADD book=900002 source=0 first=Sara last=Levi gender=f year=1921",
        ],
    );
    for response in &adds {
        assert!(response[0].starts_with("OK matches="), "{response:?}");
    }
    let after_adds = client(addr, QUERIES);
    let stats = client(addr, &["STATS"]);
    assert!(stats[0][0].contains(&format!("records={}", records_before + 2)), "{stats:?}");
    assert!(stats[0][0].contains("wal=2"), "{stats:?}");
    assert!(stats[0][0].contains("wal_bytes="), "{stats:?}");

    // Per-command metrics: one CMD line per command kind, with counters
    // and latency percentiles.
    let cmd_lines: Vec<&String> =
        stats[0].iter().filter(|l| l.starts_with("CMD ")).collect();
    assert_eq!(cmd_lines.len(), 6, "one row per command kind: {stats:?}");
    let query_line = cmd_lines
        .iter()
        .find(|l| l.starts_with("CMD QUERY "))
        .unwrap_or_else(|| panic!("{stats:?}"));
    // 4 concurrent clients ran the 5-query battery, plus one more pass.
    assert!(query_line.contains(&format!("count={}", 5 * QUERIES.len())), "{query_line}");
    for field in ["errors=", "mean_us=", "p50_us=", "p95_us=", "p99_us="] {
        assert!(query_line.contains(field), "{query_line}");
    }
    let add_line =
        cmd_lines.iter().find(|l| l.starts_with("CMD ADD ")).unwrap_or_else(|| panic!());
    assert!(add_line.contains("count=2"), "{add_line}");
    assert!(cmd_lines.iter().any(|l| l.starts_with("CMD SNAPSHOT ")), "{stats:?}");

    // Protocol errors are reported, not fatal.
    let errs = client(addr, &["FROB", "ADD book=1 source=99999 first=X"]);
    assert!(errs[0][0].starts_with("ERR "));
    assert!(errs[1][0].starts_with("ERR "));

    // Graceful shutdown flushes the WAL into a fresh snapshot.
    let bye = client(addr, &["SHUTDOWN"]);
    assert_eq!(bye[0][0], "OK bye");
    let store = server.join().unwrap();
    assert_eq!(store.stats().records, records_before + 2);
    assert_eq!(store.stats().wal_entries, 0, "shutdown folds the WAL");
    drop(store);

    // ---- second lifetime: reopen from disk -------------------------
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().records, records_before + 2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr2 = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve(store, listener, 4).unwrap());
    let after_restart = client(addr2, QUERIES);
    assert_eq!(
        after_adds, after_restart,
        "restarted server must answer the battery identically"
    );
    client(addr2, &["SHUTDOWN"]);
    server.join().unwrap();
}

/// A slow-log sink the test can read back after the server returns.
#[derive(Clone)]
struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn metrics_command_and_sidecar_scrape_expose_prometheus_text() {
    let dir = fresh_dir("metrics-scrape");
    let store = Store::create(&dir, trained_resolver(150, 55)).unwrap();
    let records = store.stats().records;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let metrics_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let metrics_addr = metrics_listener.local_addr().unwrap();
    let options = yv_store::ServeOptions {
        workers: 2,
        metrics_listener: Some(metrics_listener),
        ..yv_store::ServeOptions::default()
    };
    let server =
        std::thread::spawn(move || yv_store::serve_with(store, listener, options).unwrap());

    // Generate some traffic, then scrape through the protocol command.
    client(addr, &["QUERY first=Guido", "QUERY last=Levi"]);
    let metrics = client(addr, &["METRICS"]);
    assert_eq!(metrics[0][0], "OK metrics");
    let body = metrics[0][1..].join("\n");
    // One histogram series per protocol command, with cumulative buckets.
    for kind in ["query", "add", "stats", "metrics", "snapshot", "shutdown"] {
        assert!(
            body.contains(&format!("# TYPE yv_cmd_{kind}_latency_us histogram")),
            "missing {kind} histogram in:\n{body}"
        );
        assert!(body.contains(&format!("yv_cmd_{kind}_latency_us_bucket{{le=\"+Inf\"}}")));
    }
    assert!(body.contains("yv_cmd_query_latency_us_count 2"), "{body}");
    // Store gauges reflect the live store; allocator gauges are present
    // (zero unless the counting allocator is installed).
    assert!(body.contains(&format!("yv_store_records {records}")), "{body}");
    for gauge in [
        "yv_store_wal_bytes",
        "yv_store_postings",
        "yv_store_vocabulary",
        "yv_store_entity_maps_cached",
        "yv_alloc_bytes_total",
        "yv_alloc_live_bytes",
        "yv_alloc_peak_bytes",
    ] {
        assert!(body.contains(&format!("\n{gauge} ")), "missing {gauge} in:\n{body}");
    }

    // Scrape the sidecar like Prometheus would: plain HTTP/1.1.
    let mut scrape = TcpStream::connect(metrics_addr).unwrap();
    scrape.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut http = String::new();
    BufReader::new(scrape).read_to_string(&mut http).unwrap();
    assert!(http.starts_with("HTTP/1.1 200 OK\r\n"), "{http}");
    assert!(http.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"));
    let http_body = http.split("\r\n\r\n").nth(1).unwrap();
    assert!(http_body.contains("yv_cmd_query_latency_us_bucket{le=\"+Inf\"}"), "{http}");
    assert!(http_body.contains("yv_store_records"), "{http}");
    // The advertised length matches the body exactly.
    let advertised: usize = http
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(advertised, http_body.len());

    // Unknown paths are 404s, and the server survives them.
    let mut bad = TcpStream::connect(metrics_addr).unwrap();
    bad.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut not_found = String::new();
    BufReader::new(bad).read_to_string(&mut not_found).unwrap();
    assert!(not_found.starts_with("HTTP/1.1 404 "), "{not_found}");

    client(addr, &["SHUTDOWN"]);
    server.join().unwrap();
}

#[test]
fn slow_log_emits_one_json_line_per_slow_request() {
    let dir = fresh_dir("slow-log");
    let store = Store::create(&dir, trained_resolver(120, 66)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sink = SharedSink(std::sync::Arc::new(std::sync::Mutex::new(Vec::new())));
    let log = sink.clone();
    let options = yv_store::ServeOptions {
        workers: 2,
        // Threshold zero: every request is "slow", making the test
        // deterministic without timing games.
        slow_us: Some(0),
        slow_log: Some(Box::new(log)),
        ..yv_store::ServeOptions::default()
    };
    let server =
        std::thread::spawn(move || yv_store::serve_with(store, listener, options).unwrap());

    client(addr, &["QUERY first=Guido", "STATS", "FROB"]);
    client(addr, &["SHUTDOWN"]);
    server.join().unwrap();

    let logged = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = logged.lines().collect();
    assert_eq!(lines.len(), 4, "{logged}");
    for line in &lines {
        assert!(line.starts_with("{\"slow_request\":true,\"conn\":"), "{line}");
        for field in ["\"command\":\"", "\"args_digest\":\"", "\"latency_us\":"] {
            assert!(line.contains(field), "{line}");
        }
        assert!(line.ends_with('}'), "{line}");
    }
    assert!(lines.iter().any(|l| l.contains("\"command\":\"QUERY\"")), "{logged}");
    assert!(lines.iter().any(|l| l.contains("\"command\":\"STATS\"")), "{logged}");
    assert!(lines.iter().any(|l| l.contains("\"command\":\"INVALID\"")), "{logged}");
    assert!(lines.iter().any(|l| l.contains("\"command\":\"SHUTDOWN\"")), "{logged}");
    // Identical requests digest identically; the raw arguments never
    // appear in the log.
    assert!(!logged.contains("Guido"), "{logged}");
}

#[test]
fn kill_without_snapshot_replays_the_wal() {
    let dir = fresh_dir("kill-replay");
    let mut store = Store::create(&dir, trained_resolver(200, 33)).unwrap();

    // Apply arrivals through the durable path, then record the answers.
    let extra = yv_records::RecordBuilder::new(900_100, yv_records::SourceId(0))
        .first_name("Guido")
        .last_name("Foa")
        .build();
    store.add_record(extra).unwrap();
    let query = PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() };
    let before: Vec<_> = store.query(&query);
    let stats_before = store.stats();
    assert_eq!(stats_before.wal_entries, 1);

    // "Kill": drop without snapshotting. The WAL is the only trace of the
    // arrival.
    drop(store);

    let store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().records, stats_before.records);
    assert_eq!(store.stats().wal_entries, 1, "arrival came back via replay");
    assert_eq!(store.query(&query), before, "replayed store answers identically");
}

#[test]
fn store_queries_match_person_query_run() {
    let dir = fresh_dir("index-equivalence");
    let resolver = trained_resolver(250, 44);
    let store = Store::create(&dir, resolver).unwrap();
    let resolution = store.resolver().resolution();
    let queries = [
        PersonQuery::default(),
        PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() },
        PersonQuery {
            last_name: Some("Levi".into()),
            certainty: 1.0,
            ..PersonQuery::default()
        },
        PersonQuery {
            first_name: Some("Sara".into()),
            last_name: Some("Levi".into()),
            name_similarity: 0.8,
            ..PersonQuery::default()
        },
    ];
    for q in queries {
        assert_eq!(
            store.query(&q),
            q.run(store.dataset(), &resolution),
            "indexed query must equal the linear scan for {q:?}"
        );
    }
}
