//! End-to-end serving: concurrent TCP clients, durable arrivals, and
//! kill/restart identity (snapshot + WAL replay reproduce exactly the
//! pre-crash query results). Exercises the typed [`Client`] against a
//! live server throughout — the client and server halves of the
//! protocol are tested as one conversation, not against fixtures.

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use yv_core::{
    IncrementalConfig, IncrementalResolver, PersonQuery, Pipeline, PipelineConfig, QueryHit,
};
use yv_datagen::{tag_pairs, GenConfig};
use yv_store::client::{Client, ClientError, ClientOptions, Protocol};
use yv_store::{BatchStatus, RequestFrame, ServeOptions, Store, HELLO_LINE, HELLO_OK};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yv-store-e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trained_resolver(n_records: usize, seed: u64) -> IncrementalResolver {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    IncrementalResolver::bootstrap(gen.dataset, pipeline, config, IncrementalConfig::default())
}

/// The query battery whose answers must survive a restart.
fn queries() -> Vec<PersonQuery> {
    vec![
        PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() },
        PersonQuery { last_name: Some("Foa".into()), certainty: 1.0, ..PersonQuery::default() },
        PersonQuery {
            first_name: Some("Sara".into()),
            last_name: Some("Levi".into()),
            ..PersonQuery::default()
        },
        PersonQuery { certainty: 0.5, ..PersonQuery::default() },
        PersonQuery {
            first_name: Some("Moshe".into()),
            name_similarity: 0.8,
            ..PersonQuery::default()
        },
    ]
}

/// Run the battery over one connection.
fn run_battery(addr: std::net::SocketAddr) -> Vec<Vec<QueryHit>> {
    let mut client = Client::connect(addr).unwrap();
    queries().iter().map(|q| client.query(q).unwrap()).collect()
}

#[test]
fn concurrent_clients_durable_adds_and_restart_identity() {
    let dir = fresh_dir("serve-restart");
    let store = Store::create(&dir, trained_resolver(250, 21), 4).unwrap();
    let records_before = store.stats().records;

    // ---- first server lifetime -------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || ServeOptions::new(store).workers(6).serve(listener).unwrap());

    // Four clients hammer queries concurrently.
    let concurrent: Vec<_> =
        (0..4).map(|_| std::thread::spawn(move || run_battery(addr))).collect();
    let concurrent_answers: Vec<Vec<Vec<QueryHit>>> =
        concurrent.into_iter().map(|t| t.join().unwrap()).collect();
    // Same battery, same store — every client saw identical answers.
    for other in &concurrent_answers[1..] {
        assert_eq!(&concurrent_answers[0], other);
    }

    // A writer adds two records (durable via the WALs), then the battery
    // again.
    let mut writer = Client::connect(addr).unwrap();
    for record in [
        yv_records::RecordBuilder::new(900_001, yv_records::SourceId(0))
            .first_name("Guido")
            .last_name("Foa")
            .gender(yv_records::Gender::Male)
            .birth(yv_records::DateParts { year: Some(1936), ..Default::default() })
            .build(),
        yv_records::RecordBuilder::new(900_002, yv_records::SourceId(0))
            .first_name("Sara")
            .last_name("Levi")
            .gender(yv_records::Gender::Female)
            .birth(yv_records::DateParts { year: Some(1921), ..Default::default() })
            .build(),
    ] {
        writer.add(&record).unwrap();
    }
    let after_adds = run_battery(addr);

    let stats = writer.stats().unwrap();
    assert_eq!(stats.records, records_before + 2);
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.wal_entries, 2);
    assert!(stats.wal_bytes > 0);
    // Per-shard rows cover every shard exactly once and sum to the
    // aggregates.
    assert_eq!(stats.shard_rows.len(), 4);
    for (i, row) in stats.shard_rows.iter().enumerate() {
        assert_eq!(row.shard, i);
    }
    assert_eq!(
        stats.shard_rows.iter().map(|r| r.records).sum::<usize>(),
        stats.records,
        "{stats:?}"
    );
    assert_eq!(stats.shard_rows.iter().map(|r| r.wal_entries).sum::<usize>(), 2);
    assert_eq!(stats.shard_rows.iter().map(|r| r.wal_bytes).sum::<u64>(), stats.wal_bytes);

    // Per-command metrics: one CMD row per command kind, with counters
    // and latency percentiles.
    assert_eq!(stats.commands.len(), 10, "{stats:?}");
    let query_row = stats.commands.iter().find(|c| c.name == "QUERY").unwrap();
    // 4 concurrent clients ran the 5-query battery, plus one more pass.
    assert_eq!(query_row.count as usize, 5 * queries().len(), "{query_row:?}");
    assert!(query_row.max_us >= query_row.p50_us.min(query_row.mean_us), "{query_row:?}");
    let add_row = stats.commands.iter().find(|c| c.name == "ADD").unwrap();
    assert_eq!(add_row.count, 2);
    assert!(stats.commands.iter().any(|c| c.name == "SNAPSHOT"));
    assert!(stats.commands.iter().any(|c| c.name == "TOP"));
    assert!(stats.commands.iter().any(|c| c.name == "TRACE"));
    assert!(stats.commands.iter().any(|c| c.name == "HISTORY"));

    // Server-side errors surface as typed client errors, not broken
    // connections.
    let unknown_source = yv_records::RecordBuilder::new(1, yv_records::SourceId(99_999))
        .first_name("X")
        .build();
    assert!(matches!(writer.add(&unknown_source), Err(ClientError::Server(_))));
    // The connection survives the error.
    assert!(writer.stats().is_ok());

    // Graceful shutdown flushes the WALs into fresh snapshots.
    writer.shutdown().unwrap();
    let store = server.join().unwrap();
    assert_eq!(store.stats().records, records_before + 2);
    assert_eq!(store.stats().wal_entries, 0, "shutdown folds the WALs");
    drop(store);

    // ---- second lifetime: reopen from disk -------------------------
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().records, records_before + 2);
    assert_eq!(store.n_shards(), 4, "shard count persists in the manifest");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr2 = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || ServeOptions::new(store).workers(4).serve(listener).unwrap());
    let after_restart = run_battery(addr2);
    assert_eq!(
        after_adds, after_restart,
        "restarted server must answer the battery identically"
    );
    Client::connect(addr2).unwrap().shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn resolve_serves_ranked_candidates_and_typed_errors() {
    let dir = fresh_dir("resolve-e2e");
    let store = Store::create(&dir, trained_resolver(200, 77), 3).unwrap();
    let records_before = store.stats().records;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || ServeOptions::new(store).workers(2).serve(listener).unwrap());

    let mut client = Client::connect(addr).unwrap();
    // Plant a known name, then resolve a one-edit misspelling of it.
    let planted = yv_records::RecordBuilder::new(900_010, yv_records::SourceId(0))
        .first_name("Guido")
        .last_name("Postel")
        .build();
    client.add(&planted).unwrap();
    let planted_rid = yv_records::RecordId(u32::try_from(records_before).unwrap());

    let hits = client.resolve("Postl", Some(5), None).unwrap();
    assert!(!hits.is_empty(), "a one-edit typo must surface candidates");
    assert!(
        hits.iter().is_sorted_by(|a, b| a.score >= b.score),
        "candidates arrive ranked: {hits:?}"
    );
    let postel = hits.iter().find(|h| h.name == "postel").expect("planted name surfaces");
    assert!(postel.members.contains(&planted_rid), "{postel:?}");
    assert!(postel.score > 0.0 && postel.score <= 1.0, "{postel:?}");

    // min= filters, k= truncates.
    let all = client.resolve("Postl", Some(100), None).unwrap();
    let top = client.resolve("Postl", Some(1), None).unwrap();
    assert_eq!(top.len(), 1);
    assert_eq!(top[0], all[0]);
    let min = all[0].score;
    for hit in client.resolve("Postl", Some(100), Some(min)).unwrap() {
        assert!(hit.score >= min, "min= is an inclusive floor: {hit:?}");
    }

    // Misuse surfaces as a typed server error with a dedicated message —
    // and the connection survives it.
    let err = client.resolve("Postl", Some(0), None).unwrap_err();
    assert!(err.is_server(), "{err:?}");
    assert_eq!(err.server_message(), Some("RESOLVE: k must be at least 1"));
    let err = client.resolve("k=3", None, None).unwrap_err();
    assert!(err.is_server() && !err.is_transport(), "{err:?}");
    assert!(err.server_message().unwrap().contains("name must come before options"), "{err:?}");
    // Non-numeric k=/min= can't be produced through the typed client;
    // send them raw and pin the dedicated messages.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        for (request, expect) in [
            ("RESOLVE Postl k=three\n", "ERR RESOLVE: bad k value \"three\""),
            ("RESOLVE Postl min=high\n", "ERR RESOLVE: bad min value \"high\""),
        ] {
            raw.write_all(request.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with(expect), "{request:?} -> {line:?}");
            let mut dot = String::new();
            reader.read_line(&mut dot).unwrap();
            assert_eq!(dot, ".\n");
        }
    }
    assert!(client.resolve("Postl", None, None).is_ok(), "connection survives misuse");

    // The STATS report accounts for the fuzzy index and the RESOLVE
    // traffic above.
    let stats = client.stats().unwrap();
    assert!(stats.fuzzy_names > 0 && stats.fuzzy_postings >= stats.fuzzy_names);
    assert!(stats.fuzzy_examined > 0, "{stats:?}");
    assert_eq!(
        stats.shard_rows.iter().map(|r| r.fuzzy_postings).sum::<usize>(),
        stats.fuzzy_postings
    );
    let resolve_row = stats.commands.iter().find(|c| c.name == "RESOLVE").unwrap();
    assert_eq!(resolve_row.count, 5, "{resolve_row:?}");

    client.shutdown().unwrap();
    server.join().unwrap();
}

/// A slow-log sink the test can read back after the server returns.
#[derive(Clone)]
struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn metrics_command_and_sidecar_scrape_expose_prometheus_text() {
    let dir = fresh_dir("metrics-scrape");
    let store = Store::create(&dir, trained_resolver(150, 55), 2).unwrap();
    let records = store.stats().records;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let metrics_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let metrics_addr = metrics_listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        ServeOptions::new(store)
            .workers(2)
            .metrics_listener(metrics_listener)
            .serve(listener)
            .unwrap()
    });

    // Generate some traffic, then scrape through the protocol command.
    let mut client = Client::connect(addr).unwrap();
    client
        .query(&PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() })
        .unwrap();
    client
        .query(&PersonQuery { last_name: Some("Levi".into()), ..PersonQuery::default() })
        .unwrap();
    let body = client.metrics().unwrap();
    // One histogram series per protocol command, with cumulative buckets.
    for kind in
        ["query", "resolve", "add", "stats", "metrics", "top", "trace", "snapshot", "shutdown"]
    {
        assert!(
            body.contains(&format!("# TYPE yv_cmd_{kind}_latency_us histogram")),
            "missing {kind} histogram in:\n{body}"
        );
        assert!(body.contains(&format!("yv_cmd_{kind}_latency_us_bucket{{le=\"+Inf\"}}")));
    }
    assert!(body.contains("yv_cmd_query_latency_us_count 2"), "{body}");
    // Store gauges reflect the live store; per-shard gauges cover every
    // shard; allocator gauges are present (zero unless the counting
    // allocator is installed).
    assert!(body.contains(&format!("yv_store_records {records}")), "{body}");
    assert!(body.contains("yv_store_shards 2"), "{body}");
    for gauge in [
        "yv_store_wal_bytes",
        "yv_store_postings",
        "yv_store_vocabulary",
        "yv_store_entity_maps_cached",
        "yv_store_fuzzy_names",
        "yv_store_fuzzy_grams",
        "yv_store_fuzzy_postings",
        "yv_store_fuzzy_examined_total",
        "yv_store_fuzzy_pruned_total",
        "yv_shard_0_records",
        "yv_shard_0_postings",
        "yv_shard_0_wal_bytes",
        "yv_shard_1_records",
        "yv_shard_1_postings",
        "yv_shard_1_wal_bytes",
        "yv_alloc_bytes_total",
        "yv_alloc_live_bytes",
        "yv_alloc_peak_bytes",
        "yv_trace_ring_capacity",
        "yv_trace_ring_occupancy",
        "yv_trace_ring_captured_total",
        "yv_trace_ring_evicted_total",
        "yv_trace_ring_sampled_total",
        "yv_trace_last_slow_id",
    ] {
        assert!(body.contains(&format!("\n{gauge} ")), "missing {gauge} in:\n{body}");
    }

    // Scrape the sidecar like Prometheus would: plain HTTP/1.1.
    let mut scrape = TcpStream::connect(metrics_addr).unwrap();
    scrape.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut http = String::new();
    BufReader::new(scrape).read_to_string(&mut http).unwrap();
    assert!(http.starts_with("HTTP/1.1 200 OK\r\n"), "{http}");
    assert!(http.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"));
    let http_body = http.split("\r\n\r\n").nth(1).unwrap();
    assert!(http_body.contains("yv_cmd_query_latency_us_bucket{le=\"+Inf\"}"), "{http}");
    assert!(http_body.contains("yv_store_records"), "{http}");
    assert!(http_body.contains("yv_shard_1_records"), "{http}");
    // The advertised length matches the body exactly.
    let advertised: usize = http
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(advertised, http_body.len());

    // Unknown paths are 404s, and the server survives them.
    let mut bad = TcpStream::connect(metrics_addr).unwrap();
    bad.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut not_found = String::new();
    BufReader::new(bad).read_to_string(&mut not_found).unwrap();
    assert!(not_found.starts_with("HTTP/1.1 404 "), "{not_found}");

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn slow_log_emits_one_json_line_per_slow_request() {
    let dir = fresh_dir("slow-log");
    let store = Store::create(&dir, trained_resolver(120, 66), 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sink = SharedSink(std::sync::Arc::new(std::sync::Mutex::new(Vec::new())));
    let log = sink.clone();
    let server = std::thread::spawn(move || {
        ServeOptions::new(store)
            .workers(2)
            // Threshold zero: every request is "slow", making the test
            // deterministic without timing games.
            .slow_us(0)
            .slow_log(Box::new(log))
            .serve(listener)
            .unwrap()
    });

    let mut client = Client::connect(addr).unwrap();
    client
        .query(&PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() })
        .unwrap();
    client.stats().unwrap();
    // A raw malformed request still gets logged (as INVALID) — sent
    // outside the typed client, which cannot produce one.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"FROB\n").unwrap();
        let mut line = String::new();
        BufReader::new(raw.try_clone().unwrap()).read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR "), "{line}");
    }
    client.shutdown().unwrap();
    server.join().unwrap();

    let logged = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = logged.lines().collect();
    assert_eq!(lines.len(), 4, "{logged}");
    for line in &lines {
        assert!(line.starts_with("{\"slow_request\":true,\"conn\":"), "{line}");
        for field in ["\"command\":\"", "\"args_digest\":\"", "\"latency_us\":", "\"trace\":\""] {
            assert!(line.contains(field), "{line}");
        }
        // Every slow line names a real trace id, cross-referenceable
        // against TRACE (INVALID included — parse failures are traced).
        assert!(!line.contains("\"trace\":\"0000000000000000\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    assert!(lines.iter().any(|l| l.contains("\"command\":\"QUERY\"")), "{logged}");
    assert!(lines.iter().any(|l| l.contains("\"command\":\"STATS\"")), "{logged}");
    assert!(lines.iter().any(|l| l.contains("\"command\":\"INVALID\"")), "{logged}");
    assert!(lines.iter().any(|l| l.contains("\"command\":\"SHUTDOWN\"")), "{logged}");
    // Identical requests digest identically; the raw arguments never
    // appear in the log.
    assert!(!logged.contains("Guido"), "{logged}");
}

/// One raw request/response exchange over an already-open connection.
fn raw_exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> (String, Vec<String>) {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    let mut data = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed mid-response");
        if line == ".\n" {
            break;
        }
        data.push(line);
    }
    (status, data)
}

/// The tracing acceptance path: a slow RESOLVE against a 4-shard store
/// hands back a `trace=` id on its status line; `TRACE <id>` serves the
/// span tree accept → parse → shard fan-out (one child per shard) →
/// merge → reply; `TOP` cross-references the same id in its ring
/// counters and SLOW rows; and under an injected [`ManualClock`] the
/// whole rendering is byte-identical across independent server
/// instances.
#[test]
fn trace_of_a_slow_resolve_serves_the_span_tree_and_top_deterministically() {
    fn run(tag: &str) -> String {
        let dir = fresh_dir(tag);
        let store = Store::create(&dir, trained_resolver(200, 88), 4).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clock = std::sync::Arc::new(yv_obs::ManualClock::at(0));
        let server = std::thread::spawn(move || {
            ServeOptions::new(store)
                .workers(2)
                // Threshold zero under a manual clock: every captured
                // request tail-samples, no timing games.
                .slow_us(0)
                .slow_log(Box::new(std::io::sink()))
                .trace_seed(0xfeed_beef)
                .clock(clock)
                .serve(listener)
                .unwrap()
        });

        let mut raw = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let (status, _) = raw_exchange(&mut raw, &mut reader, "RESOLVE Levi k=3");
        assert!(status.starts_with("OK "), "{status}");
        let id_hex = status
            .split_whitespace()
            .find_map(|t| t.strip_prefix("trace="))
            .unwrap_or_else(|| panic!("no trace= token in {status:?}"));
        let id = u64::from_str_radix(id_hex, 16).unwrap();
        assert_ne!(id, 0, "trace id 0 means untraced");

        // The typed client parses the span tree.
        let mut client = Client::connect(addr).unwrap();
        let report = client.trace_get(id).unwrap();
        assert_eq!(report.id, id);
        assert_eq!(report.command, "RESOLVE");
        assert!(report.ok, "{report:?}");
        assert_eq!(report.conn, 0, "the raw socket was the first connection");
        assert_eq!(report.dropped_spans, 0);
        let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["accept", "parse", "shard_fanout", "shard", "shard", "shard", "shard", "merge",
             "reply"],
            "{report:?}"
        );
        // The per-shard children cover every shard exactly once, nested
        // one level under the fan-out, each annotated with its local
        // candidate count.
        let shards: Vec<u32> = report.spans.iter().filter_map(|s| s.shard).collect();
        assert_eq!(shards, [0, 1, 2, 3], "{report:?}");
        for span in report.spans.iter().filter(|s| s.shard.is_some()) {
            assert_eq!(span.depth, 1, "{span:?}");
            assert!(span.args.iter().any(|(k, _)| k == "cands"), "{span:?}");
        }
        // The queried name never enters the trace — only its digest.
        assert!(report.args.iter().any(|(k, _)| k == "name_digest"), "{report:?}");
        assert!(!format!("{report:?}").contains("Levi"));

        // TOP cross-references the same id: captured, tail-sampled, and
        // recorded as the most recent slow trace.
        let top = client.top(None).unwrap();
        assert!(top.ring.capacity > 0 && top.ring.occupancy >= 1, "{top:?}");
        assert!(top.ring.captured >= 1 && top.ring.sampled >= 1, "{top:?}");
        assert_eq!(top.ring.last_slow, id, "{top:?}");
        assert!(top.slow.iter().any(|s| s.trace == id && s.command == "RESOLVE"), "{top:?}");
        let resolve_row = top.commands.iter().find(|c| c.name == "RESOLVE").unwrap();
        assert_eq!(resolve_row.count, 1, "{resolve_row:?}");

        // TRACE of an unknown id is a typed refusal — and the connection
        // survives it.
        let err = client.trace_get(0x1).unwrap_err();
        assert!(err.is_server(), "{err:?}");
        assert!(err.server_message().unwrap().contains("no trace"), "{err:?}");
        assert!(client.top(Some(1)).is_ok());

        // Raw TRACE bytes for the cross-instance determinism check.
        let (trace_status, trace_data) =
            raw_exchange(&mut raw, &mut reader, &format!("TRACE {id:016x}"));

        // Close the raw connection before SHUTDOWN so its worker drains.
        drop(reader);
        drop(raw);
        client.shutdown().unwrap();
        server.join().unwrap();
        format!("{trace_status}{}", trace_data.concat())
    }

    let first = run("trace-e2e-a");
    let second = run("trace-e2e-b");
    assert_eq!(first, second, "same seed + manual clock must render byte-identical traces");
}

/// Windowed-telemetry acceptance: under an injected [`ManualClock`] a
/// 4-shard server answers `HISTORY resolve` byte-identically across two
/// independently seeded instances, and — because every closed bucket is
/// persisted to `telemetry.yvt` — byte-identically again after a restart
/// with NO new traffic and a clock back at the origin (pure replay).
#[test]
fn history_is_byte_identical_across_seeds_and_replays_across_restart() {
    fn drive(store: Store, dir: &std::path::Path, traffic: bool) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clock = std::sync::Arc::new(yv_obs::ManualClock::at(0));
        let driver_clock = clock.clone();
        let telemetry_dir = dir.join("telemetry");
        let server = std::thread::spawn(move || {
            ServeOptions::new(store)
                .workers(2)
                .clock(clock)
                .telemetry_dir(telemetry_dir)
                .slo(vec![yv_obs::SloRule::parse("resolve:p99<1000000/60").unwrap()])
                .serve(listener)
                .unwrap()
        });

        let mut raw = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        if traffic {
            // Epochs 0, 1, 2 get 1, 2, 3 resolves; the manual clock makes
            // every latency exactly zero, so the rollups are deterministic.
            for epoch in 0..3u64 {
                for _ in 0..=epoch {
                    let (status, _) = raw_exchange(&mut raw, &mut reader, "RESOLVE Levi k=3");
                    assert!(status.starts_with("OK "), "{status}");
                }
                driver_clock.advance(1_000_000_000);
                // Rotation is lazy; close the passed boundary from the
                // protocol at a deterministic point. The real-time ticker
                // racing in is harmless — rotation is idempotent and a
                // function of clock state only.
                let (status, _) = raw_exchange(&mut raw, &mut reader, "HISTORY resolve window=1");
                assert!(status.starts_with("OK "), "{status}");
            }
        }
        // In the replay leg the clock stays at the origin: views anchor at
        // the restored open epoch, so history is visible immediately.
        let (status, data) = raw_exchange(&mut raw, &mut reader, "HISTORY resolve window=5");
        assert!(status.starts_with("OK "), "{status}");
        let rendered = format!("{status}{}", data.concat());

        // The typed client agrees with the raw bytes.
        let mut client = Client::connect(addr).unwrap();
        let report = client.history("resolve", Some(5), None).unwrap();
        assert_eq!(report.metric, "resolve");
        assert_eq!(report.tier, "s");
        assert_eq!(report.now_epoch, 3, "{report:?}");
        assert_eq!(
            report.buckets.iter().map(|b| (b.epoch, b.count)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 3)],
            "{report:?}"
        );
        assert_eq!(report.summary.count, 6);
        assert_eq!(report.slo.len(), 1);
        assert_eq!(report.slo[0].state, "ok", "zero-latency resolves never burn budget");

        drop(reader);
        drop(raw);
        client.shutdown().unwrap();
        server.join().unwrap();
        rendered
    }

    let dir_a = fresh_dir("history-e2e-a");
    let dir_b = fresh_dir("history-e2e-b");
    let first = drive(Store::create(&dir_a, trained_resolver(200, 88), 4).unwrap(), &dir_a, true);
    let second = drive(Store::create(&dir_b, trained_resolver(200, 88), 4).unwrap(), &dir_b, true);
    assert_eq!(first, second, "same seed + manual clock must render byte-identical HISTORY");
    let replayed = drive(Store::open(&dir_a).unwrap(), &dir_a, false);
    assert_eq!(first, replayed, "restart must replay telemetry.yvt byte-identically");
}

#[test]
fn kill_without_snapshot_replays_the_wal() {
    let dir = fresh_dir("kill-replay");
    let store = Store::create(&dir, trained_resolver(200, 33), 3).unwrap();

    // Apply arrivals through the durable path, then record the answers.
    let extra = yv_records::RecordBuilder::new(900_100, yv_records::SourceId(0))
        .first_name("Guido")
        .last_name("Foa")
        .build();
    store.add_record(extra).unwrap();
    let query = PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() };
    let before: Vec<_> = store.query(&query);
    let stats_before = store.stats();
    assert_eq!(stats_before.wal_entries, 1);

    // "Kill": drop without snapshotting. The WAL is the only trace of the
    // arrival.
    drop(store);

    let store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().records, stats_before.records);
    assert_eq!(store.stats().wal_entries, 1, "arrival came back via replay");
    assert_eq!(store.query(&query), before, "replayed store answers identically");
}

/// Run the battery over an already-connected client (either transport).
fn battery_with(client: &mut Client) -> Vec<Vec<QueryHit>> {
    queries().iter().map(|q| client.query(q).unwrap()).collect()
}

/// Speak `HELLO proto=binary` on a raw socket and consume the text
/// acknowledgement block, leaving the stream in binary framing.
fn raw_hello(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    stream.write_all(HELLO_LINE.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert_eq!(status.trim_end(), HELLO_OK);
    let mut dot = String::new();
    reader.read_line(&mut dot).unwrap();
    assert_eq!(dot, ".\n");
}

/// The binary-vs-text acceptance path: one seeded 4-shard server, a
/// text client, a `HELLO`-negotiated binary client and a `Negotiate`
/// client side by side on concurrent connections. QUERY and RESOLVE
/// answers are identical across transports; `BATCH_ADD` streams records
/// with per-record statuses (errors included, in submission order) that
/// the text session then observes; the per-command metrics table stays
/// at exactly the ten command kinds on both transports.
#[test]
fn binary_negotiation_matches_text_semantics_and_streams_batches() {
    let dir = fresh_dir("binary-parity");
    let store = Store::create(&dir, trained_resolver(250, 21), 4).unwrap();
    let records_before = store.stats().records;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || ServeOptions::new(store).workers(4).serve(listener).unwrap());

    // Three concurrent sessions, one per connection flavor. The plain
    // text session keeps working while binary frames flow on the others.
    let mut text = Client::connect(addr).unwrap();
    assert_eq!(text.protocol(), Protocol::Text);
    let mut binary = ClientOptions::new().protocol(Protocol::Binary).connect(addr).unwrap();
    assert_eq!(binary.protocol(), Protocol::Binary);
    let mut negotiated = ClientOptions::new().protocol(Protocol::Negotiate).connect(addr).unwrap();
    assert_eq!(negotiated.protocol(), Protocol::Binary, "a binary server upgrades Negotiate");

    // QUERY: every transport answers the battery identically.
    let text_answers = battery_with(&mut text);
    let binary_answers = battery_with(&mut binary);
    let negotiated_answers = battery_with(&mut negotiated);
    assert_eq!(text_answers, binary_answers);
    assert_eq!(text_answers, negotiated_answers);

    // RESOLVE: identical hits, and identical typed refusals.
    assert_eq!(
        text.resolve("Lewi", Some(5), None).unwrap(),
        binary.resolve("Lewi", Some(5), None).unwrap()
    );
    assert_eq!(
        text.resolve("Lewi", Some(0), None).unwrap_err().server_message(),
        binary.resolve("Lewi", Some(0), None).unwrap_err().server_message()
    );

    // BATCH_ADD: valid records interleaved with a refusal; statuses come
    // back per record in submission order.
    let mut records = Vec::new();
    for i in 0..6u64 {
        records.push(
            yv_records::RecordBuilder::new(910_000 + i, yv_records::SourceId(0))
                .first_name("Guido")
                .last_name("Foa")
                .build(),
        );
    }
    records.insert(
        3,
        yv_records::RecordBuilder::new(910_999, yv_records::SourceId(99_999))
            .first_name("X")
            .build(),
    );
    let statuses = binary.batch_add(records).unwrap();
    assert_eq!(statuses.len(), 7);
    for (i, status) in statuses.iter().enumerate() {
        if i == 3 {
            let BatchStatus::Err(message) = status else {
                panic!("slot 3 must be refused: {statuses:?}");
            };
            assert!(message.contains("unknown source"), "{message}");
        } else {
            assert!(matches!(status, BatchStatus::Ok { .. }), "slot {i}: {statuses:?}");
        }
    }

    // The text session sees the batch arrivals immediately.
    let stats = text.stats().unwrap();
    assert_eq!(stats.records, records_before + 6);
    assert_eq!(stats.wal_entries, 6);
    // Batch records land under the ADD command kind; the table stays at
    // exactly the ten protocol commands on both transports.
    assert_eq!(stats.commands.len(), 10, "{stats:?}");
    let add_row = stats.commands.iter().find(|c| c.name == "ADD").unwrap();
    assert_eq!(add_row.count, 7, "six applied + one refused: {add_row:?}");
    assert_eq!(text.stats().unwrap().records, binary.stats().unwrap().records);

    // Both transports answer the post-batch battery identically too.
    assert_eq!(battery_with(&mut text), battery_with(&mut binary));

    drop(negotiated);
    drop(binary);
    text.shutdown().unwrap();
    let store = server.join().unwrap();
    assert_eq!(store.stats().records, records_before + 6);
}

/// A connection cut mid-`BATCH_ADD`-frame must leave the store exactly
/// as the last *complete* frame left it: the torn frame applies nothing
/// (the checksum gate never admits it), an earlier acknowledged batch on
/// the same connection stays durable, and the store reopens cleanly from
/// disk afterwards (group commit never leaves a WAL sequence gap).
#[test]
fn mid_frame_connection_drop_applies_nothing_from_the_torn_batch() {
    let dir = fresh_dir("torn-batch");
    let store = Store::create(&dir, trained_resolver(200, 33), 4).unwrap();
    let records_before = store.stats().records;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server =
        std::thread::spawn(move || ServeOptions::new(store).workers(2).serve(listener).unwrap());

    let batch = |base: u64, n: u64| -> Vec<yv_records::Record> {
        (0..n)
            .map(|i| {
                yv_records::RecordBuilder::new(base + i, yv_records::SourceId(0))
                    .first_name("Sara")
                    .last_name("Levi")
                    .build()
            })
            .collect()
    };

    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        raw_hello(&mut raw, &mut reader);
        // First batch: complete frame, acknowledged per record.
        let first = RequestFrame::BatchAdd(batch(920_000, 3)).encode().unwrap();
        raw.write_all(&first).unwrap();
        let reply = yv_store::ResponseFrame::read(&mut reader).unwrap().unwrap();
        let yv_store::ResponseFrame::Batch(statuses) = reply else {
            panic!("expected batch statuses, got {reply:?}");
        };
        assert_eq!(statuses.len(), 3);
        assert!(statuses.iter().all(|s| matches!(s, BatchStatus::Ok { .. })), "{statuses:?}");
        // Second batch: cut inside the payload, then drop the socket.
        let second = RequestFrame::BatchAdd(batch(920_100, 5)).encode().unwrap();
        raw.write_all(&second[..second.len() / 2]).unwrap();
        raw.flush().unwrap();
        // Connection drops here (FIN mid-frame).
    }

    // The server is still alive and serves the truth: the acknowledged
    // batch persists, the torn one contributed nothing.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.records, records_before + 3, "{stats:?}");
    assert_eq!(stats.wal_entries, 3, "{stats:?}");
    client.shutdown().unwrap();
    let store = server.join().unwrap();
    assert_eq!(store.stats().records, records_before + 3);
    drop(store);

    // The WALs merged cleanly — reopening must not report a gap.
    let reopened = Store::open(&dir).unwrap();
    assert_eq!(reopened.stats().records, records_before + 3);
}

/// Group commit is still write-ahead: a batch applied through
/// [`Store::add_records`] survives a kill (no snapshot) byte-for-byte —
/// the replayed store answers queries identically, because replay
/// applies the same shard-grouped arrival order the batch committed in.
#[test]
fn group_committed_batches_replay_after_a_kill() {
    let dir = fresh_dir("batch-kill-replay");
    let store = Store::create(&dir, trained_resolver(150, 55), 3).unwrap();
    let records_before = store.stats().records;
    let records: Vec<_> = (0..10u64)
        .map(|i| {
            yv_records::RecordBuilder::new(930_000 + i, yv_records::SourceId(0))
                .first_name("Guido")
                .last_name("Foa")
                .build()
        })
        .collect();
    let outcomes = store.add_records(records);
    assert_eq!(outcomes.len(), 10);
    assert!(outcomes.iter().all(Result::is_ok), "{outcomes:?}");
    let query = PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() };
    let before = store.query(&query);
    assert_eq!(store.stats().records, records_before + 10);
    assert_eq!(store.stats().wal_entries, 10);

    // "Kill": drop without snapshotting; the group-committed WAL frames
    // are the only trace of the batch.
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().records, records_before + 10);
    assert_eq!(store.stats().wal_entries, 10, "the batch came back via replay");
    assert_eq!(store.query(&query), before, "replayed store answers identically");
}

#[test]
fn store_queries_match_person_query_run() {
    let dir = fresh_dir("index-equivalence");
    let resolver = trained_resolver(250, 44);
    let store = Store::create(&dir, resolver, 4).unwrap();
    let resolution = store.resolution();
    let queries = [
        PersonQuery::default(),
        PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() },
        PersonQuery {
            last_name: Some("Levi".into()),
            certainty: 1.0,
            ..PersonQuery::default()
        },
        PersonQuery {
            first_name: Some("Sara".into()),
            last_name: Some("Levi".into()),
            name_similarity: 0.8,
            ..PersonQuery::default()
        },
    ];
    for q in queries {
        assert_eq!(
            store.query(&q),
            store.with_dataset(|ds| q.run(ds, &resolution)),
            "sharded fan-out must equal the linear scan for {q:?}"
        );
    }
}
