//! The entity-map memo is a bounded LRU: capacity is enforced, eviction
//! picks the least-recently-used threshold, evictions are counted, and a
//! re-derived map answers queries identically to the memoized one.

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use yv_core::{IncrementalConfig, IncrementalResolver, PersonQuery, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig};
use yv_store::{Store, DEFAULT_ENTITY_MAP_CAPACITY};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yv-store-lru").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn store(name: &str, n_records: usize, seed: u64) -> Store {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    let resolver = IncrementalResolver::bootstrap(
        gen.dataset,
        pipeline,
        config,
        IncrementalConfig::default(),
    );
    Store::create(&fresh_dir(name), resolver, 2).unwrap()
}

/// Distinct thresholds: f64 bit patterns differ, so each is its own key.
fn threshold(i: usize) -> f64 {
    0.05 + i as f64 * 0.1
}

#[test]
fn cache_population_is_bounded_by_capacity() {
    let store = store("bounded", 150, 7);
    store.set_entity_map_capacity(4);
    for i in 0..10 {
        let _ = store.entity_map(threshold(i));
    }
    let stats = store.stats();
    assert_eq!(stats.entity_maps_cached, 4);
    assert_eq!(stats.entity_map_evictions, 6, "10 inserts through a 4-slot cache");
}

#[test]
fn eviction_is_least_recently_used() {
    let store = store("lru-order", 150, 8);
    store.set_entity_map_capacity(2);
    let a = threshold(0);
    let b = threshold(1);
    let c = threshold(2);
    let _ = store.entity_map(a);
    let _ = store.entity_map(b);
    // Touch `a` so `b` is now least recently used.
    let _ = store.entity_map(a);
    let _ = store.entity_map(c); // evicts b
    assert_eq!(store.stats().entity_map_evictions, 1);
    // Hits on a and c must not evict anything further…
    let _ = store.entity_map(a);
    let _ = store.entity_map(c);
    assert_eq!(store.stats().entity_map_evictions, 1, "a and c were retained");
    // …while b was the one dropped: re-deriving it evicts again.
    let _ = store.entity_map(b);
    assert_eq!(store.stats().entity_map_evictions, 2, "b had been evicted");
}

#[test]
fn evicted_maps_rebuild_identically() {
    let store_a = store("rebuild", 150, 9);
    let query = PersonQuery { certainty: 0.5, ..PersonQuery::default() };
    let before = store_a.query(&query);
    // Thrash the cache far past capacity, then ask again.
    for i in 0..(DEFAULT_ENTITY_MAP_CAPACITY * 3) {
        let _ = store_a.entity_map(threshold(i));
    }
    assert!(store_a.stats().entity_map_evictions > 0);
    assert_eq!(store_a.query(&query), before, "re-derived map answers identically");
}

#[test]
fn writes_never_serve_stale_maps() {
    // The memo keys on (write generation, threshold): a write makes the
    // pre-write entries unreachable rather than clearing them (a clear
    // could race a concurrent query re-inserting a stale map), so they
    // linger in the LRU until aged out.
    let s = store("invalidate", 150, 10);
    let _ = s.entity_map(0.5);
    let _ = s.entity_map(1.0);
    assert_eq!(s.stats().entity_maps_cached, 2);
    let new_rid = yv_records::RecordId(s.stats().records as u32);
    let record = yv_records::RecordBuilder::new(900_500, yv_records::SourceId(0))
        .first_name("Guido")
        .last_name("Foa")
        .build();
    s.add_record(record).unwrap();
    // Same threshold, new generation: a fresh entry is derived (the
    // stale one still occupies its slot) and the new record is visible
    // through it.
    let _ = s.entity_map(0.5);
    assert_eq!(s.stats().entity_maps_cached, 3, "post-write lookup re-derives");
    assert_eq!(s.stats().entity_map_evictions, 0, "staleness is not eviction");
    // The query path goes through the same memo and sees the new record.
    let query = PersonQuery {
        first_name: Some("Guido".into()),
        certainty: 0.5,
        ..PersonQuery::default()
    };
    assert!(
        s.query(&query).iter().any(|h| h.seed == new_rid),
        "the new record is visible post-write"
    );
}

#[test]
fn shrinking_capacity_evicts_down_to_the_new_bound() {
    let s = store("shrink", 150, 11);
    for i in 0..5 {
        let _ = s.entity_map(threshold(i));
    }
    assert_eq!(s.stats().entity_maps_cached, 5);
    s.set_entity_map_capacity(2);
    let stats = s.stats();
    assert_eq!(stats.entity_maps_cached, 2);
    assert_eq!(stats.entity_map_evictions, 3);
}
