//! Property tests over the binary wire framing (`yv_store::frame`):
//! every request and response frame kind round-trips through a byte
//! stream unchanged, any torn tail is a typed error (never a clean EOF,
//! never a panic), and checksummed-but-overlong payloads are refused as
//! trailing garbage.
//!
//! The vendored proptest is generate-only (no combinators), so each
//! case draws a bag of random scalars and deterministically builds one
//! frame of *every* kind from them — full kind coverage every case,
//! random field values across cases.

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::io::Cursor;
use yv_core::PersonQuery;
use yv_obs::Tier;
use yv_records::{DateParts, Gender, Record, RecordBuilder, SourceId};
use yv_store::{
    frame_checksum, BatchStatus, RequestFrame, ResponseFrame, StoreError, HEADER_LEN,
    TRAILER_LEN,
};

/// The random scalars one case draws; everything else is derived.
#[derive(Debug, Clone)]
struct Draw {
    book: u64,
    source: u32,
    first: String,
    last: String,
    knob: u32,
    frac: f64,
    flags: u32,
}

fn record_from(draw: &Draw, salt: u64) -> Record {
    let mut b = RecordBuilder::new(draw.book.wrapping_add(salt), SourceId(draw.source));
    if draw.flags & 1 != 0 {
        b = b.first_name(draw.first.clone());
    }
    if draw.flags & 2 != 0 {
        b = b.last_name(draw.last.clone());
    }
    if draw.flags & 4 != 0 {
        b = b.gender(if draw.flags & 8 != 0 { Gender::Female } else { Gender::Male });
    }
    if draw.flags & 16 != 0 {
        b = b.birth(DateParts::full(
            (draw.knob % 28 + 1) as u8,
            (draw.knob % 12 + 1) as u8,
            1890 + (draw.knob % 55) as i32,
        ));
    }
    b.build()
}

fn opt_u32(draw: &Draw, bit: u32) -> Option<u32> {
    (draw.flags & bit != 0).then_some(draw.knob)
}

/// One frame of every request kind, field values taken from the draw.
fn all_request_frames(draw: &Draw) -> Vec<RequestFrame> {
    vec![
        RequestFrame::Query(PersonQuery {
            first_name: (draw.flags & 1 != 0).then(|| draw.first.clone()),
            last_name: (draw.flags & 2 != 0).then(|| draw.last.clone()),
            name_similarity: draw.frac,
            certainty: 1.0 - draw.frac,
        }),
        RequestFrame::Resolve {
            name: draw.first.clone(),
            k: opt_u32(draw, 32),
            min: (draw.flags & 64 != 0).then_some(draw.frac),
        },
        RequestFrame::Add(Box::new(record_from(draw, 0))),
        RequestFrame::BatchAdd(
            (0..u64::from(draw.knob % 4)).map(|i| record_from(draw, i + 1)).collect(),
        ),
        RequestFrame::Stats,
        RequestFrame::Metrics,
        RequestFrame::Top { k: opt_u32(draw, 128) },
        RequestFrame::Trace { id: draw.book, json: draw.flags & 256 != 0 },
        RequestFrame::History {
            metric: draw.last.clone(),
            window: opt_u32(draw, 512),
            tier: match draw.flags & 3072 {
                0 => None,
                1024 => Some(Tier::Seconds),
                _ => Some(Tier::Minutes),
            },
            json: draw.flags & 4096 != 0,
        },
        RequestFrame::Snapshot,
        RequestFrame::Shutdown,
    ]
}

/// One frame of every response kind.
fn all_response_frames(draw: &Draw) -> Vec<ResponseFrame> {
    vec![
        ResponseFrame::Block(format!("OK {}\n{} {}\n.\n", draw.knob, draw.first, draw.last)),
        ResponseFrame::Batch(
            (0..draw.knob % 6)
                .map(|i| {
                    if (draw.flags >> (i % 16)) & 1 == 0 {
                        BatchStatus::Ok { matches: draw.knob.wrapping_add(i) }
                    } else {
                        BatchStatus::Err(format!("ADD: refused {}", draw.last))
                    }
                })
                .collect(),
        ),
    ]
}

fn draw(
    book: u64,
    source: u32,
    first: String,
    last: String,
    knob: u32,
    frac: f64,
    flags: u32,
) -> Draw {
    Draw { book, source, first, last, knob, frac, flags }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → read is the identity for every request frame kind, and
    /// the stream is left exactly at the frame boundary (a second read
    /// is a clean EOF).
    #[test]
    fn request_frames_round_trip(
        book in 0u64..u64::MAX,
        source in 0u32..4,
        first in "[A-Za-z][a-z]{0,11}",
        last in "[A-Za-z][a-z]{0,11}",
        knob in 0u32..10_000,
        frac in 0.0f64..1.0,
        flags in 0u32..8192,
    ) {
        let draw = draw(book, source, first, last, knob, frac, flags);
        for frame in all_request_frames(&draw) {
            let bytes = frame.encode().unwrap();
            let mut cursor = Cursor::new(bytes);
            let back = RequestFrame::read(&mut cursor).unwrap().unwrap();
            prop_assert_eq!(back, frame);
            prop_assert!(RequestFrame::read(&mut cursor).unwrap().is_none());
        }
    }

    /// encode → read is the identity for every response frame kind.
    #[test]
    fn response_frames_round_trip(
        book in 0u64..u64::MAX,
        source in 0u32..4,
        first in "[A-Za-z][a-z]{0,11}",
        last in "[ -~]{0,40}",
        knob in 0u32..10_000,
        frac in 0.0f64..1.0,
        flags in 0u32..8192,
    ) {
        let draw = draw(book, source, first, last, knob, frac, flags);
        for frame in all_response_frames(&draw) {
            let bytes = frame.encode().unwrap();
            let mut cursor = Cursor::new(bytes);
            let back = ResponseFrame::read(&mut cursor).unwrap().unwrap();
            prop_assert_eq!(back, frame);
            prop_assert!(ResponseFrame::read(&mut cursor).unwrap().is_none());
        }
    }

    /// A connection cut anywhere strictly inside a frame is the typed
    /// torn-frame error — never a clean `Ok(None)` EOF, never a panic,
    /// and never a successful decode of partial bytes.
    #[test]
    fn any_torn_tail_is_a_typed_error(
        book in 0u64..u64::MAX,
        source in 0u32..4,
        first in "[A-Za-z][a-z]{0,11}",
        last in "[A-Za-z][a-z]{0,11}",
        knob in 0u32..10_000,
        frac in 0.0f64..1.0,
        flags in 0u32..8192,
        cut_frac in 0.0f64..1.0,
    ) {
        let draw = draw(book, source, first, last, knob, frac, flags);
        for frame in all_request_frames(&draw) {
            let bytes = frame.encode().unwrap();
            // Cut positions 1..len: 0 is the clean between-frames EOF.
            let cut = 1 + ((bytes.len() - 2) as f64 * cut_frac) as usize;
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            match RequestFrame::read(&mut cursor) {
                Err(StoreError::Corrupt(msg)) => {
                    prop_assert!(msg.contains("torn frame"), "cut at {}: {}", cut, msg);
                }
                other => prop_assert!(
                    false,
                    "cut at {}: expected torn-frame error, got {:?}",
                    cut,
                    other
                ),
            }
        }
    }

    /// A frame whose checksum is valid but whose payload carries more
    /// bytes than its content decodes to is refused (trailing garbage or
    /// a typed decode error) — never accepted, never a panic.
    #[test]
    fn surplus_checksummed_bytes_are_refused(
        book in 0u64..u64::MAX,
        source in 0u32..4,
        first in "[A-Za-z][a-z]{0,11}",
        last in "[A-Za-z][a-z]{0,11}",
        knob in 0u32..10_000,
        frac in 0.0f64..1.0,
        flags in 0u32..8192,
        junk in proptest::collection::vec(0u8..=255, 1..4),
    ) {
        let draw = draw(book, source, first, last, knob, frac, flags);
        for frame in all_request_frames(&draw) {
            let encoded = frame.encode().unwrap();
            let tag = encoded[0];
            // Rebuild the frame by hand with the junk folded into the
            // checksummed payload, so only the decoder can refuse it.
            let mut payload = encoded[HEADER_LEN..encoded.len() - TRAILER_LEN].to_vec();
            payload.extend_from_slice(&junk);
            let mut bytes = vec![tag];
            bytes.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
            let mut cursor = Cursor::new(bytes);
            match RequestFrame::read(&mut cursor) {
                Err(_) => {}
                Ok(other) => {
                    prop_assert!(false, "expected corrupt refusal, got {:?}", other);
                }
            }
        }
    }
}
