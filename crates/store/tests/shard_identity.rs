//! Sharding invariants: a store's logical state is independent of its
//! shard count (and of the thread interleaving that filled it), restart
//! replays the per-shard WALs back into exactly the pre-crash state, and
//! a hole in the merged arrival sequence is a typed, shard-naming error
//! — never a silently renumbered dataset.

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use yv_core::{IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig};
use yv_records::{Record, RecordBuilder, SourceId};
use yv_store::wal::{self, WalEntry};
use yv_store::{shard_of_record, wal_file_name, Store, StoreError};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yv-store-shard-identity").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic: two calls with the same arguments build
/// byte-for-byte identical resolvers (datagen is seeded, training is
/// deterministic), which is how the two stores under comparison start
/// from the same base.
fn trained_resolver(n_records: usize, seed: u64) -> IncrementalResolver {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    IncrementalResolver::bootstrap(gen.dataset, pipeline, config, IncrementalConfig::default())
}

/// A pool of arrivals with enough last-name variety to touch every
/// shard of a 4-way store.
fn arrivals(n: usize) -> Vec<Record> {
    const FIRST: [&str; 6] = ["Guido", "Sara", "Moshe", "Rivka", "David", "Chana"];
    const LAST: [&str; 11] = [
        "Foa", "Levi", "Postel", "Roth", "Katz", "Blum", "Stern", "Weiss", "Adler", "Braun",
        "Segal",
    ];
    (0..n)
        .map(|i| {
            RecordBuilder::new(800_000 + i as u64, SourceId(0))
                .first_name(FIRST[i % FIRST.len()])
                .last_name(LAST[(i * 7) % LAST.len()])
                .build()
        })
        .collect()
}

/// Read back the global arrival order from the per-shard WALs: collect
/// every frame, sort by the sequence number it carries.
fn merged_wal_order(dir: &Path, shards: usize) -> Vec<(u64, WalEntry)> {
    let mut merged = Vec::new();
    for s in 0..shards {
        merged.extend(wal::replay(&dir.join(wal_file_name(s))).unwrap());
    }
    merged.sort_by_key(|(seq, _)| *seq);
    merged
}

/// The tentpole property, run at several thread interleavings: however a
/// multi-threaded fill scatters arrivals across 4 shards, the resulting
/// store is byte-identical (canonical `state_bytes` encoding) to a
/// single-shard store fed the same arrivals serially in the order the
/// sequencer actually applied them — and to itself after a WAL-replay
/// restart and after a snapshot/reopen cycle.
#[test]
fn multi_shard_concurrent_fill_is_byte_identical_to_single_shard() {
    for round in 0..5 {
        let multi_dir = fresh_dir(&format!("identity-multi-{round}"));
        let single_dir = fresh_dir(&format!("identity-single-{round}"));
        let multi = Store::create(&multi_dir, trained_resolver(100, 17), 4).unwrap();
        let single = Store::create(&single_dir, trained_resolver(100, 17), 1).unwrap();
        assert_eq!(
            multi.state_bytes().unwrap(),
            single.state_bytes().unwrap(),
            "identical resolvers create identical logical state"
        );

        // 4 writer threads, arrival-to-thread assignment varied per round
        // so each round exercises a different interleaving.
        let pool = arrivals(40);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let multi = &multi;
                let pool = &pool;
                scope.spawn(move || {
                    for (i, record) in pool.iter().enumerate() {
                        if (i + round) % 4 == t {
                            multi.add_record(record.clone()).unwrap();
                        }
                    }
                });
            }
        });
        let multi_state = multi.state_bytes().unwrap();
        let stats = multi.stats();
        assert_eq!(stats.wal_entries, 40);
        assert_eq!(stats.shard_rows_records_sum(), stats.records);

        // Feed the single-shard store the same arrivals serially, in the
        // order the sequencer applied them (recovered from the WAL seqs).
        drop(multi);
        let order = merged_wal_order(&multi_dir, 4);
        assert_eq!(order.len(), 40);
        for (i, (seq, entry)) in order.into_iter().enumerate() {
            assert_eq!(seq, i as u64, "seqs are contiguous from 0");
            match entry {
                WalEntry::Record(record) => {
                    single.add_record(*record).unwrap();
                }
                WalEntry::Source(_) => panic!("no sources were added"),
            }
        }
        assert_eq!(
            single.state_bytes().unwrap(),
            multi_state,
            "round {round}: shard count must not leak into logical state"
        );

        // Restart identity: replaying the 4 WALs reproduces the state...
        let reopened = Store::open(&multi_dir).unwrap();
        assert_eq!(reopened.state_bytes().unwrap(), multi_state, "round {round}: replay");
        // ...and so does folding them into a snapshot and reopening.
        reopened.snapshot().unwrap();
        drop(reopened);
        let reopened = Store::open(&multi_dir).unwrap();
        assert_eq!(reopened.state_bytes().unwrap(), multi_state, "round {round}: snapshot");
        assert_eq!(reopened.stats().wal_entries, 0);
    }
}

/// Helper so the identity test reads naturally.
trait ShardRowSum {
    fn shard_rows_records_sum(&self) -> usize;
}

impl ShardRowSum for yv_store::StoreStats {
    fn shard_rows_records_sum(&self) -> usize {
        self.shards.iter().map(|s| s.records).sum()
    }
}

/// Two arrivals routed to two *different* shards of a 3-shard store, in
/// a guaranteed order: the returned records route to distinct shards, so
/// seq 0 lands in one WAL and seq 1 in another.
fn two_cross_shard_records() -> (Record, Record, usize, usize) {
    let pool = arrivals(40);
    let a = pool[0].clone();
    let shard_a = shard_of_record(&a, 3);
    let b = pool
        .iter()
        .find(|r| shard_of_record(r, 3) != shard_a)
        .expect("the name pool spans shards")
        .clone();
    let shard_b = shard_of_record(&b, 3);
    (a, b, shard_a, shard_b)
}

/// Chop bytes off the end of one shard's WAL, landing mid-frame.
fn tear_wal_tail(dir: &Path, shard: usize, cut: u64) {
    let path = dir.join(wal_file_name(shard));
    let len = std::fs::metadata(&path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(len - cut).unwrap();
}

#[test]
fn losing_one_shards_tail_under_later_survivors_is_a_shard_naming_error() {
    let dir = fresh_dir("gap");
    let store = Store::create(&dir, trained_resolver(80, 23), 3).unwrap();
    let (a, b, shard_a, shard_b) = two_cross_shard_records();
    store.add_record(a).unwrap(); // seq 0 → shard_a's WAL
    store.add_record(b).unwrap(); // seq 1 → shard_b's WAL
    drop(store);

    // Tear shard_a's tail mid-record: seq 0 is gone, but seq 1 survives
    // on shard_b. Replaying past the hole would renumber record ids, so
    // open must refuse — with an error naming the shard that lost data.
    tear_wal_tail(&dir, shard_a, 3);
    match Store::open(&dir) {
        Err(StoreError::ShardWalGap { shard, missing_seq }) => {
            assert_eq!(shard, shard_a, "the error names the torn shard");
            assert_eq!(missing_seq, 0);
        }
        other => panic!("expected ShardWalGap, got {other:?}"),
    }
    // The error message carries the shard for operators too.
    let msg = Store::open(&dir).unwrap_err().to_string();
    assert!(msg.contains(&format!("shard {shard_a}")), "{msg}");
    let _ = shard_b;
}

#[test]
fn torn_tail_on_the_globally_last_arrival_recovers_cleanly() {
    let dir = fresh_dir("torn-last");
    let store = Store::create(&dir, trained_resolver(80, 23), 3).unwrap();
    let base_records = store.stats().records;
    let (a, b, _, shard_b) = two_cross_shard_records();
    store.add_record(a).unwrap(); // seq 0
    store.add_record(b).unwrap(); // seq 1 → shard_b's WAL
    drop(store);

    // Tear shard_b's tail: the lost frame is the globally *last* arrival,
    // so the surviving prefix is contiguous — an ordinary crash-before-
    // fsync, recovered by truncating the torn tail.
    tear_wal_tail(&dir, shard_b, 3);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().records, base_records + 1, "seq 0 replayed, seq 1 dropped");
    assert_eq!(store.stats().wal_entries, 1);
}
