//! Snapshot format guarantees: lossless round-trips, byte-identical
//! re-snapshots (base file and every per-shard segment), and typed
//! rejection of damaged or incompatible files.

// Test-only binary: helper fns outside #[test] may unwrap freely (the
// workspace unwrap_used deny targets library code).
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::path::PathBuf;
use yv_core::{IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig};
use yv_store::{segment_file_name, snapshot, Store, StoreError, SNAPSHOT_FILE};

/// A small trained resolver over a synthetic dataset.
fn resolver(n_records: usize, seed: u64) -> IncrementalResolver {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    IncrementalResolver::bootstrap(gen.dataset, pipeline, config, IncrementalConfig::default())
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("yv-store-snapshot").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Read the base file plus every shard segment.
fn snapshot_files(dir: &std::path::Path, shards: usize) -> Vec<Vec<u8>> {
    let mut files = vec![std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap()];
    for s in 0..shards {
        files.push(std::fs::read(dir.join(segment_file_name(s))).unwrap());
    }
    files
}

#[test]
fn save_load_save_is_byte_identical() {
    let dir = fresh_dir("save-load-save");
    let original = resolver(300, 11);
    let expected_state = snapshot::state_bytes(&original).unwrap();
    let store = Store::create(&dir, original, 3).unwrap();
    let first = snapshot_files(&dir, 3);
    drop(store);

    // Reload from disk and snapshot again: every file must be
    // byte-identical (sources, matches, model, config, and each shard's
    // records in ascending-rid order).
    let reloaded = Store::open(&dir).unwrap();
    reloaded.snapshot().unwrap();
    let second = snapshot_files(&dir, 3);
    assert_eq!(first, second, "save(load(save(x))) must equal save(x)");

    // The reloaded store serves identical logical state.
    assert_eq!(reloaded.state_bytes().unwrap(), expected_state);
}

#[test]
fn reloaded_store_keeps_resolving_incrementally() {
    let dir = fresh_dir("keeps-resolving");
    let original = resolver(300, 13);
    let probe = original.dataset().record(yv_records::RecordId(0)).clone();
    drop(Store::create(&dir, original, 2).unwrap());
    let reloaded = Store::open(&dir).unwrap();
    // The rebuilt postings index must find the copy's original, like a
    // resolver that never left memory.
    let matches = reloaded.add_record(probe).unwrap();
    assert!(
        matches.iter().any(|m| m.a == yv_records::RecordId(0)
            || m.b == yv_records::RecordId(0)),
        "reloaded store must match the re-inserted copy; got {matches:?}"
    );
}

#[test]
fn segment_bytes_round_trip() {
    let r = resolver(80, 7);
    let ds = r.dataset();
    let entries: Vec<_> = ds.record_ids().map(|rid| (rid, ds.record(rid))).collect();
    let bytes = snapshot::segment_to_bytes(5, &entries).unwrap();
    let (shard, decoded) = snapshot::segment_from_bytes(&bytes).unwrap();
    assert_eq!(shard, 5, "the segment remembers which shard it belongs to");
    assert_eq!(decoded.len(), entries.len());
    for ((rid, record), (drid, drecord)) in entries.iter().zip(&decoded) {
        assert_eq!(rid, drid);
        assert_eq!(*record, drecord);
    }
}

#[test]
fn corrupt_checksum_is_a_typed_error() {
    let bytes = snapshot::base_to_bytes(&resolver(120, 5)).unwrap();
    // Flip one payload byte (after the 20-byte header).
    let mut damaged = bytes.clone();
    damaged[60] ^= 0x01;
    assert!(matches!(
        snapshot::base_from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    // Flip a trailer byte instead.
    let mut damaged = bytes;
    let last = damaged.len() - 1;
    damaged[last] ^= 0xff;
    assert!(matches!(
        snapshot::base_from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_version_and_magic_are_typed_errors() {
    let bytes = snapshot::base_to_bytes(&resolver(120, 5)).unwrap();
    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&999u32.to_le_bytes());
    assert!(matches!(
        snapshot::base_from_bytes(&wrong_version),
        Err(StoreError::UnsupportedVersion { found: 999, .. })
    ));
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(snapshot::base_from_bytes(&wrong_magic), Err(StoreError::BadMagic)));
    // A segment is not a base file and vice versa: the magics differ on
    // purpose, so misfiled bytes surface as BadMagic, not garbage parses.
    assert!(matches!(snapshot::segment_from_bytes(&bytes), Err(StoreError::BadMagic)));
}

#[test]
fn truncations_never_panic() {
    let bytes = snapshot::base_to_bytes(&resolver(120, 5)).unwrap();
    for cut in [0, 7, 8, 12, 19, 20, 21, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            snapshot::base_from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must be an error"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any single corrupted byte in the payload or trailer is rejected;
    /// header corruption is rejected as magic/version/corrupt errors. No
    /// input panics.
    #[test]
    fn single_byte_corruption_is_always_rejected(seed in 0u64..1000, pos_frac in 0.0f64..1.0) {
        let bytes = snapshot::base_to_bytes(&resolver(60, seed)).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x5a;
        // Skip positions where the flip lands in the (unchecksummed)
        // declared-length field yet still parses — it cannot: length
        // changes either truncate (error) or leave trailing bytes (error).
        prop_assert!(snapshot::base_from_bytes(&damaged).is_err());
    }
}
