//! Snapshot format guarantees: lossless round-trips, byte-identical
//! re-snapshots, and typed rejection of damaged or incompatible files.

use proptest::prelude::*;
use yv_core::{IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig};
use yv_store::{snapshot, StoreError};

/// A small trained resolver over a synthetic dataset.
fn resolver(n_records: usize, seed: u64) -> IncrementalResolver {
    let gen = GenConfig::random(n_records, seed).generate();
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&gen.dataset, &labelled, &config);
    IncrementalResolver::bootstrap(gen.dataset, pipeline, config, IncrementalConfig::default())
}

#[test]
fn save_load_save_is_byte_identical() {
    let original = resolver(300, 11);
    let bytes = snapshot::to_bytes(&original).unwrap();
    let reloaded = snapshot::from_bytes(&bytes).expect("snapshot loads");
    let bytes_again = snapshot::to_bytes(&reloaded).unwrap();
    assert_eq!(bytes, bytes_again, "save(load(save(x))) must equal save(x)");

    // The reloaded resolver serves identical state.
    assert_eq!(reloaded.len(), original.len());
    assert_eq!(reloaded.matches(), original.matches());
    for rid in original.dataset().record_ids() {
        assert_eq!(original.dataset().record(rid), reloaded.dataset().record(rid));
    }
    assert_eq!(original.dataset().sources(), reloaded.dataset().sources());
}

#[test]
fn reloaded_resolver_keeps_resolving_incrementally() {
    let original = resolver(300, 13);
    let probe = original.dataset().record(yv_records::RecordId(0)).clone();
    let mut reloaded =
        snapshot::from_bytes(&snapshot::to_bytes(&original).unwrap()).expect("snapshot loads");
    // The rebuilt postings index must find the copy's original, like a
    // resolver that never left memory.
    let matches = reloaded.insert(probe);
    assert!(
        matches.iter().any(|m| m.a == yv_records::RecordId(0)
            || m.b == yv_records::RecordId(0)),
        "reloaded resolver must match the re-inserted copy; got {matches:?}"
    );
}

#[test]
fn corrupt_checksum_is_a_typed_error() {
    let bytes = snapshot::to_bytes(&resolver(120, 5)).unwrap();
    // Flip one payload byte (after the 20-byte header).
    let mut damaged = bytes.clone();
    damaged[60] ^= 0x01;
    assert!(matches!(
        snapshot::from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    // Flip a trailer byte instead.
    let mut damaged = bytes;
    let last = damaged.len() - 1;
    damaged[last] ^= 0xff;
    assert!(matches!(
        snapshot::from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_version_and_magic_are_typed_errors() {
    let bytes = snapshot::to_bytes(&resolver(120, 5)).unwrap();
    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&999u32.to_le_bytes());
    assert!(matches!(
        snapshot::from_bytes(&wrong_version),
        Err(StoreError::UnsupportedVersion { found: 999, .. })
    ));
    let mut wrong_magic = bytes;
    wrong_magic[0] = b'X';
    assert!(matches!(snapshot::from_bytes(&wrong_magic), Err(StoreError::BadMagic)));
}

#[test]
fn truncations_never_panic() {
    let bytes = snapshot::to_bytes(&resolver(120, 5)).unwrap();
    for cut in [0, 7, 8, 12, 19, 20, 21, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must be an error"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any single corrupted byte in the payload or trailer is rejected;
    /// header corruption is rejected as magic/version/corrupt errors. No
    /// input panics.
    #[test]
    fn single_byte_corruption_is_always_rejected(seed in 0u64..1000, pos_frac in 0.0f64..1.0) {
        let bytes = snapshot::to_bytes(&resolver(60, seed)).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x5a;
        // Skip positions where the flip lands in the (unchecksummed)
        // declared-length field yet still parses — it cannot: length
        // changes either truncate (error) or leave trailing bytes (error).
        prop_assert!(snapshot::from_bytes(&damaged).is_err());
    }
}
