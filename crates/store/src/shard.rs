//! Name-hash sharding: routing, the store manifest, and per-shard stats.
//!
//! The serving workload keys on victim names at every layer — MFIBlocks
//! candidates share name items, and the query index posts by lowercased
//! name — so partitioning the store by a *name* hash preserves block
//! locality while letting writer threads on distinct shards proceed in
//! parallel. The routing function is part of the on-disk format: a record
//! lands in shard `fnv1a64(lowercase(last_names[0])) % shards` (the empty
//! string when it has no last name), and the shard count is fixed at
//! `create` time in the manifest. Changing either silently scatters
//! existing records across the wrong WALs and segments, which is why the
//! manifest records the routing rule verbatim and `open` refuses anything
//! it does not recognise.

use crate::codec::fnv1a64;
use crate::error::StoreError;
use std::path::Path;
use yv_records::Record;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.yvm";

/// The only routing rule this build reads and writes. Recorded verbatim
/// in the manifest so a foreign (or future) store with a different rule
/// is rejected instead of mis-routed.
pub const ROUTING_RULE: &str = "fnv1a64(lowercase(last_names[0]))%shards";

/// Hard ceiling on the shard count: each shard costs a WAL file handle
/// and a snapshot segment, and the fan-out paths iterate all of them.
pub const MAX_SHARDS: usize = 1024;

/// The shard owning a last name: FNV-1a 64 of the lowercased name modulo
/// the shard count. FNV-1a is the workspace's deterministic hash (same
/// function as the WAL and snapshot checksums) — *never* substitute a
/// `RandomState`-seeded hasher here, or the same store directory routes
/// differently across processes.
#[must_use]
pub fn shard_of_name(last_name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fnv1a64(last_name.to_lowercase().as_bytes()) % shards as u64) as usize
}

/// The shard owning a record: routed by its first reported last name,
/// or the empty string when it carries none.
#[must_use]
pub fn shard_of_record(record: &Record, shards: usize) -> usize {
    shard_of_name(record.last_names.first().map_or("", String::as_str), shards)
}

/// The store manifest: shard count and routing rule, fixed at `create`.
///
/// A three-line text file (`manifest.yvm`) rather than another binary
/// format: it is tiny, humans debugging a store directory should be able
/// to `cat` it, and ci greps it to pin the routing hash.
///
/// ```text
/// yv-store-manifest v1
/// shards=4
/// routing=fnv1a64(lowercase(last_names[0]))%shards
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    pub shards: usize,
}

impl Manifest {
    /// Validate a shard count and build the manifest for it.
    pub fn new(shards: usize) -> Result<Manifest, StoreError> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(StoreError::Corrupt(format!(
                "shard count {shards} out of range 1..={MAX_SHARDS}"
            )));
        }
        Ok(Manifest { shards })
    }

    /// Render the manifest text.
    #[must_use]
    pub fn to_text(self) -> String {
        format!("yv-store-manifest v1\nshards={}\nrouting={ROUTING_RULE}\n", self.shards)
    }

    /// Parse manifest text, rejecting unknown versions, shard counts out
    /// of range, and — critically — any routing rule other than the one
    /// this build implements.
    pub fn from_text(text: &str) -> Result<Manifest, StoreError> {
        let mut lines = text.lines();
        match lines.next() {
            Some("yv-store-manifest v1") => {}
            other => {
                return Err(StoreError::Corrupt(format!(
                    "bad manifest header {other:?}; expected \"yv-store-manifest v1\""
                )))
            }
        }
        let shards_line = lines
            .next()
            .ok_or_else(|| StoreError::Corrupt("manifest missing shards= line".into()))?;
        let shards = shards_line
            .strip_prefix("shards=")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| {
                StoreError::Corrupt(format!("bad manifest shards line {shards_line:?}"))
            })?;
        let routing_line = lines
            .next()
            .ok_or_else(|| StoreError::Corrupt("manifest missing routing= line".into()))?;
        match routing_line.strip_prefix("routing=") {
            Some(rule) if rule == ROUTING_RULE => {}
            Some(rule) => {
                return Err(StoreError::Corrupt(format!(
                    "unsupported shard routing rule {rule:?}; this build implements {ROUTING_RULE:?}"
                )))
            }
            None => {
                return Err(StoreError::Corrupt(format!(
                    "bad manifest routing line {routing_line:?}"
                )))
            }
        }
        if let Some(extra) = lines.next() {
            return Err(StoreError::Corrupt(format!("trailing manifest line {extra:?}")));
        }
        Manifest::new(shards)
    }

    /// Write the manifest into a store directory (atomically, like the
    /// snapshot: temp file then rename).
    pub fn write(self, dir: &Path) -> Result<(), StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Read the manifest from a store directory.
    pub fn read(dir: &Path) -> Result<Manifest, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        if !path.exists() {
            return Err(StoreError::Corrupt(format!(
                "store directory {} has no manifest ({MANIFEST_FILE}); \
                 pre-sharding stores must be recreated",
                dir.display()
            )));
        }
        let text = std::fs::read_to_string(&path)?;
        Manifest::from_text(&text)
    }
}

/// Point-in-time counters for one shard, reported in `STATS` as `SHARD`
/// rows and in the metrics exposition as `yv_shard_<i>_*` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    pub shard: usize,
    /// Records routed to this shard.
    pub records: usize,
    /// Distinct lowercased names in this shard's query index.
    pub vocabulary: usize,
    /// Posting entries in this shard's query index.
    pub postings: usize,
    /// Arrivals pending in this shard's WAL since the last snapshot.
    pub wal_entries: usize,
    /// On-disk size of this shard's WAL in bytes.
    pub wal_bytes: u64,
    /// Distinct names in this shard's fuzzy (q-gram) index.
    pub fuzzy_names: usize,
    /// Distinct q-grams in this shard's fuzzy index.
    pub fuzzy_grams: usize,
    /// Gram → name posting entries in this shard's fuzzy index.
    pub fuzzy_postings: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, SourceId};

    #[test]
    fn routing_is_case_folded_and_deterministic() {
        for shards in [1, 2, 4, 7] {
            assert_eq!(shard_of_name("Foa", shards), shard_of_name("foa", shards));
            assert_eq!(shard_of_name("FOA", shards), shard_of_name("foa", shards));
            assert!(shard_of_name("Foa", shards) < shards);
        }
        assert_eq!(shard_of_name("anything", 1), 0);
    }

    #[test]
    fn record_routes_by_first_last_name_or_empty() {
        let named = RecordBuilder::new(1, SourceId(0)).last_name("Foa").last_name("Foy").build();
        assert_eq!(shard_of_record(&named, 8), shard_of_name("Foa", 8));
        let nameless = RecordBuilder::new(2, SourceId(0)).first_name("Guido").build();
        assert_eq!(shard_of_record(&nameless, 8), shard_of_name("", 8));
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest::new(4).expect("4 shards");
        assert_eq!(Manifest::from_text(&m.to_text()).expect("parse"), m);
        let dir = std::env::temp_dir().join("yv-store-manifest-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        m.write(&dir).expect("write");
        assert_eq!(Manifest::read(&dir).expect("read"), m);
    }

    #[test]
    fn manifest_rejects_bad_inputs() {
        assert!(Manifest::new(0).is_err());
        assert!(Manifest::new(MAX_SHARDS + 1).is_err());
        assert!(Manifest::from_text("yv-store-manifest v2\nshards=1\n").is_err());
        assert!(Manifest::from_text("yv-store-manifest v1\nshards=zero\n").is_err());
        assert!(Manifest::from_text(
            "yv-store-manifest v1\nshards=2\nrouting=siphash(last)%shards\n"
        )
        .is_err());
        let ok = format!("yv-store-manifest v1\nshards=2\nrouting={ROUTING_RULE}\n");
        assert!(Manifest::from_text(&ok).is_ok());
        assert!(Manifest::from_text(&format!("{ok}extra\n")).is_err());
    }
}
