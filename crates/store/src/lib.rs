//! # yv-store
//!
//! The serving layer the paper's deployment section gestures at: "Yad
//! Vashem is actively engaged in integrating the results of the project
//! into its databases and applications" (Section 7). The batch pipeline
//! resolves a corpus once; this crate keeps that resolution **alive** —
//! durable across restarts, queryable concurrently, and open to the
//! Pages of Testimony that still arrive.
//!
//! Three pieces:
//!
//! - [`snapshot`] — one versioned, checksummed file holding the dataset,
//!   ranked matches, trained ADT model and pipeline configuration
//!   (hand-rolled binary, same philosophy as `yv_adt::persist`);
//! - [`wal`] — a write-ahead log of incremental arrivals, appended before
//!   each record is applied and replayed on restart;
//! - [`server`] — a line-protocol TCP front end over a shared [`Store`],
//!   with a scoped worker pool, per-request metrics in a
//!   [`yv_obs::MetricsRegistry`] (scraped via the `METRICS` command or a
//!   `GET /metrics` sidecar listener), and optional slow-request JSON
//!   logging — see [`ServeOptions`].
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::path::Path;
//! use yv_store::{serve, Store};
//!
//! let store = Store::open(Path::new("people.store"))?;
//! let listener = TcpListener::bind("127.0.0.1:7878")?;
//! // Serves until a client sends SHUTDOWN; flushes the WAL on the way out.
//! let _store = serve(store, listener, 4)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codec;
pub mod error;
pub mod index;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use index::QueryIndex;
pub use protocol::{CommandStats, Request};
pub use server::{serve, serve_with, CommandMetrics, ServeOptions, ServerMetrics};
pub use store::{
    Store, StoreStats, DEFAULT_ENTITY_MAP_CAPACITY, SNAPSHOT_FILE, WAL_FILE,
};
pub use wal::{Wal, WalEntry};
