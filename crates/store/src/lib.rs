//! # yv-store
//!
//! The serving layer the paper's deployment section gestures at: "Yad
//! Vashem is actively engaged in integrating the results of the project
//! into its databases and applications" (Section 7). The batch pipeline
//! resolves a corpus once; this crate keeps that resolution **alive** —
//! durable across restarts, queryable concurrently, and open to the
//! Pages of Testimony that still arrive.
//!
//! The store is **sharded by name-hash**: records route to one of N
//! shards by `fnv1a64(lowercase(last name)) % N` (see [`shard`]), each
//! shard owning its own WAL file, snapshot segment and query index
//! behind its own lock, so writers on distinct shards never contend.
//! The pieces:
//!
//! - [`shard`] — the routing function and the store manifest recording
//!   the shard count (fixed at [`Store::create`]);
//! - [`snapshot`] — versioned, checksummed files: one base snapshot
//!   (sources, matches, trained ADT model, pipeline configuration) plus
//!   one record segment per shard (hand-rolled binary, same philosophy
//!   as `yv_adt::persist`);
//! - [`wal`] — per-shard write-ahead logs of incremental arrivals, each
//!   frame carrying its global arrival sequence number so restart can
//!   merge the shard logs back into one deterministic order;
//! - [`server`] — a line-protocol TCP front end over a shared [`Store`],
//!   with a scoped worker pool, per-request and per-shard metrics in a
//!   [`yv_obs::MetricsRegistry`] (scraped via the `METRICS` command or a
//!   `GET /metrics` sidecar listener), optional slow-request JSON
//!   logging, and request-scoped tracing: every request carries a trace
//!   id accept-to-reply, completed traces land in a lock-free capture
//!   ring with a tail-sampling reservoir, and the `TOP` / `TRACE <id>`
//!   commands expose them live — see [`ServeOptions`]. Per-command
//!   latencies additionally roll into windowed telemetry (60 × 1s and
//!   60 × 1m rings) served by `HISTORY`, evaluated against `--slo`
//!   burn-rate rules, and persisted via [`telemetry`]. A first-request
//!   `HELLO proto=binary` line upgrades a connection to the
//!   length-prefixed, checksummed binary framing in [`frame`] (text
//!   stays for telnet-style inspection), adding a `BATCH_ADD` frame
//!   that streams many records per round trip;
//! - [`client`] — a typed client for both transports: a [`Connection`]
//!   trait with text and binary backends, a [`ClientOptions`] builder
//!   (timeouts, `Text`/`Binary`/`Negotiate` protocol choice) and a
//!   [`Pipeline`] for order-preserving pipelined requests with a
//!   bounded in-flight window.
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::path::Path;
//! use yv_store::{ServeOptions, Store};
//!
//! let store = Store::open(Path::new("people.store"))?;
//! let listener = TcpListener::bind("127.0.0.1:7878")?;
//! // Serves until a client sends SHUTDOWN; flushes the WALs on the way out.
//! let _store = ServeOptions::new(store).workers(4).serve(listener)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod codec;
pub mod error;
pub mod frame;
pub mod index;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod telemetry;
pub mod wal;

pub use client::{
    Client, ClientError, ClientOptions, Connection, Pipeline, Protocol, Reply, HistoryBucketRow,
    HistoryReport, HistorySloRow, HistorySummaryRow, ResolveRow, RingRow, SlowRow, SpanRow,
    TopReport, TraceReport,
};
pub use error::StoreError;
pub use frame::{
    frame_checksum, BatchStatus, RequestFrame, ResponseFrame, HEADER_LEN, HELLO_LINE,
    HELLO_OK, MAX_PAYLOAD, TRAILER_LEN,
};
pub use index::QueryIndex;
pub use protocol::{CommandStats, Request, DEFAULT_TOP_SLOW};
pub use server::{
    CommandMetrics, ServeOptions, ServerMetrics, DEFAULT_SLOW_LOG_CAP_BYTES,
    DEFAULT_TRACE_CAPACITY, DEFAULT_TRACE_SEED,
};
pub use telemetry::{TelemetryLog, DEFAULT_CAP_BYTES as DEFAULT_TELEMETRY_CAP_BYTES};
pub use shard::{shard_of_name, shard_of_record, Manifest, ShardStats, MANIFEST_FILE, ROUTING_RULE};
pub use store::{
    segment_file_name, wal_file_name, ResolveOptions, ResolveOutcome, Store, StoreStats,
    DEFAULT_ENTITY_MAP_CAPACITY, DEFAULT_RESOLVE_K, SNAPSHOT_FILE,
};
pub use yv_fuzzy::{RankedEntity, ScoreBlend};
pub use wal::{Wal, WalEntry, WalScan};
