//! In-memory query index: lowercased name → postings.
//!
//! `PersonQuery::run` scans every record and runs Jaro-Winkler against
//! each of its names. At serving scale the same distinct names recur
//! thousands of times (the full Names Project has 6.5M records over a far
//! smaller name vocabulary), so the index keys postings by *distinct
//! lowercased name* and pays one similarity computation per vocabulary
//! entry instead of one per record occurrence.

use std::collections::{HashMap, HashSet};
use yv_core::PersonQuery;
use yv_records::{Dataset, Record, RecordId};
use yv_similarity::jaro_winkler;

/// Postings from distinct lowercased first/last names to the records
/// carrying them.
///
/// An index no longer spans the whole dataset: the sharded store keeps
/// one per shard, each holding only the records routed to it. Member
/// records are therefore tracked explicitly (in ascending-rid insertion
/// order) instead of being derived from a dense `0..n` range.
#[derive(Debug, Clone, Default)]
pub struct QueryIndex {
    first: HashMap<String, Vec<RecordId>>,
    last: HashMap<String, Vec<RecordId>>,
    /// Every indexed record, ascending — the seed set of an
    /// unconstrained query.
    members: Vec<RecordId>,
}

impl QueryIndex {
    /// Index every record of a dataset.
    #[must_use]
    pub fn build(ds: &Dataset) -> QueryIndex {
        let mut index = QueryIndex::default();
        for rid in ds.record_ids() {
            index.add_record(rid, ds.record(rid));
        }
        index
    }

    /// Index one (newly arrived) record. Records must be added in
    /// ascending-rid order (they are: rids are assigned in arrival
    /// order, and each record is indexed exactly once, by its shard).
    pub fn add_record(&mut self, rid: RecordId, record: &Record) {
        post(&mut self.first, &record.first_names, rid);
        post(&mut self.last, &record.last_names, rid);
        if self.members.last() != Some(&rid) {
            self.members.push(rid);
        }
    }

    /// Number of records indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct lowercased names indexed.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.first.len() + self.last.len()
    }

    /// Total posting entries across all names — the index's memory-weight
    /// proxy (each entry is one record occurrence of a distinct name).
    #[must_use]
    pub fn postings(&self) -> usize {
        self.first.values().map(Vec::len).sum::<usize>()
            + self.last.values().map(Vec::len).sum::<usize>()
    }

    /// Seed records matching the query's name constraints, ascending —
    /// the same set (and order) `PersonQuery::run` derives by scanning.
    #[must_use]
    pub fn seeds(&self, query: &PersonQuery) -> Vec<RecordId> {
        let first = matching(&self.first, query.first_name.as_deref(), query.name_similarity);
        let last = matching(&self.last, query.last_name.as_deref(), query.name_similarity);
        let mut out: Vec<RecordId> = match (first, last) {
            (None, None) => self.members.clone(),
            (Some(f), None) => f.into_iter().collect(),
            (None, Some(l)) => l.into_iter().collect(),
            (Some(f), Some(l)) => {
                let (small, large) = if f.len() <= l.len() { (f, l) } else { (l, f) };
                small.into_iter().filter(|r| large.contains(r)).collect()
            }
        };
        out.sort_unstable();
        out
    }
}

/// Append a record to the postings of each of its distinct names.
fn post(map: &mut HashMap<String, Vec<RecordId>>, names: &[String], rid: RecordId) {
    for name in names {
        let postings = map.entry(name.to_lowercase()).or_default();
        // Names within one record are posted consecutively, so a repeated
        // (case-folded) name dedupes against the tail.
        if postings.last() != Some(&rid) {
            postings.push(rid);
        }
    }
}

/// Records with at least one name within `similarity` of the query, or
/// `None` when the constraint is absent (matches everything).
fn matching(
    map: &HashMap<String, Vec<RecordId>>,
    query: Option<&str>,
    similarity: f64,
) -> Option<HashSet<RecordId>> {
    let q = query?.to_lowercase();
    let mut out = HashSet::new();
    // The accumulator is itself an unordered membership set and the only
    // caller (`seeds`) sorts before returning, so visit order is moot.
    // audit:allow(D1)
    for (name, postings) in map {
        if jaro_winkler(name, &q) >= similarity {
            out.extend(postings.iter().copied());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        ds.add_record(RecordBuilder::new(0, s).first_name("Guido").last_name("Foa").build());
        ds.add_record(RecordBuilder::new(1, s).first_name("guido").last_name("Foy").build());
        ds.add_record(RecordBuilder::new(2, s).first_name("Moshe").last_name("Postel").build());
        ds
    }

    #[test]
    fn seeds_match_linear_scan_for_every_query_shape() {
        let ds = dataset();
        let index = QueryIndex::build(&ds);
        let queries = [
            PersonQuery::default(),
            PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() },
            PersonQuery { last_name: Some("Foa".into()), ..PersonQuery::default() },
            PersonQuery {
                first_name: Some("Guido".into()),
                last_name: Some("Foa".into()),
                ..PersonQuery::default()
            },
            PersonQuery {
                last_name: Some("Foa".into()),
                name_similarity: 0.8,
                ..PersonQuery::default()
            },
            PersonQuery { last_name: Some("Zzz".into()), ..PersonQuery::default() },
        ];
        for q in queries {
            let scan: Vec<RecordId> =
                ds.record_ids().filter(|&r| q.matches_record(ds.record(r))).collect();
            assert_eq!(index.seeds(&q), scan, "query {q:?}");
        }
    }

    #[test]
    fn case_folded_duplicates_post_once() {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        ds.add_record(
            RecordBuilder::new(0, s).first_name("Avram").first_name("avram").build(),
        );
        let index = QueryIndex::build(&ds);
        let q = PersonQuery { first_name: Some("Avram".into()), ..PersonQuery::default() };
        assert_eq!(index.seeds(&q), vec![RecordId(0)]);
    }

    #[test]
    fn sparse_membership_seeds_only_indexed_records() {
        // A per-shard index holds a sparse rid subset; unconstrained
        // queries must return exactly its members, not a dense 0..max.
        let ds = dataset();
        let mut index = QueryIndex::default();
        for rid in [RecordId(0), RecordId(2)] {
            index.add_record(rid, ds.record(rid));
        }
        assert_eq!(index.seeds(&PersonQuery::default()), vec![RecordId(0), RecordId(2)]);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn incremental_add_extends_the_index() {
        let ds = dataset();
        let mut index = QueryIndex::build(&ds);
        let extra = RecordBuilder::new(3, SourceId(0)).first_name("Guido").build();
        index.add_record(RecordId(3), &extra);
        let q = PersonQuery { first_name: Some("Guido".into()), ..PersonQuery::default() };
        assert_eq!(index.seeds(&q), vec![RecordId(0), RecordId(1), RecordId(3)]);
        assert_eq!(index.seeds(&PersonQuery::default()).len(), 4);
    }
}
