//! Deterministic binary encoding for store payloads.
//!
//! Hand-rolled like `yv_adt::persist` (the workspace's serde derives are
//! offline stubs — see `vendor/README.md`). Every encoder is paired with a
//! decoder reading exactly the bytes it wrote; floats go through
//! `f64::to_bits` so that encode ∘ decode ∘ encode is byte-identical,
//! which is what makes the snapshot round-trip test
//! (`save(load(save(x))) == save(x)`) meaningful.

use crate::error::StoreError;
use yv_records::field::{DateParts, Gender, GeoPoint, Place};
use yv_records::{Record, RecordId, Source, SourceId};
use yv_similarity::ExpertWeights;

/// FNV-1a 64-bit — the checksum guarding snapshot payloads and WAL frames.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------- writer

/// Append-only byte sink with little-endian primitives.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    #[must_use]
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bit-exact float encoding; NaN round-trips with its payload.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed string; a string whose length does not fit the u32
    /// prefix is a typed error, not a panic.
    pub fn str(&mut self, s: &str) -> Result<(), StoreError> {
        self.u32(
            u32::try_from(s.len())
                .map_err(|_| StoreError::LimitExceeded { what: "string", len: s.len() })?,
        );
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    pub fn opt_str(&mut self, s: Option<&str>) -> Result<(), StoreError> {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s)?;
            }
        }
        Ok(())
    }

    pub fn opt_u8(&mut self, v: Option<u8>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u8(v);
            }
        }
    }

    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u32(v);
            }
        }
    }

    pub fn opt_i32(&mut self, v: Option<i32>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.i32(v);
            }
        }
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }
}

// ---------------------------------------------------------------- reader

/// Cursor over a payload slice; every read is bounds-checked and returns
/// `StoreError::Corrupt` on truncation rather than panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "truncated while reading {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Fixed-width read as an owned array; `take` guarantees the length,
    /// so a mismatch here is corruption, never a panic.
    fn array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], StoreError> {
        self.take(N, what)?
            .try_into()
            .map_err(|_| StoreError::Corrupt(format!("bad fixed-width slice for {what}")))
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array(what)?))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array(what)?))
    }

    pub fn i32(&mut self, what: &str) -> Result<i32, StoreError> {
        Ok(i32::from_le_bytes(self.array(what)?))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub fn str(&mut self, what: &str) -> Result<String, StoreError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("invalid UTF-8 in {what}")))
    }

    pub fn opt_str(&mut self, what: &str) -> Result<Option<String>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(what)?)),
            t => Err(StoreError::Corrupt(format!("bad option tag {t} for {what}"))),
        }
    }

    pub fn opt_u8(&mut self, what: &str) -> Result<Option<u8>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u8(what)?)),
            t => Err(StoreError::Corrupt(format!("bad option tag {t} for {what}"))),
        }
    }

    pub fn opt_u32(&mut self, what: &str) -> Result<Option<u32>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u32(what)?)),
            t => Err(StoreError::Corrupt(format!("bad option tag {t} for {what}"))),
        }
    }

    pub fn opt_i32(&mut self, what: &str) -> Result<Option<i32>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.i32(what)?)),
            t => Err(StoreError::Corrupt(format!("bad option tag {t} for {what}"))),
        }
    }

    pub fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.f64(what)?)),
            t => Err(StoreError::Corrupt(format!("bad option tag {t} for {what}"))),
        }
    }
}

// ---------------------------------------------------- domain encodings

pub fn write_source(w: &mut Writer, s: &Source) -> Result<(), StoreError> {
    w.u32(s.id.0);
    match &s.kind {
        yv_records::SourceKind::Testimony { first_name, last_name, city } => {
            w.u8(0);
            w.str(first_name)?;
            w.str(last_name)?;
            w.str(city)?;
        }
        yv_records::SourceKind::List { description } => {
            w.u8(1);
            w.str(description)?;
        }
    }
    Ok(())
}

pub fn read_source(r: &mut Reader<'_>) -> Result<Source, StoreError> {
    let id = SourceId(r.u32("source id")?);
    match r.u8("source kind")? {
        0 => {
            let first = r.str("testimony first name")?;
            let last = r.str("testimony last name")?;
            let city = r.str("testimony city")?;
            Ok(Source::testimony(id, &first, &last, &city))
        }
        1 => {
            let description = r.str("list description")?;
            Ok(Source::list(id, &description))
        }
        t => Err(StoreError::Corrupt(format!("unknown source kind tag {t}"))),
    }
}

fn write_place(w: &mut Writer, p: &Place) -> Result<(), StoreError> {
    w.opt_str(p.city.as_deref())?;
    w.opt_str(p.county.as_deref())?;
    w.opt_str(p.region.as_deref())?;
    w.opt_str(p.country.as_deref())?;
    match p.coords {
        None => w.u8(0),
        Some(GeoPoint { lat, lon }) => {
            w.u8(1);
            w.f64(lat);
            w.f64(lon);
        }
    }
    Ok(())
}

fn read_place(r: &mut Reader<'_>) -> Result<Place, StoreError> {
    let city = r.opt_str("place city")?;
    let county = r.opt_str("place county")?;
    let region = r.opt_str("place region")?;
    let country = r.opt_str("place country")?;
    let coords = match r.u8("coords tag")? {
        0 => None,
        1 => Some(GeoPoint { lat: r.f64("lat")?, lon: r.f64("lon")? }),
        t => return Err(StoreError::Corrupt(format!("bad coords tag {t}"))),
    };
    Ok(Place { city, county, region, country, coords })
}

fn write_str_vec(w: &mut Writer, v: &[String]) -> Result<(), StoreError> {
    w.u32(
        u32::try_from(v.len())
            .map_err(|_| StoreError::LimitExceeded { what: "name list", len: v.len() })?,
    );
    for s in v {
        w.str(s)?;
    }
    Ok(())
}

fn read_str_vec(r: &mut Reader<'_>, what: &str) -> Result<Vec<String>, StoreError> {
    let n = r.u32(what)? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(r.str(what)?);
    }
    Ok(out)
}

pub fn write_record(w: &mut Writer, rec: &Record) -> Result<(), StoreError> {
    w.u64(rec.book_id);
    w.u32(rec.source.0);
    write_str_vec(w, &rec.first_names)?;
    write_str_vec(w, &rec.last_names)?;
    w.opt_str(rec.maiden_name.as_deref())?;
    w.opt_str(rec.father_name.as_deref())?;
    w.opt_str(rec.mother_name.as_deref())?;
    w.opt_str(rec.mothers_maiden.as_deref())?;
    w.opt_str(rec.spouse_name.as_deref())?;
    w.opt_u8(rec.gender.map(Gender::code));
    w.opt_u8(rec.birth.day);
    w.opt_u8(rec.birth.month);
    w.opt_i32(rec.birth.year);
    w.opt_str(rec.profession.as_deref())?;
    for place in &rec.places {
        match place {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                write_place(w, p)?;
            }
        }
    }
    Ok(())
}

pub fn read_record(r: &mut Reader<'_>) -> Result<Record, StoreError> {
    let book_id = r.u64("book id")?;
    let source = SourceId(r.u32("record source")?);
    let first_names = read_str_vec(r, "first names")?;
    let last_names = read_str_vec(r, "last names")?;
    let maiden_name = r.opt_str("maiden name")?;
    let father_name = r.opt_str("father name")?;
    let mother_name = r.opt_str("mother name")?;
    let mothers_maiden = r.opt_str("mothers maiden")?;
    let spouse_name = r.opt_str("spouse name")?;
    let gender = match r.opt_u8("gender")? {
        None => None,
        Some(code) => Some(
            Gender::from_code(code)
                .ok_or_else(|| StoreError::Corrupt(format!("bad gender code {code}")))?,
        ),
    };
    let birth = DateParts {
        day: r.opt_u8("birth day")?,
        month: r.opt_u8("birth month")?,
        year: r.opt_i32("birth year")?,
    };
    let profession = r.opt_str("profession")?;
    let mut places: [Option<Place>; 4] = [None, None, None, None];
    for slot in &mut places {
        *slot = match r.u8("place tag")? {
            0 => None,
            1 => Some(read_place(r)?),
            t => return Err(StoreError::Corrupt(format!("bad place tag {t}"))),
        };
    }
    Ok(Record {
        book_id,
        source,
        first_names,
        last_names,
        maiden_name,
        father_name,
        mother_name,
        mothers_maiden,
        spouse_name,
        gender,
        birth,
        profession,
        places,
    })
}

pub fn write_record_id(w: &mut Writer, id: RecordId) {
    w.u32(id.0);
}

pub fn write_expert_weights(w: &mut Writer, weights: &ExpertWeights) {
    for ty in yv_records::ItemType::all() {
        w.f64(weights.weight(ty));
    }
}

pub fn read_expert_weights(r: &mut Reader<'_>) -> Result<ExpertWeights, StoreError> {
    let mut weights = ExpertWeights::uniform();
    for ty in yv_records::ItemType::all() {
        weights.set(ty, r.f64("expert weight")?);
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::field::PlaceType;
    use yv_records::RecordBuilder;

    fn full_record() -> Record {
        RecordBuilder::new(1_016_196, SourceId(3))
            .first_name("Guido")
            .first_name("Guidino")
            .last_name("Foa")
            .maiden_name("Levi")
            .father_name("Italo")
            .mother_name("Estela")
            .mothers_maiden("Colombo")
            .spouse_name("Rosa")
            .gender(Gender::Male)
            .birth(DateParts::full(2, 8, 1936))
            .profession("tailor")
            .place(
                PlaceType::Birth,
                Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69)),
            )
            .build()
    }

    #[test]
    fn record_round_trips() {
        let rec = full_record();
        let mut w = Writer::new();
        write_record(&mut w, &rec).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_record(&mut r).unwrap(), rec);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn sparse_record_round_trips() {
        let rec = RecordBuilder::new(7, SourceId(0)).build();
        let mut w = Writer::new();
        write_record(&mut w, &rec).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_record(&mut r).unwrap(), rec);
    }

    #[test]
    fn source_round_trips() {
        for src in [
            Source::testimony(SourceId(4), "Sara", "Levi", "Roma"),
            Source::list(SourceId(9), "deportation list 1943"),
        ] {
            let mut w = Writer::new();
            write_source(&mut w, &src).unwrap();
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(read_source(&mut r).unwrap(), src);
        }
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut w = Writer::new();
        write_record(&mut w, &full_record()).unwrap();
        let bytes = w.into_bytes();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                matches!(read_record(&mut r), Err(StoreError::Corrupt(_))),
                "cut at {cut} must be Corrupt"
            );
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
