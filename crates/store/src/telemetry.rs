//! On-disk telemetry history — one compact frame per closed window bucket.
//!
//! `yv serve --telemetry-dir DIR` appends every non-empty bucket closed by
//! the windowed rollups ([`yv_obs::WindowedHistogram`]) to
//! `DIR/telemetry.yvt`, so `HISTORY` survives a restart: on startup the
//! log is replayed into the in-memory rings before the server listens.
//!
//! The file reuses the WAL codec discipline (see [`crate::wal`]) but is
//! deliberately *fsync-light*: telemetry is best-effort history, not
//! durability-critical state, so frames are written without a per-frame
//! `sync_data` and the file is only synced when a segment rotates.
//!
//! Layout:
//!
//! ```text
//! 8 bytes   magic  "YVTELEM1"
//! u32       format version (currently 1)
//! frames:
//!   u8      frame tag (1 = closed bucket)
//!   u32     payload length
//!   bytes   payload:
//!             str   metric (command kind, e.g. "query" — never a name)
//!             u8    tier code (0 = seconds, 1 = minutes)
//!             u64   bucket epoch
//!             u8    non-empty bucket count N, then N × (u8 index, u64 count)
//!             u64   sum_ns, u64 max_ns, u64 min_ns
//!   u64     FNV-1a 64 checksum of tag + payload
//! ```
//!
//! A truncated final frame (crash or power loss mid-append) is a clean
//! stop on replay; a complete frame failing its checksum is typed
//! corruption. When the active segment grows past the size cap it is
//! renamed to `telemetry.old.yvt` (replacing any previous generation) and
//! a fresh segment is started — replay reads the old generation first, so
//! at most `2 × cap` bytes of history are ever kept.

use crate::codec::{self, Reader, Writer};
use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use yv_obs::{ClosedBucket, HistogramSnapshot, Tier, BUCKET_COUNT};

/// File magic: identifies a yv-store telemetry history segment.
pub const MAGIC: [u8; 8] = *b"YVTELEM1";
/// Telemetry format version this build reads and writes.
pub const VERSION: u32 = 1;
/// Default per-segment size cap (two segments are kept).
pub const DEFAULT_CAP_BYTES: u64 = 4 * 1024 * 1024;

/// Active segment file name inside `--telemetry-dir`.
pub const SEGMENT: &str = "telemetry.yvt";
/// Rotated previous generation.
pub const OLD_SEGMENT: &str = "telemetry.old.yvt";

const TAG_BUCKET: u8 = 1;
const HEADER_LEN: u64 = 12;

/// Append handle over the active telemetry segment.
#[derive(Debug)]
pub struct TelemetryLog {
    path: PathBuf,
    old_path: PathBuf,
    file: File,
    bytes: u64,
    cap: u64,
    rotations: u64,
    frames: u64,
}

impl TelemetryLog {
    /// Open (or create) the active segment in `dir` for appending,
    /// positioned after the last complete frame.
    pub fn open(dir: &Path, cap: u64) -> Result<TelemetryLog, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(SEGMENT);
        let old_path = dir.join(OLD_SEGMENT);
        let (file, bytes) = if path.exists() {
            let bytes = std::fs::read(&path)?;
            let valid = scan(&bytes)?.valid_len;
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(valid as u64)?;
            let mut file = file;
            use std::io::Seek as _;
            file.seek(std::io::SeekFrom::End(0))?;
            (file, valid as u64)
        } else {
            (fresh_segment(&path)?, HEADER_LEN)
        };
        Ok(TelemetryLog { path, old_path, file, bytes, cap: cap.max(HEADER_LEN + 64), rotations: 0, frames: 0 })
    }

    /// Bytes in the active segment (header plus complete frames).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Segment rotations performed by this handle.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Frames appended by this handle.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Append one closed bucket for `metric`. Empty buckets are skipped
    /// (the rings never emit them, but the log enforces it too).
    pub fn append(&mut self, metric: &str, bucket: &ClosedBucket) -> Result<(), StoreError> {
        if bucket.delta.count() == 0 {
            return Ok(());
        }
        let payload = encode_bucket(metric, bucket)?;
        let len = u32::try_from(payload.len()).map_err(|_| StoreError::LimitExceeded {
            what: "telemetry frame payload",
            len: payload.len(),
        })?;
        let mut frame = Vec::with_capacity(payload.len() + 13);
        frame.push(TAG_BUCKET);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&frame_checksum(TAG_BUCKET, &payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.frames += 1;
        if self.bytes > self.cap {
            self.rotate()?;
        }
        Ok(())
    }

    /// Retire the full active segment to `telemetry.old.yvt` and start a
    /// fresh one. The only fsync point in the log's life.
    fn rotate(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        std::fs::rename(&self.path, &self.old_path)?;
        self.file = fresh_segment(&self.path)?;
        self.bytes = HEADER_LEN;
        self.rotations += 1;
        Ok(())
    }
}

fn fresh_segment(path: &Path) -> Result<File, StoreError> {
    let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
    file.write_all(&MAGIC)?;
    file.write_all(&VERSION.to_le_bytes())?;
    file.sync_all()?;
    Ok(file)
}

fn encode_bucket(metric: &str, bucket: &ClosedBucket) -> Result<Vec<u8>, StoreError> {
    let mut w = Writer::new();
    w.str(metric)?;
    w.u8(bucket.tier.code());
    w.u64(bucket.epoch);
    let nonzero: Vec<(usize, u64)> = bucket
        .delta
        .counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| (i, n))
        .collect();
    // BUCKET_COUNT is 28, so the count and every index fit a u8.
    w.u8(nonzero.len() as u8);
    for (i, n) in nonzero {
        w.u8(i as u8);
        w.u64(n);
    }
    w.u64(bucket.delta.sum_ns);
    w.u64(bucket.delta.max_ns);
    w.u64(bucket.delta.min_ns);
    Ok(w.into_bytes())
}

fn decode_bucket(payload: &[u8]) -> Result<(String, ClosedBucket), StoreError> {
    let mut r = Reader::new(payload);
    let metric = r.str("telemetry metric")?;
    let tier_code = r.u8("telemetry tier")?;
    let tier = Tier::from_code(tier_code)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown telemetry tier code {tier_code}")))?;
    let epoch = r.u64("telemetry epoch")?;
    let n = r.u8("telemetry bucket count")? as usize;
    let mut delta = HistogramSnapshot::default();
    for _ in 0..n {
        let idx = r.u8("telemetry bucket index")? as usize;
        if idx >= BUCKET_COUNT {
            return Err(StoreError::Corrupt(format!("telemetry bucket index {idx} out of range")));
        }
        delta.counts[idx] = r.u64("telemetry bucket value")?;
    }
    delta.sum_ns = r.u64("telemetry sum_ns")?;
    delta.max_ns = r.u64("telemetry max_ns")?;
    delta.min_ns = r.u64("telemetry min_ns")?;
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes in telemetry frame",
            r.remaining()
        )));
    }
    Ok((metric, ClosedBucket { tier, epoch, delta }))
}

/// The frame checksum covers the tag and the payload.
fn frame_checksum(tag: u8, payload: &[u8]) -> u64 {
    let mut hashed = Vec::with_capacity(payload.len() + 1);
    hashed.push(tag);
    hashed.extend_from_slice(payload);
    codec::fnv1a64(&hashed)
}

/// Result of scanning one segment: decoded frames in file order plus the
/// byte length of the valid prefix (a torn tail is a clean stop).
#[derive(Debug)]
struct Scan {
    frames: Vec<(String, ClosedBucket)>,
    valid_len: usize,
}

fn scan(bytes: &[u8]) -> Result<Scan, StoreError> {
    if bytes.len() < 12 || bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(
        bytes[8..12].try_into().map_err(|_| StoreError::Corrupt("truncated version".into()))?,
    );
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let mut frames = Vec::new();
    let mut pos = 12;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 5 {
            break; // end of file, or a torn frame header
        }
        let tag = rest[0];
        let len = u32::from_le_bytes(
            rest[1..5].try_into().map_err(|_| StoreError::Corrupt("truncated frame length".into()))?,
        ) as usize;
        let Some(frame_rest) = rest.get(5..5 + len + 8) else {
            break; // torn tail: payload or checksum incomplete
        };
        let payload = &frame_rest[..len];
        let expected = u64::from_le_bytes(
            frame_rest[len..]
                .try_into()
                .map_err(|_| StoreError::Corrupt("truncated frame checksum".into()))?,
        );
        let actual = frame_checksum(tag, payload);
        if expected != actual {
            return Err(StoreError::ChecksumMismatch { expected, actual });
        }
        if tag != TAG_BUCKET {
            return Err(StoreError::Corrupt(format!("unknown telemetry frame tag {tag}")));
        }
        frames.push(decode_bucket(payload)?);
        pos += 5 + len + 8;
    }
    Ok(Scan { frames, valid_len: pos })
}

/// Replay both generations (old first) into `(metric, bucket)` pairs in
/// append order. Missing files are simply empty history.
pub fn replay(dir: &Path) -> Result<Vec<(String, ClosedBucket)>, StoreError> {
    let mut out = Vec::new();
    for name in [OLD_SEGMENT, SEGMENT] {
        let path = dir.join(name);
        if !path.exists() {
            continue;
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        out.extend(scan(&bytes)?.frames);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::sync::Arc;
    use yv_obs::{Histogram, ManualClock, WindowedHistogram};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("yv-store-telemetry-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_bucket(epoch: u64, micros: &[u64]) -> ClosedBucket {
        let h = Histogram::new();
        for &us in micros {
            h.record_ns(us * 1_000);
        }
        ClosedBucket { tier: Tier::Seconds, epoch, delta: h.snapshot() }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp("roundtrip");
        let b1 = sample_bucket(3, &[10, 20, 4000]);
        let b2 = sample_bucket(4, &[7]);
        let mut log = TelemetryLog::open(&dir, DEFAULT_CAP_BYTES).unwrap();
        log.append("query", &b1).unwrap();
        log.append("resolve", &b2).unwrap();
        assert_eq!(log.frames(), 2);
        drop(log);
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed, vec![("query".into(), b1), ("resolve".into(), b2)]);
    }

    #[test]
    fn empty_buckets_are_never_written() {
        let dir = tmp("empty");
        let mut log = TelemetryLog::open(&dir, DEFAULT_CAP_BYTES).unwrap();
        let empty = ClosedBucket { tier: Tier::Minutes, epoch: 9, delta: HistogramSnapshot::default() };
        log.append("query", &empty).unwrap();
        assert_eq!(log.frames(), 0);
        assert_eq!(log.bytes(), HEADER_LEN);
        assert_eq!(replay(&dir).unwrap(), vec![]);
    }

    #[test]
    fn size_cap_rotates_to_one_old_generation() {
        let dir = tmp("rotate");
        // A cap just above the floor forces a rotation every few frames.
        let mut log = TelemetryLog::open(&dir, 1).unwrap();
        for epoch in 0..64 {
            log.append("query", &sample_bucket(epoch, &[5, 50, 500])).unwrap();
        }
        assert!(log.rotations() > 0, "cap must force segment rotation");
        assert!(dir.join(OLD_SEGMENT).exists());
        // Replay sees the retained suffix, in order, ending at the newest
        // epoch — older epochs were aged out with their segments.
        let replayed = replay(&dir).unwrap();
        assert!(!replayed.is_empty());
        let epochs: Vec<u64> = replayed.iter().map(|(_, b)| b.epoch).collect();
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        assert_eq!(epochs, sorted, "replay preserves append order");
        assert_eq!(*epochs.last().unwrap(), 63);
    }

    #[test]
    fn torn_tail_is_a_clean_stop_and_reopen_truncates() {
        let dir = tmp("torn");
        let b1 = sample_bucket(1, &[10]);
        let b2 = sample_bucket(2, &[20]);
        let mut log = TelemetryLog::open(&dir, DEFAULT_CAP_BYTES).unwrap();
        log.append("query", &b1).unwrap();
        log.append("query", &b2).unwrap();
        drop(log);
        let path = dir.join(SEGMENT);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(replay(&dir).unwrap(), vec![("query".into(), b1)]);
        // Re-opening truncates the torn tail and appends cleanly after it.
        let mut log = TelemetryLog::open(&dir, DEFAULT_CAP_BYTES).unwrap();
        log.append("query", &b2).unwrap();
        drop(log);
        assert_eq!(replay(&dir).unwrap().len(), 2);
    }

    #[test]
    fn bitflip_is_a_typed_checksum_error() {
        let dir = tmp("bitflip");
        let mut log = TelemetryLog::open(&dir, DEFAULT_CAP_BYTES).unwrap();
        log.append("query", &sample_bucket(1, &[10, 20])).unwrap();
        drop(log);
        let path = dir.join(SEGMENT);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&dir), Err(StoreError::ChecksumMismatch { .. })));
    }

    #[test]
    fn replayed_buckets_restore_a_windowed_histogram() {
        let dir = tmp("restore");
        let clock = Arc::new(ManualClock::at(0));
        let w = WindowedHistogram::new(Arc::new(Histogram::new()), clock.clone());
        w.source().record_ns(40_000);
        w.source().record_ns(80_000);
        clock.advance(1_000_000_000);
        for b in w.rotate() {
            let mut log = TelemetryLog::open(&dir, DEFAULT_CAP_BYTES).unwrap();
            log.append("query", &b).unwrap();
        }
        // A fresh process: new windows, same clock origin, replayed log.
        let clock2 = Arc::new(ManualClock::at(1_000_000_000));
        let w2 = WindowedHistogram::new(Arc::new(Histogram::new()), clock2);
        for (metric, bucket) in replay(&dir).unwrap() {
            assert_eq!(metric, "query");
            w2.restore(bucket);
        }
        let before = w.window(yv_obs::Tier::Seconds, 60);
        let after = w2.window(yv_obs::Tier::Seconds, 60);
        assert_eq!(before.merged, after.merged);
        assert_eq!(before.buckets, after.buckets);
    }
}
