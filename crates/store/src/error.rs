//! Typed errors for the persistence layer. Corrupt or incompatible files
//! must surface as values, never panics — a serving process restarting
//! from disk has to degrade gracefully.

use std::fmt;

/// Everything that can go wrong opening, reading or writing store files.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot / WAL magic bytes.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The payload checksum does not match the trailer.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// Structurally invalid payload: truncated, bad UTF-8, out-of-range
    /// tag, dangling source reference. The string names the spot.
    Corrupt(String),
    /// The embedded ADT model failed to parse.
    Model(yv_adt::PersistError),
    /// A store directory operation was invalid (e.g. loading a directory
    /// with no snapshot).
    MissingSnapshot(std::path::PathBuf),
    /// A value to be encoded exceeds a format limit (e.g. a string or
    /// collection whose length does not fit the u32 prefix).
    LimitExceeded { what: &'static str, len: usize },
    /// Merging the per-shard WALs left a hole in the global arrival
    /// sequence: `missing_seq` was logged to `shard` (or lost with its
    /// torn tail) but never made it to disk intact, while *later*
    /// arrivals on other shards did. Record ids are assigned in sequence
    /// order, so replaying past the hole would renumber every subsequent
    /// record; the store refuses to open instead, naming the shard whose
    /// log needs attention.
    ShardWalGap { shard: usize, missing_seq: u64 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic => write!(f, "not a yv-store file (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads {supported})")
            }
            StoreError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}")
            }
            StoreError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            StoreError::Model(e) => write!(f, "embedded model: {e}"),
            StoreError::MissingSnapshot(dir) => {
                write!(f, "no snapshot in store directory {}", dir.display())
            }
            StoreError::LimitExceeded { what, len } => {
                write!(f, "{what} of length {len} exceeds the format's u32 limit")
            }
            StoreError::ShardWalGap { shard, missing_seq } => {
                write!(
                    f,
                    "shard {shard} WAL lost arrival seq {missing_seq} (torn or truncated \
                     tail) while later arrivals on other shards survived; refusing to \
                     replay past the hole"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<yv_adt::PersistError> for StoreError {
    fn from(e: yv_adt::PersistError) -> Self {
        StoreError::Model(e)
    }
}
