//! Binary wire framing for `yv serve`.
//!
//! A fresh connection speaks the line protocol (`protocol.rs`) until the
//! client's *first* request is the literal line `HELLO proto=binary`. The
//! server acknowledges with a normal text response block and from that
//! point on the same socket carries length-prefixed frames in both
//! directions — the same codec family as the WAL and telemetry files:
//!
//! ```text
//! +-----+-------------+----------------+---------------------+
//! | tag | len: u32 le | payload (len)  | fnv1a64(tag‖payload)|
//! +-----+-------------+----------------+---------------------+
//! ```
//!
//! The checksum covers the tag byte and the payload, so a flipped bit
//! anywhere in a complete frame is a [`StoreError::ChecksumMismatch`],
//! a connection cut mid-frame is a torn-tail [`StoreError::Corrupt`]
//! (distinct from the clean EOF between frames), and payload bytes left
//! over after a successful decode are trailing garbage, also
//! [`StoreError::Corrupt`]. Request payloads reuse the store codec's
//! primitives (`Writer`/`Reader`), so an `ADD` record travels in exactly
//! the encoding the WAL would log it in.
//!
//! Responses stay *semantically* identical to the text protocol: a
//! [`ResponseFrame::Block`] carries the rendered response block (status
//! line, data lines, `.` terminator) byte for byte as the text path would
//! have written it — trace tokens included — so every client-side parser
//! works unchanged over either transport. The one structured reply is
//! [`ResponseFrame::Batch`], answering the binary-only `BATCH_ADD`
//! request with one status per record in request order.

use std::io::{ErrorKind, Read, Write};

use crate::codec::{self, fnv1a64, Reader, Writer};
use crate::error::StoreError;
use crate::protocol::{Request, DEFAULT_TOP_SLOW};
use crate::store::DEFAULT_RESOLVE_K;
use yv_core::PersonQuery;
use yv_obs::{Tier, WINDOW_BUCKETS};
use yv_records::Record;

/// The negotiation line a client sends as its first request to upgrade
/// the connection to binary framing.
pub const HELLO_LINE: &str = "HELLO proto=binary";

/// Status line the server answers a successful upgrade with (a normal
/// text response block: this line, no data lines, the `.` terminator).
pub const HELLO_OK: &str = "OK hello proto=binary";

/// Ceiling on a single frame's payload. Generous enough for a
/// `BATCH_ADD` of tens of thousands of records, small enough that a
/// corrupt length prefix cannot ask the peer to allocate gigabytes.
pub const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// Frame header bytes: tag (1) + payload length (4).
pub const HEADER_LEN: usize = 5;

/// Checksum trailer bytes.
pub const TRAILER_LEN: usize = 8;

// Request tags.
const TAG_QUERY: u8 = 0x01;
const TAG_RESOLVE: u8 = 0x02;
const TAG_ADD: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_METRICS: u8 = 0x05;
const TAG_TOP: u8 = 0x06;
const TAG_TRACE: u8 = 0x07;
const TAG_HISTORY: u8 = 0x08;
const TAG_SNAPSHOT: u8 = 0x09;
const TAG_SHUTDOWN: u8 = 0x0a;
const TAG_BATCH_ADD: u8 = 0x0b;

// Response tags.
const TAG_BLOCK: u8 = 0x20;
const TAG_BATCH_STATUS: u8 = 0x21;

/// One client request as it travels on the wire. Optional knobs stay
/// optional here (mirroring what the text protocol lets a client omit);
/// defaults are applied by [`RequestFrame::into_request`] on the server,
/// so both transports resolve them to the same values.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    Query(PersonQuery),
    Resolve { name: String, k: Option<u32>, min: Option<f64> },
    Add(Box<Record>),
    /// Binary-only: many records in one round trip, answered by
    /// [`ResponseFrame::Batch`] with one status per record in order.
    BatchAdd(Vec<Record>),
    Stats,
    Metrics,
    Top { k: Option<u32> },
    Trace { id: u64, json: bool },
    History { metric: String, window: Option<u32>, tier: Option<Tier>, json: bool },
    Snapshot,
    Shutdown,
}

/// One server reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// The rendered text response block, byte-identical to what the text
    /// protocol would have written (status line, data lines, terminator).
    Block(String),
    /// Per-record outcome of a `BATCH_ADD`, in request order.
    Batch(Vec<BatchStatus>),
}

/// Outcome of one record inside a `BATCH_ADD`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStatus {
    /// The record was applied and is durable; `matches` counts the
    /// ranked matches the incremental resolver produced for it.
    Ok { matches: u32 },
    /// The record was refused; the message matches what a text `ADD`
    /// would have returned after `ERR `.
    Err(String),
}

impl RequestFrame {
    /// The wire tag identifying this request kind.
    #[must_use]
    pub const fn tag(&self) -> u8 {
        match self {
            RequestFrame::Query(_) => TAG_QUERY,
            RequestFrame::Resolve { .. } => TAG_RESOLVE,
            RequestFrame::Add(_) => TAG_ADD,
            RequestFrame::BatchAdd(_) => TAG_BATCH_ADD,
            RequestFrame::Stats => TAG_STATS,
            RequestFrame::Metrics => TAG_METRICS,
            RequestFrame::Top { .. } => TAG_TOP,
            RequestFrame::Trace { .. } => TAG_TRACE,
            RequestFrame::History { .. } => TAG_HISTORY,
            RequestFrame::Snapshot => TAG_SNAPSHOT,
            RequestFrame::Shutdown => TAG_SHUTDOWN,
        }
    }

    fn payload(&self) -> Result<Vec<u8>, StoreError> {
        let mut w = Writer::new();
        match self {
            RequestFrame::Query(q) => {
                w.opt_str(q.first_name.as_deref())?;
                w.opt_str(q.last_name.as_deref())?;
                w.f64(q.name_similarity);
                w.f64(q.certainty);
            }
            RequestFrame::Resolve { name, k, min } => {
                w.str(name)?;
                w.opt_u32(*k);
                w.opt_f64(*min);
            }
            RequestFrame::Add(record) => codec::write_record(&mut w, record)?,
            RequestFrame::BatchAdd(records) => {
                w.u32(u32::try_from(records.len()).map_err(|_| StoreError::LimitExceeded {
                    what: "BATCH_ADD record count",
                    len: records.len(),
                })?);
                for record in records {
                    codec::write_record(&mut w, record)?;
                }
            }
            RequestFrame::Stats
            | RequestFrame::Metrics
            | RequestFrame::Snapshot
            | RequestFrame::Shutdown => {}
            RequestFrame::Top { k } => w.opt_u32(*k),
            RequestFrame::Trace { id, json } => {
                w.u64(*id);
                w.u8(u8::from(*json));
            }
            RequestFrame::History { metric, window, tier, json } => {
                w.str(metric)?;
                w.opt_u32(*window);
                w.opt_u8(tier.map(Tier::code));
                w.u8(u8::from(*json));
            }
        }
        Ok(w.into_bytes())
    }

    /// Encode into a complete frame (header + payload + checksum).
    pub fn encode(&self) -> Result<Vec<u8>, StoreError> {
        encode_frame(self.tag(), &self.payload()?)
    }

    /// Decode a request payload for a known tag. Rejects unknown tags,
    /// truncated fields and trailing garbage as [`StoreError::Corrupt`].
    pub fn decode(tag: u8, payload: &[u8]) -> Result<RequestFrame, StoreError> {
        let mut r = Reader::new(payload);
        let frame = match tag {
            TAG_QUERY => RequestFrame::Query(PersonQuery {
                first_name: r.opt_str("QUERY first")?,
                last_name: r.opt_str("QUERY last")?,
                name_similarity: r.f64("QUERY similarity")?,
                certainty: r.f64("QUERY certainty")?,
            }),
            TAG_RESOLVE => RequestFrame::Resolve {
                name: r.str("RESOLVE name")?,
                k: r.opt_u32("RESOLVE k")?,
                min: r.opt_f64("RESOLVE min")?,
            },
            TAG_ADD => RequestFrame::Add(Box::new(codec::read_record(&mut r)?)),
            TAG_BATCH_ADD => {
                let count = r.u32("BATCH_ADD count")? as usize;
                // A count beyond what the payload could possibly hold is a
                // corrupt prefix; refuse before reserving memory for it.
                if count > payload.len() {
                    return Err(StoreError::Corrupt(format!(
                        "BATCH_ADD count {count} exceeds payload capacity"
                    )));
                }
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    records.push(codec::read_record(&mut r)?);
                }
                RequestFrame::BatchAdd(records)
            }
            TAG_STATS => RequestFrame::Stats,
            TAG_METRICS => RequestFrame::Metrics,
            TAG_TOP => RequestFrame::Top { k: r.opt_u32("TOP k")? },
            TAG_TRACE => RequestFrame::Trace {
                id: r.u64("TRACE id")?,
                json: read_bool(&mut r, "TRACE format")?,
            },
            TAG_HISTORY => RequestFrame::History {
                metric: r.str("HISTORY metric")?,
                window: r.opt_u32("HISTORY window")?,
                tier: match r.opt_u8("HISTORY tier")? {
                    None => None,
                    Some(0) => Some(Tier::Seconds),
                    Some(1) => Some(Tier::Minutes),
                    Some(t) => {
                        return Err(StoreError::Corrupt(format!("bad HISTORY tier code {t}")))
                    }
                },
                json: read_bool(&mut r, "HISTORY format")?,
            },
            TAG_SNAPSHOT => RequestFrame::Snapshot,
            TAG_SHUTDOWN => RequestFrame::Shutdown,
            other => {
                return Err(StoreError::Corrupt(format!("unknown request frame tag {other:#04x}")))
            }
        };
        expect_drained(&r, "request frame")?;
        Ok(frame)
    }

    /// Apply the text protocol's defaults and semantic checks, yielding
    /// the same [`Request`] (or the same `ERR` message) `parse_request`
    /// would have produced for the equivalent line. `BatchAdd` has no
    /// line-protocol counterpart and is dispatched by the server before
    /// this conversion.
    pub fn into_request(self) -> Result<Request, String> {
        match self {
            RequestFrame::Query(q) => Ok(Request::Query(q)),
            RequestFrame::Resolve { name, k, min } => {
                if name.is_empty() {
                    return Err("RESOLVE: a name argument is required".to_owned());
                }
                let k = match k {
                    None => DEFAULT_RESOLVE_K,
                    Some(0) => return Err("RESOLVE: k must be at least 1".to_owned()),
                    Some(k) => k as usize,
                };
                Ok(Request::Resolve { name, k, min })
            }
            RequestFrame::Add(record) => Ok(Request::Add(record)),
            RequestFrame::BatchAdd(_) => {
                Err("BATCH_ADD is a streaming request, not a single command".to_owned())
            }
            RequestFrame::Stats => Ok(Request::Stats),
            RequestFrame::Metrics => Ok(Request::Metrics),
            RequestFrame::Top { k } => {
                Ok(Request::Top { k: k.map_or(DEFAULT_TOP_SLOW, |k| k as usize) })
            }
            RequestFrame::Trace { id, json } => {
                if id == 0 {
                    return Err("TRACE: trace id 0 means untraced".to_owned());
                }
                Ok(Request::Trace { id, json })
            }
            RequestFrame::History { metric, window, tier, json } => {
                if metric.is_empty() {
                    return Err(
                        "HISTORY: a metric argument is required (a command kind, e.g. query)"
                            .to_owned(),
                    );
                }
                let window = match window {
                    None => WINDOW_BUCKETS,
                    Some(w) => {
                        let w = w as usize;
                        if w == 0 || w > WINDOW_BUCKETS {
                            return Err(format!(
                                "HISTORY: window {w} out of range (expected 1..={WINDOW_BUCKETS})"
                            ));
                        }
                        w
                    }
                };
                Ok(Request::History {
                    metric: metric.to_ascii_lowercase(),
                    window,
                    tier: tier.unwrap_or(Tier::Seconds),
                    json,
                })
            }
            RequestFrame::Snapshot => Ok(Request::Snapshot),
            RequestFrame::Shutdown => Ok(Request::Shutdown),
        }
    }

    /// Read one request frame off a stream. `Ok(None)` is a clean close
    /// at a frame boundary; every other shortfall is a typed error.
    pub fn read<R: Read>(r: &mut R) -> Result<Option<RequestFrame>, StoreError> {
        match read_raw_frame(r)? {
            None => Ok(None),
            Some((tag, payload)) => Ok(Some(RequestFrame::decode(tag, &payload)?)),
        }
    }
}

impl ResponseFrame {
    /// The wire tag identifying this response kind.
    #[must_use]
    pub const fn tag(&self) -> u8 {
        match self {
            ResponseFrame::Block(_) => TAG_BLOCK,
            ResponseFrame::Batch(_) => TAG_BATCH_STATUS,
        }
    }

    fn payload(&self) -> Result<Vec<u8>, StoreError> {
        let mut w = Writer::new();
        match self {
            ResponseFrame::Block(text) => w.str(text)?,
            ResponseFrame::Batch(statuses) => {
                w.u32(u32::try_from(statuses.len()).map_err(|_| StoreError::LimitExceeded {
                    what: "batch status count",
                    len: statuses.len(),
                })?);
                for status in statuses {
                    match status {
                        BatchStatus::Ok { matches } => {
                            w.u8(1);
                            w.u32(*matches);
                        }
                        BatchStatus::Err(message) => {
                            w.u8(0);
                            w.str(message)?;
                        }
                    }
                }
            }
        }
        Ok(w.into_bytes())
    }

    /// Encode into a complete frame (header + payload + checksum).
    pub fn encode(&self) -> Result<Vec<u8>, StoreError> {
        encode_frame(self.tag(), &self.payload()?)
    }

    /// Decode a response payload for a known tag.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<ResponseFrame, StoreError> {
        let mut r = Reader::new(payload);
        let frame = match tag {
            TAG_BLOCK => ResponseFrame::Block(r.str("response block")?),
            TAG_BATCH_STATUS => {
                let count = r.u32("batch status count")? as usize;
                if count > payload.len() {
                    return Err(StoreError::Corrupt(format!(
                        "batch status count {count} exceeds payload capacity"
                    )));
                }
                let mut statuses = Vec::with_capacity(count);
                for _ in 0..count {
                    statuses.push(match r.u8("batch status flag")? {
                        1 => BatchStatus::Ok { matches: r.u32("batch status matches")? },
                        0 => BatchStatus::Err(r.str("batch status message")?),
                        t => {
                            return Err(StoreError::Corrupt(format!("bad batch status flag {t}")))
                        }
                    });
                }
                ResponseFrame::Batch(statuses)
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown response frame tag {other:#04x}"
                )))
            }
        };
        expect_drained(&r, "response frame")?;
        Ok(frame)
    }

    /// Read one response frame off a stream. `Ok(None)` is a clean close
    /// at a frame boundary.
    pub fn read<R: Read>(r: &mut R) -> Result<Option<ResponseFrame>, StoreError> {
        match read_raw_frame(r)? {
            None => Ok(None),
            Some((tag, payload)) => Ok(Some(ResponseFrame::decode(tag, &payload)?)),
        }
    }
}

/// Assemble a complete frame: header, payload, checksum trailer.
fn encode_frame(tag: u8, payload: &[u8]) -> Result<Vec<u8>, StoreError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| StoreError::LimitExceeded { what: "frame payload", len: payload.len() })?;
    if len > MAX_PAYLOAD {
        return Err(StoreError::LimitExceeded { what: "frame payload", len: payload.len() });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.push(tag);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(tag, payload).to_le_bytes());
    Ok(out)
}

/// The checksum a frame's trailer must carry: FNV-1a 64 over the tag
/// byte followed by the payload (the WAL's discipline, minus the seq).
#[must_use]
pub fn frame_checksum(tag: u8, payload: &[u8]) -> u64 {
    let mut bytes = Vec::with_capacity(1 + payload.len());
    bytes.push(tag);
    bytes.extend_from_slice(payload);
    fnv1a64(&bytes)
}

/// Write a pre-encoded frame to a stream (no flush; callers decide when
/// to flush so pipelined writes can coalesce).
pub fn write_frame<W: Write>(w: &mut W, frame_bytes: &[u8]) -> Result<(), StoreError> {
    w.write_all(frame_bytes)?;
    Ok(())
}

/// Read one raw frame (tag + verified payload) off a stream.
///
/// - `Ok(None)`: the peer closed cleanly at a frame boundary.
/// - `StoreError::Corrupt("torn frame: ...")`: the connection died
///   mid-frame — the unread tail must not be acted on.
/// - `StoreError::LimitExceeded`: the length prefix exceeds
///   [`MAX_PAYLOAD`] (refused before allocating).
/// - `StoreError::ChecksumMismatch`: a complete frame whose trailer does
///   not match its bytes.
pub fn read_raw_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, StoreError> {
    let mut tag_buf = [0u8; 1];
    loop {
        match r.read(&mut tag_buf) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    let tag = tag_buf[0];
    let mut len_buf = [0u8; 4];
    read_exact_or_torn(r, &mut len_buf, "length prefix")?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_PAYLOAD {
        return Err(StoreError::LimitExceeded { what: "frame payload", len: len as usize });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_torn(r, &mut payload, "payload")?;
    let mut sum_buf = [0u8; 8];
    read_exact_or_torn(r, &mut sum_buf, "checksum trailer")?;
    let expected = u64::from_le_bytes(sum_buf);
    let actual = frame_checksum(tag, &payload);
    if expected != actual {
        return Err(StoreError::ChecksumMismatch { expected, actual });
    }
    Ok(Some((tag, payload)))
}

fn read_exact_or_torn<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            StoreError::Corrupt(format!("torn frame: connection closed mid-{what}"))
        } else {
            StoreError::Io(e)
        }
    })
}

fn read_bool(r: &mut Reader<'_>, what: &str) -> Result<bool, StoreError> {
    match r.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(StoreError::Corrupt(format!("bad bool value {t} for {what}"))),
    }
}

fn expect_drained(r: &Reader<'_>, what: &str) -> Result<(), StoreError> {
    if r.remaining() == 0 {
        Ok(())
    } else {
        Err(StoreError::Corrupt(format!(
            "trailing garbage: {} byte(s) left after decoding {what}",
            r.remaining()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use yv_records::{DateParts, Gender, RecordBuilder, SourceId};

    fn sample_record(book: u64) -> Record {
        RecordBuilder::new(book, SourceId(0))
            .first_name("Sara")
            .last_name("Levi")
            .gender(Gender::Female)
            .birth(DateParts::full(3, 7, 1921))
            .build()
    }

    fn all_request_frames() -> Vec<RequestFrame> {
        vec![
            RequestFrame::Query(PersonQuery {
                first_name: Some("Guido".to_owned()),
                last_name: None,
                name_similarity: 0.88,
                certainty: 0.25,
            }),
            RequestFrame::Resolve { name: "Lewi".to_owned(), k: Some(5), min: Some(0.5) },
            RequestFrame::Resolve { name: "Lewi".to_owned(), k: None, min: None },
            RequestFrame::Add(Box::new(sample_record(99))),
            RequestFrame::BatchAdd(vec![sample_record(1), sample_record(2)]),
            RequestFrame::Stats,
            RequestFrame::Metrics,
            RequestFrame::Top { k: Some(0) },
            RequestFrame::Top { k: None },
            RequestFrame::Trace { id: 0xb10e_24d1, json: true },
            RequestFrame::History {
                metric: "query".to_owned(),
                window: Some(5),
                tier: Some(Tier::Minutes),
                json: false,
            },
            RequestFrame::History { metric: "add".to_owned(), window: None, tier: None, json: true },
            RequestFrame::Snapshot,
            RequestFrame::Shutdown,
        ]
    }

    #[test]
    fn every_request_frame_round_trips_through_a_stream() {
        for frame in all_request_frames() {
            let bytes = frame.encode().unwrap();
            let mut cursor = Cursor::new(bytes);
            let back = RequestFrame::read(&mut cursor).unwrap().unwrap();
            assert_eq!(back, frame);
            assert!(RequestFrame::read(&mut cursor).unwrap().is_none(), "clean EOF after frame");
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let frames = vec![
            ResponseFrame::Block("OK 2\nHIT seed=1 entity=1,2\n.\n".to_owned()),
            ResponseFrame::Batch(vec![
                BatchStatus::Ok { matches: 3 },
                BatchStatus::Err("ADD: bad book id".to_owned()),
            ]),
        ];
        for frame in frames {
            let bytes = frame.encode().unwrap();
            let mut cursor = Cursor::new(bytes);
            assert_eq!(ResponseFrame::read(&mut cursor).unwrap().unwrap(), frame);
        }
    }

    #[test]
    fn torn_tail_is_a_typed_error_not_a_clean_eof() {
        let bytes = RequestFrame::Stats.encode().unwrap();
        for cut in 1..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            match RequestFrame::read(&mut cursor) {
                Err(StoreError::Corrupt(msg)) => {
                    assert!(msg.contains("torn frame"), "cut at {cut}: {msg}");
                }
                other => panic!("cut at {cut}: expected torn-frame error, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bit_in_a_complete_frame_is_a_checksum_mismatch() {
        let mut bytes = RequestFrame::Resolve {
            name: "Lewi".to_owned(),
            k: Some(3),
            min: None,
        }
        .encode()
        .unwrap();
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0x40;
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            RequestFrame::read(&mut cursor),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_inside_a_checksummed_payload_is_corrupt() {
        // Build a payload with extra bytes, checksum it correctly — the
        // frame layer passes, the decoder must still refuse the surplus.
        let mut payload = Vec::new();
        payload.extend_from_slice(&RequestFrame::Stats.payload().unwrap());
        payload.push(0xAB);
        let framed = encode_frame(TAG_STATS, &payload).unwrap();
        let mut cursor = Cursor::new(framed);
        match RequestFrame::read(&mut cursor) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("trailing garbage"), "{msg}"),
            other => panic!("expected trailing-garbage error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut bytes = vec![TAG_STATS];
        bytes.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            RequestFrame::read(&mut cursor),
            Err(StoreError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn unknown_tags_are_corrupt_on_both_sides() {
        let framed = encode_frame(0x7f, &[]).unwrap();
        let mut cursor = Cursor::new(framed.clone());
        assert!(matches!(RequestFrame::read(&mut cursor), Err(StoreError::Corrupt(_))));
        let mut cursor = Cursor::new(framed);
        assert!(matches!(ResponseFrame::read(&mut cursor), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn into_request_applies_the_text_protocol_defaults_and_refusals() {
        use crate::protocol::parse_request;
        // Defaults agree with the line parser.
        let binary = RequestFrame::Resolve { name: "Lewi".to_owned(), k: None, min: None }
            .into_request()
            .unwrap();
        assert_eq!(binary, parse_request("RESOLVE Lewi").unwrap());
        let binary = RequestFrame::Top { k: None }.into_request().unwrap();
        assert_eq!(binary, parse_request("TOP").unwrap());
        let binary = RequestFrame::History {
            metric: "QUERY".to_owned(),
            window: None,
            tier: None,
            json: false,
        }
        .into_request()
        .unwrap();
        assert_eq!(binary, parse_request("HISTORY query").unwrap());
        // Refusals carry the same ERR messages.
        assert_eq!(
            RequestFrame::Resolve { name: "x".to_owned(), k: Some(0), min: None }
                .into_request()
                .unwrap_err(),
            parse_request("RESOLVE x k=0").unwrap_err()
        );
        assert_eq!(
            RequestFrame::Trace { id: 0, json: false }.into_request().unwrap_err(),
            parse_request("TRACE 0").unwrap_err()
        );
        let over = u32::try_from(WINDOW_BUCKETS + 1).unwrap();
        assert_eq!(
            RequestFrame::History {
                metric: "query".to_owned(),
                window: Some(over),
                tier: None,
                json: false
            }
            .into_request()
            .unwrap_err(),
            parse_request(&format!("HISTORY query window={}", WINDOW_BUCKETS + 1)).unwrap_err()
        );
    }
}
