//! The `yv serve` line protocol.
//!
//! One request per line, `key=value` tokens separated by whitespace
//! (values therefore cannot contain spaces — a binary protocol is a
//! roadmap item). Responses are one `OK ...` or `ERR ...` status line,
//! zero or more data lines, and a lone `.` terminator:
//!
//! ```text
//! > QUERY first=Guido last=Foa certainty=1.0
//! < OK 2
//! < HIT seed=17 entity=17,203,5044
//! < HIT seed=203 entity=17,203,5044
//! < .
//! > ADD book=99 source=0 first=Sara last=Levi gender=f year=1921
//! < OK matches=3
//! < .
//! > RESOLVE Lewi k=3 min=0.5
//! < OK 2
//! < CAND entity=17 score=0.93110290407 name=levi members=17,203,5044
//! < CAND entity=88 score=0.71842 name=lewin members=88
//! < .
//! > STATS
//! < OK records=5000 sources=12 matches=10817 shards=4 wal=1 wal_bytes=104 vocabulary=1943 ...
//! < SHARD 0 records=1290 vocabulary=522 postings=2581 wal=1 wal_bytes=104
//! < SHARD 1 records=1244 vocabulary=489 postings=2487 wal=0 wal_bytes=0
//! < SHARD 2 records=1267 vocabulary=501 postings=2530 wal=0 wal_bytes=0
//! < SHARD 3 records=1199 vocabulary=431 postings=2399 wal=0 wal_bytes=0
//! < CMD QUERY count=240 errors=0 mean_us=412 p50_us=256 p95_us=1024 p99_us=2048 max_us=1940
//! < CMD ADD count=12 errors=1 mean_us=95 p50_us=64 p95_us=256 p99_us=256 max_us=221
//! < CMD SNAPSHOT count=1 errors=0 mean_us=5210 p50_us=8192 p95_us=8192 p99_us=8192 max_us=5210
//! < .
//! > TOP k=1
//! < OK top
//! < RING capacity=512 occupancy=253 captured=253 evicted=0 sampled=2 last_slow_trace=b10e24d1fa8c0f37
//! < CMD QUERY count=240 errors=0 mean_us=412 p50_us=256 p95_us=1024 p99_us=2048 max_us=1940
//! < ...
//! < SLOW trace=b10e24d1fa8c0f37 command=RESOLVE status=ok conn=3 total_ns=2104930 spans=8
//! < .
//! > TRACE b10e24d1fa8c0f37
//! < OK trace=b10e24d1fa8c0f37 command=RESOLVE status=ok conn=3 total_ns=2104930 spans=8 dropped=0 name_digest=5817832
//! < SPAN name=parse depth=0 start_ns=110 dur_ns=1800
//! < SPAN name=shard_fanout depth=0 start_ns=2050 dur_ns=1990000
//! <   SPAN name=shard depth=1 shard=0 start_ns=2300 dur_ns=470000 cands=2
//! < ...
//! < .
//! > HISTORY query window=5 tier=s
//! < OK history metric=query tier=s window=5 now_epoch=93 buckets=2
//! < WINDOW count=240 mean_us=412 p50_us=256 p95_us=1024 p99_us=2048 min_us=38 max_us=1940
//! < SLO metric=query p=0.99 threshold_us=5000 window=60 short_window=10 state=ok burn_long_pct=0 burn_short_pct=0
//! < BUCKET epoch=91 count=120 mean_us=400 p50_us=250 max_us=1800
//! < BUCKET epoch=92 count=120 mean_us=424 p50_us=262 max_us=1940
//! < .
//! > METRICS
//! < OK metrics
//! < # HELP yv_cmd_query_latency_us QUERY latency (microsecond buckets)
//! < # TYPE yv_cmd_query_latency_us histogram
//! < yv_cmd_query_latency_us_bucket{le="1"} 0
//! < ...
//! < .
//! > SNAPSHOT
//! < OK snapshot
//! < .
//! > SHUTDOWN
//! < OK bye
//! < .
//! ```

use crate::store::DEFAULT_RESOLVE_K;
use yv_core::{PersonQuery, QueryHit};
use yv_fuzzy::RankedEntity;
use yv_obs::{RequestTrace, RingStats, SloRule, SloStatus, Tier, WindowView, WINDOW_BUCKETS};
use yv_records::{DateParts, Gender, Record, RecordBuilder, SourceId};

/// Slow-trace summary rows a bare `TOP` returns.
pub const DEFAULT_TOP_SLOW: usize = 5;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Query(PersonQuery),
    Resolve {
        /// The (possibly misspelled) name to resolve.
        name: String,
        /// Maximum candidates returned (defaults to
        /// [`DEFAULT_RESOLVE_K`], never 0).
        k: usize,
        /// Minimum blended score, if the client set one.
        min: Option<f64>,
    },
    Add(Box<Record>),
    Stats,
    Metrics,
    Top {
        /// Slow-trace summary rows to include (defaults to
        /// [`DEFAULT_TOP_SLOW`]; 0 suppresses them).
        k: usize,
    },
    Trace {
        /// The trace id to look up (as issued in a `trace=` token).
        id: u64,
        /// Render the span tree as one JSON data line instead of
        /// `SPAN` lines.
        json: bool,
    },
    History {
        /// The windowed metric: a lowercase command kind (e.g. `query`).
        metric: String,
        /// Closed buckets to cover, ending at the open one
        /// (1..=[`WINDOW_BUCKETS`]).
        window: usize,
        /// Rollup granularity: seconds or minutes.
        tier: Tier,
        /// Render the history as one JSON data line instead of
        /// `WINDOW`/`SLO`/`BUCKET` rows.
        json: bool,
    },
    Snapshot,
    Shutdown,
}

impl Request {
    /// The canonical command name — a static string safe to embed in
    /// structured logs without escaping.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Request::Query(_) => "QUERY",
            Request::Resolve { .. } => "RESOLVE",
            Request::Add(_) => "ADD",
            Request::Stats => "STATS",
            Request::Metrics => "METRICS",
            Request::Top { .. } => "TOP",
            Request::Trace { .. } => "TRACE",
            Request::History { .. } => "HISTORY",
            Request::Snapshot => "SNAPSHOT",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// The response terminator line.
pub const TERMINATOR: &str = ".";

/// Parse one request line. Errors are human-readable strings destined for
/// an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next().ok_or_else(|| "empty request".to_owned())?;
    let args: Vec<&str> = tokens.collect();
    match command.to_ascii_uppercase().as_str() {
        "QUERY" => parse_query(&args).map(Request::Query),
        "RESOLVE" => parse_resolve(&args),
        "ADD" => parse_add(&args).map(|r| Request::Add(Box::new(r))),
        "STATS" => expect_no_args("STATS", &args).map(|()| Request::Stats),
        "METRICS" => expect_no_args("METRICS", &args).map(|()| Request::Metrics),
        "TOP" => parse_top(&args),
        "TRACE" => parse_trace(&args),
        "HISTORY" => parse_history(&args),
        "SNAPSHOT" => expect_no_args("SNAPSHOT", &args).map(|()| Request::Snapshot),
        "SHUTDOWN" => expect_no_args("SHUTDOWN", &args).map(|()| Request::Shutdown),
        other => Err(format!(
            "unknown command {other}; expected QUERY, RESOLVE, ADD, STATS, METRICS, TOP, \
             TRACE, HISTORY, SNAPSHOT or SHUTDOWN"
        )),
    }
}

/// Parse `TOP [k=N]` — live per-command stats plus the `N` most recent
/// slow-trace summaries.
fn parse_top(args: &[&str]) -> Result<Request, String> {
    let mut k = DEFAULT_TOP_SLOW;
    let mut seen = false;
    for token in args {
        let (key, value) = split_kv(token, "TOP")?;
        match key {
            "k" if seen => return Err("TOP: duplicate key k".to_owned()),
            "k" => {
                k = value.parse().map_err(|_| {
                    format!("TOP: bad k value {value:?} (expected a non-negative integer)")
                })?;
                seen = true;
            }
            other => return Err(format!("TOP: unknown key {other}")),
        }
    }
    Ok(Request::Top { k })
}

/// Parse `TRACE <id> [format=human|json]`. The id is the hex token the
/// server returned (`trace=` prefix tolerated, so the wire token can be
/// pasted back verbatim).
fn parse_trace(args: &[&str]) -> Result<Request, String> {
    let Some((&raw, options)) = args.split_first() else {
        return Err("TRACE: a trace id argument is required".to_owned());
    };
    let hex = raw.strip_prefix("trace=").unwrap_or(raw);
    let id = u64::from_str_radix(hex, 16)
        .map_err(|_| format!("TRACE: bad trace id {raw:?} (expected hex)"))?;
    if id == 0 {
        return Err("TRACE: trace id 0 means untraced".to_owned());
    }
    let mut json = false;
    let mut seen = false;
    for token in options {
        let (key, value) = split_kv(token, "TRACE")?;
        match key {
            "format" if seen => return Err("TRACE: duplicate key format".to_owned()),
            "format" => {
                json = match value {
                    "json" => true,
                    "human" => false,
                    other => {
                        return Err(format!(
                            "TRACE: bad format {other:?} (expected human or json)"
                        ))
                    }
                };
                seen = true;
            }
            other => return Err(format!("TRACE: unknown key {other}")),
        }
    }
    Ok(Request::Trace { id, json })
}

/// Parse `HISTORY <metric> [window=N] [tier=s|m] [format=human|json]`.
/// The metric comes first as a bare token (a command kind, matched
/// case-insensitively so `HISTORY QUERY` and `HISTORY query` agree);
/// the server rejects kinds it does not track.
fn parse_history(args: &[&str]) -> Result<Request, String> {
    let Some((&metric, options)) = args.split_first() else {
        return Err("HISTORY: a metric argument is required (a command kind, e.g. query)".to_owned());
    };
    if metric.contains('=') {
        return Err(format!("HISTORY: first argument must be a bare metric name, got {metric:?}"));
    }
    let metric = metric.to_ascii_lowercase();
    let mut window = WINDOW_BUCKETS;
    let mut tier = Tier::Seconds;
    let mut json = false;
    let (mut seen_window, mut seen_tier, mut seen_format) = (false, false, false);
    for token in options {
        let (key, value) = split_kv(token, "HISTORY")?;
        match key {
            "window" if seen_window => return Err("HISTORY: duplicate key window".to_owned()),
            "window" => {
                let parsed: usize = value.parse().map_err(|_| {
                    format!("HISTORY: bad window value {value:?} (expected 1..={WINDOW_BUCKETS})")
                })?;
                if parsed == 0 || parsed > WINDOW_BUCKETS {
                    return Err(format!(
                        "HISTORY: window {parsed} out of range (expected 1..={WINDOW_BUCKETS})"
                    ));
                }
                window = parsed;
                seen_window = true;
            }
            "tier" if seen_tier => return Err("HISTORY: duplicate key tier".to_owned()),
            "tier" => {
                tier = Tier::parse(value)
                    .ok_or_else(|| format!("HISTORY: bad tier {value:?} (expected s or m)"))?;
                seen_tier = true;
            }
            "format" if seen_format => return Err("HISTORY: duplicate key format".to_owned()),
            "format" => {
                json = match value {
                    "json" => true,
                    "human" => false,
                    other => {
                        return Err(format!(
                            "HISTORY: bad format {other:?} (expected human or json)"
                        ))
                    }
                };
                seen_format = true;
            }
            other => return Err(format!("HISTORY: unknown key {other}")),
        }
    }
    Ok(Request::History { metric, window, tier, json })
}

/// Parse `RESOLVE <name> [k=N] [min=SCORE]`. The name comes first as a
/// bare token; the options follow as `key=value` with the same
/// duplicate-key discipline as `QUERY`. `k=0` is rejected with a
/// dedicated message — it would silently answer nothing — as are
/// non-numeric `k`/`min` values.
fn parse_resolve(args: &[&str]) -> Result<Request, String> {
    let Some((&name, options)) = args.split_first() else {
        return Err("RESOLVE: a name argument is required".to_owned());
    };
    if name.contains('=') {
        return Err(format!("RESOLVE: the name must come before options, got {name:?}"));
    }
    let mut k = DEFAULT_RESOLVE_K;
    let mut min = None;
    let mut seen: Vec<&str> = Vec::new();
    for token in options {
        let (key, value) = split_kv(token, "RESOLVE")?;
        if seen.contains(&key) {
            return Err(format!("RESOLVE: duplicate key {key}"));
        }
        match key {
            "k" => {
                let parsed: usize = value.parse().map_err(|_| {
                    format!("RESOLVE: bad k value {value:?} (expected a positive integer)")
                })?;
                if parsed == 0 {
                    return Err("RESOLVE: k must be at least 1".to_owned());
                }
                k = parsed;
            }
            "min" => {
                min = Some(value.parse().map_err(|_| {
                    format!("RESOLVE: bad min value {value:?} (expected a number)")
                })?);
            }
            other => return Err(format!("RESOLVE: unknown key {other}")),
        }
        seen.push(key);
    }
    Ok(Request::Resolve { name: name.to_owned(), k, min })
}

fn expect_no_args(command: &str, args: &[&str]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("{command} takes no arguments"))
    }
}

fn split_kv<'a>(token: &'a str, command: &str) -> Result<(&'a str, &'a str), String> {
    token
        .split_once('=')
        .ok_or_else(|| format!("{command}: expected key=value, got {token:?}"))
}

fn parse_query(args: &[&str]) -> Result<PersonQuery, String> {
    let mut query = PersonQuery::default();
    // Every QUERY key is single-valued, so a repeat is a client bug: the
    // earlier value would be silently discarded and the client would get
    // an answer to a question it didn't mean to ask. Reject instead.
    let mut seen: Vec<&str> = Vec::new();
    for token in args {
        let (key, value) = split_kv(token, "QUERY")?;
        if seen.contains(&key) {
            return Err(format!("QUERY: duplicate key {key}"));
        }
        match key {
            "first" => query.first_name = Some(value.to_owned()),
            "last" => query.last_name = Some(value.to_owned()),
            "similarity" => query.name_similarity = parse_f64("similarity", value)?,
            "certainty" => query.certainty = parse_f64("certainty", value)?,
            other => return Err(format!("QUERY: unknown key {other}")),
        }
        seen.push(key);
    }
    Ok(query)
}

fn parse_add(args: &[&str]) -> Result<Record, String> {
    let mut book: Option<u64> = None;
    let mut source: Option<u32> = None;
    let mut builder: Option<RecordBuilder> = None;
    let mut pending: Vec<(String, String)> = Vec::new();
    // `first` and `last` legitimately repeat (records carry name lists);
    // every other ADD key is single-valued in the record schema, so a
    // repeat would silently drop the earlier value. Reject those.
    let mut seen: Vec<&str> = Vec::new();
    for token in args {
        let (key, value) = split_kv(token, "ADD")?;
        if !matches!(key, "first" | "last") {
            if seen.contains(&key) {
                return Err(format!("ADD: duplicate key {key}"));
            }
            seen.push(key);
        }
        match key {
            "book" => {
                book = Some(value.parse().map_err(|_| format!("ADD: bad book id {value:?}"))?);
            }
            "source" => {
                source =
                    Some(value.parse().map_err(|_| format!("ADD: bad source id {value:?}"))?);
            }
            _ => pending.push((key.to_owned(), value.to_owned())),
        }
        if builder.is_none() {
            if let (Some(b), Some(s)) = (book, source) {
                builder = Some(RecordBuilder::new(b, SourceId(s)));
            }
        }
    }
    let Some(mut builder) = builder else {
        return Err("ADD: book= and source= are required".to_owned());
    };
    let mut birth = DateParts::default();
    for (key, value) in pending {
        builder = match key.as_str() {
            "first" => builder.first_name(value),
            "last" => builder.last_name(value),
            "maiden" => builder.maiden_name(value),
            "father" => builder.father_name(value),
            "mother" => builder.mother_name(value),
            "spouse" => builder.spouse_name(value),
            "profession" => builder.profession(value),
            "gender" => match value.as_str() {
                "m" | "M" => builder.gender(Gender::Male),
                "f" | "F" => builder.gender(Gender::Female),
                other => return Err(format!("ADD: gender must be m or f, got {other:?}")),
            },
            "day" => {
                birth.day =
                    Some(value.parse().map_err(|_| format!("ADD: bad day {value:?}"))?);
                builder
            }
            "month" => {
                birth.month =
                    Some(value.parse().map_err(|_| format!("ADD: bad month {value:?}"))?);
                builder
            }
            "year" => {
                birth.year =
                    Some(value.parse().map_err(|_| format!("ADD: bad year {value:?}"))?);
                builder
            }
            other => return Err(format!("ADD: unknown key {other}")),
        };
    }
    Ok(builder.birth(birth).build())
}

fn parse_f64(what: &str, value: &str) -> Result<f64, String> {
    value.parse().map_err(|_| format!("bad {what} value {value:?}"))
}

/// Render query hits as response lines (status, data, terminator).
#[must_use]
pub fn format_hits(hits: &[QueryHit]) -> String {
    let mut out = format!("OK {}\n", hits.len());
    for hit in hits {
        let entity: Vec<String> = hit.entity.iter().map(|r| r.0.to_string()).collect();
        out.push_str(&format!("HIT seed={} entity={}\n", hit.seed.0, entity.join(",")));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// Render ranked `RESOLVE` candidates as response lines (status, one
/// `CAND` line per hit, terminator). Scores use plain `Display` — no
/// fixed-precision rounding — so identical rankings render to identical
/// bytes and the restart-identity tests can compare responses directly.
#[must_use]
pub fn format_candidates(hits: &[RankedEntity]) -> String {
    let mut out = format!("OK {}\n", hits.len());
    for hit in hits {
        let members: Vec<String> = hit.members.iter().map(|r| r.0.to_string()).collect();
        out.push_str(&format!(
            "CAND entity={} score={} name={} members={}\n",
            hit.entity.0,
            hit.score,
            hit.name,
            members.join(",")
        ));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// Render a single-status response (`OK ...` / `ERR ...`).
#[must_use]
pub fn format_status(status: &str) -> String {
    format!("{status}\n{TERMINATOR}\n")
}

/// Render a `METRICS` response: status line, the Prometheus text
/// exposition verbatim as data lines, and the terminator. Exposition
/// lines are metric samples or `# HELP`/`# TYPE` comments, so none can
/// collide with the lone-`.` terminator.
#[must_use]
pub fn format_metrics(exposition: &str) -> String {
    let mut out = String::with_capacity(exposition.len() + 16);
    out.push_str("OK metrics\n");
    out.push_str(exposition);
    if !exposition.ends_with('\n') && !exposition.is_empty() {
        out.push('\n');
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// One per-command row of the `STATS` response: request/error counts and
/// a latency summary in integer microseconds (percentiles are histogram
/// bucket upper bounds, hence powers of two). `count` is the number of
/// latency-measured requests — successes *and* errors — read from the
/// same histogram snapshot as the percentiles, so the row always
/// describes one consistent instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandStats {
    pub name: &'static str,
    pub count: u64,
    pub errors: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Exact worst latency (not a bucket bound), microseconds.
    pub max_us: u64,
}

/// Render the `STATS` response: the store-wide status line, one `SHARD`
/// data line per shard, one `CMD` data line per command kind, and the
/// terminator.
#[must_use]
pub fn format_stats(
    status: &str,
    shards: &[crate::shard::ShardStats],
    commands: &[CommandStats],
) -> String {
    let mut out = format!("{status}\n");
    for s in shards {
        out.push_str(&format!(
            "SHARD {} records={} vocabulary={} postings={} wal={} wal_bytes={} \
             fuzzy_names={} fuzzy_grams={} fuzzy_postings={}\n",
            s.shard,
            s.records,
            s.vocabulary,
            s.postings,
            s.wal_entries,
            s.wal_bytes,
            s.fuzzy_names,
            s.fuzzy_grams,
            s.fuzzy_postings
        ));
    }
    for c in commands {
        out.push_str(&format_cmd_row(c));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

fn format_cmd_row(c: &CommandStats) -> String {
    format!(
        "CMD {} count={} errors={} mean_us={} p50_us={} p95_us={} p99_us={} max_us={}\n",
        c.name, c.count, c.errors, c.mean_us, c.p50_us, c.p95_us, c.p99_us, c.max_us
    )
}

/// Splice a `trace=<id>` token onto the end of a response's `OK` status
/// line. `ERR` responses and the untraced id 0 pass through untouched —
/// the token is a success artifact a client can paste into `TRACE`.
#[must_use]
pub fn with_trace_token(response: &str, trace_id: u64) -> String {
    if trace_id == 0 || !response.starts_with("OK") {
        return response.to_owned();
    }
    match response.split_once('\n') {
        Some((status, rest)) => format!("{status} trace={trace_id:016x}\n{rest}"),
        None => format!("{response} trace={trace_id:016x}"),
    }
}

fn push_span_args(out: &mut String, args: &[(&'static str, u64)]) {
    for (key, value) in args {
        out.push_str(&format!(" {key}={value}"));
    }
}

/// Render a `TRACE` response as a human-readable span tree that is still
/// machine-parseable: a status line describing the request, one `SPAN`
/// data line per span (indented two spaces per depth, every field a
/// `key=value` token), and the terminator. Span starts are rendered
/// relative to the request's accept time, so renderings are byte-
/// identical whenever the trace was captured under a deterministic
/// clock, regardless of the clock's absolute origin.
#[must_use]
pub fn format_trace(trace: &RequestTrace) -> String {
    let mut out = format!(
        "OK trace={:016x} command={} status={} conn={} total_ns={} spans={} dropped={}",
        trace.id,
        trace.command,
        if trace.ok { "ok" } else { "err" },
        trace.conn,
        trace.total_ns,
        trace.spans().len(),
        trace.dropped_spans
    );
    push_span_args(&mut out, trace.args());
    out.push('\n');
    for span in trace.spans() {
        for _ in 0..span.depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "SPAN name={} depth={}",
            span.name, span.depth
        ));
        if let Some(shard) = span.shard() {
            out.push_str(&format!(" shard={shard}"));
        }
        out.push_str(&format!(
            " start_ns={} dur_ns={}",
            span.start_ns.saturating_sub(trace.start_ns),
            span.dur_ns
        ));
        push_span_args(&mut out, span.args());
        out.push('\n');
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

fn json_args(args: &[(&'static str, u64)]) -> String {
    let pairs: Vec<String> =
        args.iter().map(|(key, value)| format!("\"{key}\":{value}")).collect();
    format!("{{{}}}", pairs.join(","))
}

/// Render a `TRACE ... format=json` response: status line, one JSON
/// object data line, terminator. Names and arg keys are static protocol
/// identifiers (no quotes or backslashes), so no escaping is needed.
#[must_use]
pub fn format_trace_json(trace: &RequestTrace) -> String {
    let spans: Vec<String> = trace
        .spans()
        .iter()
        .map(|span| {
            let shard = span
                .shard()
                .map_or_else(|| "null".to_owned(), |shard| shard.to_string());
            format!(
                "{{\"name\":\"{}\",\"depth\":{},\"shard\":{},\"start_ns\":{},\
                 \"dur_ns\":{},\"args\":{}}}",
                span.name,
                span.depth,
                shard,
                span.start_ns.saturating_sub(trace.start_ns),
                span.dur_ns,
                json_args(span.args())
            )
        })
        .collect();
    let body = format!(
        "{{\"trace\":\"{:016x}\",\"command\":\"{}\",\"ok\":{},\"conn\":{},\
         \"total_ns\":{},\"dropped_spans\":{},\"args\":{},\"spans\":[{}]}}",
        trace.id,
        trace.command,
        trace.ok,
        trace.conn,
        trace.total_ns,
        trace.dropped_spans,
        json_args(trace.args()),
        spans.join(",")
    );
    format!("OK trace={:016x} format=json\n{body}\n{TERMINATOR}\n", trace.id)
}

/// Render the `TOP` response: status line, a `RING` data line with the
/// capture-ring counters, one `CMD` row per command kind (same shape as
/// `STATS`), and one `SLOW` summary line per recent tail-sampled trace,
/// newest first.
#[must_use]
pub fn format_top(
    ring: &RingStats,
    last_slow_id: u64,
    commands: &[CommandStats],
    slow: &[RequestTrace],
) -> String {
    let mut out = format!(
        "OK top\nRING capacity={} occupancy={} captured={} evicted={} sampled={} \
         last_slow_trace={:016x}\n",
        ring.capacity, ring.occupancy, ring.captured, ring.evicted, ring.sampled, last_slow_id
    );
    for c in commands {
        out.push_str(&format_cmd_row(c));
    }
    for trace in slow {
        out.push_str(&format!(
            "SLOW trace={:016x} command={} status={} conn={} total_ns={} spans={}\n",
            trace.id,
            trace.command,
            if trace.ok { "ok" } else { "err" },
            trace.conn,
            trace.total_ns,
            trace.spans().len()
        ));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// One `SLO` row: the rule, its derived short window, and the evaluated
/// burn-rate state.
fn format_slo_row(rule: &SloRule, status: &SloStatus) -> String {
    format!(
        "SLO metric={} p={} threshold_us={} window={} short_window={} state={} \
         burn_long_pct={} burn_short_pct={}\n",
        rule.metric,
        rule.p,
        rule.threshold_us,
        rule.window,
        rule.short_window(),
        status.state.label(),
        status.burn_long_pct,
        status.burn_short_pct
    )
}

/// Render the `HISTORY` response: a status line carrying the resolved
/// metric/tier/window, one `WINDOW` roll-up row over every in-window
/// sample, one `SLO` row per rule watching this metric, and one `BUCKET`
/// row per non-empty closed bucket (ascending epoch). Percentiles are
/// interpolated and clamped to the window's observed min/max
/// ([`yv_obs::HistogramSnapshot::percentile_interp_us`]), so a `p50_us`
/// can never undershoot `min_us`.
#[must_use]
pub fn format_history(metric: &str, view: &WindowView, slo: &[(SloRule, SloStatus)]) -> String {
    let mut out = format!(
        "OK history metric={} tier={} window={} now_epoch={} buckets={}\n",
        metric,
        view.tier.label(),
        view.window,
        view.now_epoch,
        view.buckets.len()
    );
    let s = view.merged.summary_interp();
    out.push_str(&format!(
        "WINDOW count={} mean_us={} p50_us={} p95_us={} p99_us={} min_us={} max_us={}\n",
        s.count, s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.min_us, s.max_us
    ));
    for (rule, status) in slo {
        out.push_str(&format_slo_row(rule, status));
    }
    for &(epoch, ref snap) in &view.buckets {
        let b = snap.summary_interp();
        out.push_str(&format!(
            "BUCKET epoch={} count={} mean_us={} p50_us={} max_us={}\n",
            epoch, b.count, b.mean_us, b.p50_us, b.max_us
        ));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// Render `HISTORY ... format=json`: the same data as [`format_history`]
/// as one JSON object on a single data line.
#[must_use]
pub fn format_history_json(
    metric: &str,
    view: &WindowView,
    slo: &[(SloRule, SloStatus)],
) -> String {
    let s = view.merged.summary_interp();
    let slo_json: Vec<String> = slo
        .iter()
        .map(|(rule, status)| {
            format!(
                "{{\"metric\":\"{}\",\"p\":{},\"threshold_us\":{},\"window\":{},\
                 \"short_window\":{},\"state\":\"{}\",\"burn_long_pct\":{},\
                 \"burn_short_pct\":{}}}",
                rule.metric,
                rule.p,
                rule.threshold_us,
                rule.window,
                rule.short_window(),
                status.state.label(),
                status.burn_long_pct,
                status.burn_short_pct
            )
        })
        .collect();
    let buckets_json: Vec<String> = view
        .buckets
        .iter()
        .map(|&(epoch, ref snap)| {
            let b = snap.summary_interp();
            format!(
                "{{\"epoch\":{},\"count\":{},\"mean_us\":{},\"p50_us\":{},\"max_us\":{}}}",
                epoch, b.count, b.mean_us, b.p50_us, b.max_us
            )
        })
        .collect();
    let body = format!(
        "{{\"metric\":\"{}\",\"tier\":\"{}\",\"window\":{},\"now_epoch\":{},\
         \"summary\":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\
         \"p99_us\":{},\"min_us\":{},\"max_us\":{}}},\"slo\":[{}],\"buckets\":[{}]}}",
        metric,
        view.tier.label(),
        view.window,
        view.now_epoch,
        s.count,
        s.mean_us,
        s.p50_us,
        s.p95_us,
        s.p99_us,
        s.min_us,
        s.max_us,
        slo_json.join(","),
        buckets_json.join(",")
    );
    format!("OK history format=json\n{body}\n{TERMINATOR}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::RecordId;

    #[test]
    fn query_parses_all_knobs() {
        let req = parse_request("QUERY first=Guido last=Foa similarity=0.9 certainty=1.5");
        let Ok(Request::Query(q)) = req else { panic!("{req:?}") };
        assert_eq!(q.first_name.as_deref(), Some("Guido"));
        assert_eq!(q.last_name.as_deref(), Some("Foa"));
        assert!((q.name_similarity - 0.9).abs() < 1e-12);
        assert!((q.certainty - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bare_query_is_unconstrained() {
        let Ok(Request::Query(q)) = parse_request("QUERY") else { panic!() };
        assert_eq!(q.first_name, None);
        assert_eq!(q.last_name, None);
    }

    #[test]
    fn add_builds_a_record() {
        let line = "ADD book=99 source=2 first=Sara last=Levi gender=f day=3 month=7 year=1921";
        let Ok(Request::Add(r)) = parse_request(line) else { panic!() };
        assert_eq!(r.book_id, 99);
        assert_eq!(r.source, SourceId(2));
        assert_eq!(r.first_names, vec!["Sara".to_owned()]);
        assert_eq!(r.gender, Some(Gender::Female));
        assert_eq!(r.birth, DateParts::full(3, 7, 1921));
    }

    #[test]
    fn add_requires_book_and_source() {
        assert!(parse_request("ADD first=Sara").is_err());
        assert!(parse_request("ADD book=1 first=Sara").is_err());
    }

    #[test]
    fn duplicate_single_valued_keys_are_protocol_errors() {
        // QUERY: every key is single-valued; last-wins used to silently
        // answer a different question than the client asked.
        for line in [
            "QUERY first=Guido first=Moshe",
            "QUERY last=Foa last=Foy",
            "QUERY similarity=0.9 similarity=0.8",
            "QUERY certainty=1.0 first=Guido certainty=0.5",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains("duplicate key"), "{line}: {err}");
        }
        // ADD: scalar record fields reject repeats...
        for line in [
            "ADD book=1 book=2 source=0 first=Sara",
            "ADD book=1 source=0 source=1 first=Sara",
            "ADD book=1 source=0 gender=f gender=m",
            "ADD book=1 source=0 maiden=Roth maiden=Katz",
            "ADD book=1 source=0 year=1921 year=1922",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains("duplicate key"), "{line}: {err}");
        }
        // ...while first/last repeat legitimately (records carry name
        // lists).
        let Ok(Request::Add(r)) =
            parse_request("ADD book=1 source=0 first=Sara first=Sura last=Levi last=Lewi")
        else {
            panic!()
        };
        assert_eq!(r.first_names, vec!["Sara".to_owned(), "Sura".to_owned()]);
        assert_eq!(r.last_names, vec!["Levi".to_owned(), "Lewi".to_owned()]);
    }

    #[test]
    fn unknown_commands_and_keys_are_rejected() {
        assert!(parse_request("FROB").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("QUERY color=blue").is_err());
        assert!(parse_request("ADD book=1 source=0 color=blue").is_err());
        assert!(parse_request("STATS now").is_err());
        assert!(parse_request("METRICS now").is_err());
    }

    #[test]
    fn metrics_parses_and_names_are_canonical() {
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(Request::Metrics.name(), "METRICS");
        assert_eq!(Request::Stats.name(), "STATS");
        assert_eq!(Request::Shutdown.name(), "SHUTDOWN");
    }

    #[test]
    fn metrics_render_exposition_between_status_and_terminator() {
        let exposition = "# TYPE yv_x counter\nyv_x 3\n";
        assert_eq!(
            format_metrics(exposition),
            "OK metrics\n# TYPE yv_x counter\nyv_x 3\n.\n"
        );
        assert_eq!(format_metrics(""), "OK metrics\n.\n");
        // A missing trailing newline is repaired, keeping the terminator
        // on its own line.
        assert_eq!(format_metrics("yv_x 3"), "OK metrics\nyv_x 3\n.\n");
    }

    #[test]
    fn stats_render_one_cmd_line_per_command() {
        let rows = [
            CommandStats {
                name: "QUERY",
                count: 3,
                errors: 0,
                mean_us: 40,
                p50_us: 32,
                p95_us: 64,
                p99_us: 64,
                max_us: 57,
            },
            CommandStats {
                name: "ADD",
                count: 0,
                errors: 1,
                mean_us: 0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
            },
        ];
        let shards = [
            crate::shard::ShardStats {
                shard: 0,
                records: 5,
                vocabulary: 9,
                postings: 11,
                wal_entries: 1,
                wal_bytes: 104,
                fuzzy_names: 9,
                fuzzy_grams: 31,
                fuzzy_postings: 40,
            },
            crate::shard::ShardStats {
                shard: 1,
                records: 2,
                vocabulary: 4,
                postings: 4,
                wal_entries: 0,
                wal_bytes: 0,
                fuzzy_names: 4,
                fuzzy_grams: 17,
                fuzzy_postings: 18,
            },
        ];
        let rendered = format_stats("OK records=7", &shards, &rows);
        assert_eq!(
            rendered,
            "OK records=7\n\
             SHARD 0 records=5 vocabulary=9 postings=11 wal=1 wal_bytes=104 \
             fuzzy_names=9 fuzzy_grams=31 fuzzy_postings=40\n\
             SHARD 1 records=2 vocabulary=4 postings=4 wal=0 wal_bytes=0 \
             fuzzy_names=4 fuzzy_grams=17 fuzzy_postings=18\n\
             CMD QUERY count=3 errors=0 mean_us=40 p50_us=32 p95_us=64 p99_us=64 max_us=57\n\
             CMD ADD count=0 errors=1 mean_us=0 p50_us=0 p95_us=0 p99_us=0 max_us=0\n\
             .\n"
        );
        assert_eq!(format_stats("OK records=7", &[], &[]), "OK records=7\n.\n");
    }

    #[test]
    fn resolve_parses_name_and_options() {
        let Ok(Request::Resolve { name, k, min }) = parse_request("RESOLVE Lewi") else {
            panic!()
        };
        assert_eq!(name, "Lewi");
        assert_eq!(k, DEFAULT_RESOLVE_K);
        assert_eq!(min, None);

        let Ok(Request::Resolve { name, k, min }) = parse_request("resolve Foa k=3 min=0.5")
        else {
            panic!()
        };
        assert_eq!(name, "Foa");
        assert_eq!(k, 3);
        assert!((min.expect("min set") - 0.5).abs() < 1e-12);
        // Negative thresholds are legal: scores are unbounded below.
        let Ok(Request::Resolve { min, .. }) = parse_request("RESOLVE Foa min=-1.5") else {
            panic!()
        };
        assert!((min.expect("min set") + 1.5).abs() < 1e-12);
    }

    #[test]
    fn resolve_misuse_gets_dedicated_errors() {
        let err = parse_request("RESOLVE").expect_err("name required");
        assert!(err.contains("name argument is required"), "{err}");
        let err = parse_request("RESOLVE k=3").expect_err("name before options");
        assert!(err.contains("name must come before options"), "{err}");
        let err = parse_request("RESOLVE Foa k=0").expect_err("k=0");
        assert!(err.contains("k must be at least 1"), "{err}");
        for bad_k in ["RESOLVE Foa k=three", "RESOLVE Foa k=-1", "RESOLVE Foa k=1.5"] {
            let err = parse_request(bad_k).expect_err(bad_k);
            assert!(err.contains("bad k value"), "{bad_k}: {err}");
        }
        let err = parse_request("RESOLVE Foa min=high").expect_err("bad min");
        assert!(err.contains("bad min value"), "{err}");
        let err = parse_request("RESOLVE Foa k=1 k=2").expect_err("duplicate k");
        assert!(err.contains("duplicate key k"), "{err}");
        let err = parse_request("RESOLVE Foa min=0.1 min=0.2").expect_err("duplicate min");
        assert!(err.contains("duplicate key min"), "{err}");
        let err = parse_request("RESOLVE Foa color=blue").expect_err("unknown key");
        assert!(err.contains("unknown key color"), "{err}");
    }

    #[test]
    fn candidates_render_with_plain_display_scores() {
        let hits = vec![
            RankedEntity {
                entity: RecordId(17),
                score: 0.612_5,
                name: "levi".to_owned(),
                members: vec![RecordId(17), RecordId(203)],
            },
            RankedEntity {
                entity: RecordId(88),
                score: 0.25,
                name: "lewin".to_owned(),
                members: vec![RecordId(88)],
            },
        ];
        assert_eq!(
            format_candidates(&hits),
            "OK 2\n\
             CAND entity=17 score=0.6125 name=levi members=17,203\n\
             CAND entity=88 score=0.25 name=lewin members=88\n\
             .\n"
        );
        assert_eq!(format_candidates(&[]), "OK 0\n.\n");
    }

    #[test]
    fn top_parses_with_optional_k() {
        assert_eq!(parse_request("TOP"), Ok(Request::Top { k: DEFAULT_TOP_SLOW }));
        assert_eq!(parse_request("top k=0"), Ok(Request::Top { k: 0 }));
        assert_eq!(parse_request("TOP k=12"), Ok(Request::Top { k: 12 }));
        let err = parse_request("TOP k=many").expect_err("bad k");
        assert!(err.contains("bad k value"), "{err}");
        let err = parse_request("TOP k=1 k=2").expect_err("duplicate k");
        assert!(err.contains("duplicate key k"), "{err}");
        let err = parse_request("TOP depth=3").expect_err("unknown key");
        assert!(err.contains("unknown key depth"), "{err}");
    }

    #[test]
    fn trace_parses_hex_ids_with_or_without_wire_prefix() {
        assert_eq!(
            parse_request("TRACE 00ab00cd00ef0011"),
            Ok(Request::Trace { id: 0x00ab_00cd_00ef_0011, json: false })
        );
        // The exact token the server printed can be pasted back.
        assert_eq!(
            parse_request("trace trace=ff00000000000001 format=json"),
            Ok(Request::Trace { id: 0xff00_0000_0000_0001, json: true })
        );
        assert_eq!(
            parse_request("TRACE 1f format=human"),
            Ok(Request::Trace { id: 0x1f, json: false })
        );
        let err = parse_request("TRACE").expect_err("id required");
        assert!(err.contains("trace id argument is required"), "{err}");
        let err = parse_request("TRACE zebra").expect_err("bad hex");
        assert!(err.contains("bad trace id"), "{err}");
        let err = parse_request("TRACE 0").expect_err("zero id");
        assert!(err.contains("untraced"), "{err}");
        let err = parse_request("TRACE 1f format=xml").expect_err("bad format");
        assert!(err.contains("bad format"), "{err}");
        let err = parse_request("TRACE 1f color=blue").expect_err("unknown key");
        assert!(err.contains("unknown key color"), "{err}");
    }

    #[test]
    fn unknown_command_error_lists_top_and_trace() {
        let err = parse_request("FROB").expect_err("unknown");
        assert!(err.contains("TOP"), "{err}");
        assert!(err.contains("TRACE"), "{err}");
        assert!(err.contains("HISTORY"), "{err}");
    }

    #[test]
    fn history_parses_metric_window_tier_and_format() {
        assert_eq!(
            parse_request("HISTORY query"),
            Ok(Request::History {
                metric: "query".to_owned(),
                window: WINDOW_BUCKETS,
                tier: Tier::Seconds,
                json: false
            })
        );
        // The metric is case-insensitive; every option is explicit here.
        assert_eq!(
            parse_request("history QUERY window=5 tier=m format=json"),
            Ok(Request::History {
                metric: "query".to_owned(),
                window: 5,
                tier: Tier::Minutes,
                json: true
            })
        );
        let err = parse_request("HISTORY").expect_err("metric required");
        assert!(err.contains("metric argument is required"), "{err}");
        let err = parse_request("HISTORY window=5").expect_err("bare metric");
        assert!(err.contains("bare metric name"), "{err}");
        let err = parse_request("HISTORY query window=0").expect_err("zero window");
        assert!(err.contains("out of range"), "{err}");
        let err = parse_request("HISTORY query window=61").expect_err("oversized window");
        assert!(err.contains("out of range"), "{err}");
        let err = parse_request("HISTORY query window=soon").expect_err("bad window");
        assert!(err.contains("bad window value"), "{err}");
        let err = parse_request("HISTORY query tier=h").expect_err("bad tier");
        assert!(err.contains("bad tier"), "{err}");
        let err = parse_request("HISTORY query tier=s tier=m").expect_err("dup tier");
        assert!(err.contains("duplicate key tier"), "{err}");
        let err = parse_request("HISTORY query format=xml").expect_err("bad format");
        assert!(err.contains("bad format"), "{err}");
        let err = parse_request("HISTORY query depth=3").expect_err("unknown key");
        assert!(err.contains("unknown key depth"), "{err}");
    }

    fn sample_view() -> (WindowView, SloRule, SloStatus) {
        let h1 = yv_obs::Histogram::new();
        for us in [10u64, 20, 30] {
            h1.record_ns(us * 1_000);
        }
        let b1 = h1.snapshot();
        let h2 = yv_obs::Histogram::new();
        h2.record_ns(100_000);
        let b2 = h2.snapshot();
        let merged = b1.merge(&b2);
        let view = WindowView {
            tier: Tier::Seconds,
            window: 5,
            now_epoch: 9,
            merged,
            buckets: vec![(7, b1), (8, b2)],
        };
        let rule =
            SloRule { metric: "query".to_owned(), p: 0.99, threshold_us: 1000, window: 60 };
        let status = rule.evaluate(&merged, &merged);
        (view, rule, status)
    }

    #[test]
    fn history_formats_exact_rows() {
        let (view, rule, status) = sample_view();
        assert_eq!(
            format_history("query", &view, &[(rule, status)]),
            "OK history metric=query tier=s window=5 now_epoch=9 buckets=2\n\
             WINDOW count=4 mean_us=40 p50_us=24 p95_us=100 p99_us=100 min_us=10 max_us=100\n\
             SLO metric=query p=0.99 threshold_us=1000 window=60 short_window=10 state=ok \
             burn_long_pct=0 burn_short_pct=0\n\
             BUCKET epoch=7 count=3 mean_us=20 p50_us=24 max_us=30\n\
             BUCKET epoch=8 count=1 mean_us=100 p50_us=100 max_us=100\n\
             .\n"
        );
    }

    #[test]
    fn history_formats_exact_json() {
        let (view, rule, status) = sample_view();
        assert_eq!(
            format_history_json("query", &view, &[(rule, status)]),
            "OK history format=json\n\
             {\"metric\":\"query\",\"tier\":\"s\",\"window\":5,\"now_epoch\":9,\
             \"summary\":{\"count\":4,\"mean_us\":40,\"p50_us\":24,\"p95_us\":100,\
             \"p99_us\":100,\"min_us\":10,\"max_us\":100},\
             \"slo\":[{\"metric\":\"query\",\"p\":0.99,\"threshold_us\":1000,\"window\":60,\
             \"short_window\":10,\"state\":\"ok\",\"burn_long_pct\":0,\"burn_short_pct\":0}],\
             \"buckets\":[{\"epoch\":7,\"count\":3,\"mean_us\":20,\"p50_us\":24,\"max_us\":30},\
             {\"epoch\":8,\"count\":1,\"mean_us\":100,\"p50_us\":100,\"max_us\":100}]}\n\
             .\n"
        );
    }

    #[test]
    fn trace_token_splices_onto_ok_status_lines_only() {
        assert_eq!(
            with_trace_token("OK 2\nHIT seed=1 entity=1\n.\n", 0xab),
            "OK 2 trace=00000000000000ab\nHIT seed=1 entity=1\n.\n"
        );
        assert_eq!(
            with_trace_token("OK matches=3\n.\n", 0x1234_5678_9abc_def0),
            "OK matches=3 trace=123456789abcdef0\n.\n"
        );
        // ERR responses and untraced requests pass through untouched.
        assert_eq!(with_trace_token("ERR nope\n.\n", 0xab), "ERR nope\n.\n");
        assert_eq!(with_trace_token("OK 2\n.\n", 0), "OK 2\n.\n");
    }

    fn sample_trace() -> RequestTrace {
        use std::sync::Arc;
        use yv_obs::{Clock, ManualClock, TraceCtx};
        let clock = Arc::new(ManualClock::at(50_000));
        let mut ctx = TraceCtx::start(0x00ab_00cd_00ef_0011, 3, Arc::clone(&clock) as Arc<dyn Clock>);
        ctx.set_command("RESOLVE");
        ctx.annotate("name_digest", 0xdead_beef);
        ctx.enter("parse");
        clock.advance(1_500);
        ctx.exit();
        ctx.enter("shard_fanout");
        for shard in 0..2u32 {
            ctx.enter_shard("shard", shard);
            ctx.arg("cands", u64::from(shard) + 2);
            clock.advance(10_000);
            ctx.exit();
        }
        ctx.exit();
        ctx.enter("merge");
        clock.advance(3_000);
        ctx.exit();
        ctx.finish(true).expect("enabled ctx")
    }

    #[test]
    fn trace_renders_a_parseable_span_tree_with_relative_starts() {
        let rendered = format_trace(&sample_trace());
        assert_eq!(
            rendered,
            "OK trace=00ab00cd00ef0011 command=RESOLVE status=ok conn=3 total_ns=24500 \
             spans=5 dropped=0 name_digest=3735928559\n\
             SPAN name=parse depth=0 start_ns=0 dur_ns=1500\n\
             SPAN name=shard_fanout depth=0 start_ns=1500 dur_ns=20000\n\
             \x20\x20SPAN name=shard depth=1 shard=0 start_ns=1500 dur_ns=10000 cands=2\n\
             \x20\x20SPAN name=shard depth=1 shard=1 start_ns=11500 dur_ns=10000 cands=3\n\
             SPAN name=merge depth=0 start_ns=21500 dur_ns=3000\n\
             .\n"
        );
        // Byte-identical across runs: the same ManualClock schedule
        // renders the same bytes, whatever the clock origin was.
        assert_eq!(rendered, format_trace(&sample_trace()));
    }

    #[test]
    fn trace_json_renders_one_data_line() {
        let rendered = format_trace_json(&sample_trace());
        let mut lines = rendered.lines();
        assert_eq!(
            lines.next(),
            Some("OK trace=00ab00cd00ef0011 format=json")
        );
        let body = lines.next().expect("json body");
        assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
        assert!(body.contains("\"command\":\"RESOLVE\""), "{body}");
        assert!(body.contains("\"args\":{\"name_digest\":3735928559}"), "{body}");
        assert!(
            body.contains(
                "{\"name\":\"shard\",\"depth\":1,\"shard\":1,\"start_ns\":11500,\
                 \"dur_ns\":10000,\"args\":{\"cands\":3}}"
            ),
            "{body}"
        );
        assert_eq!(lines.next(), Some(TERMINATOR));
        assert_eq!(lines.next(), None);
        assert_eq!(rendered, format_trace_json(&sample_trace()));
    }

    #[test]
    fn top_renders_ring_cmd_and_slow_rows() {
        let ring = RingStats {
            capacity: 512,
            occupancy: 17,
            captured: 912,
            evicted: 400,
            sampled: 2,
        };
        let rows = [CommandStats {
            name: "RESOLVE",
            count: 4,
            errors: 0,
            mean_us: 388,
            p50_us: 256,
            p95_us: 512,
            p99_us: 512,
            max_us: 497,
        }];
        let slow = [sample_trace()];
        assert_eq!(
            format_top(&ring, 0x00ab_00cd_00ef_0011, &rows, &slow),
            "OK top\n\
             RING capacity=512 occupancy=17 captured=912 evicted=400 sampled=2 \
             last_slow_trace=00ab00cd00ef0011\n\
             CMD RESOLVE count=4 errors=0 mean_us=388 p50_us=256 p95_us=512 p99_us=512 \
             max_us=497\n\
             SLOW trace=00ab00cd00ef0011 command=RESOLVE status=ok conn=3 total_ns=24500 \
             spans=5\n\
             .\n"
        );
        assert_eq!(
            format_top(&RingStats::default(), 0, &[], &[]),
            "OK top\nRING capacity=0 occupancy=0 captured=0 evicted=0 sampled=0 \
             last_slow_trace=0000000000000000\n.\n"
        );
    }

    #[test]
    fn hits_render_with_terminator() {
        let hits = vec![QueryHit {
            seed: RecordId(17),
            entity: vec![RecordId(17), RecordId(203)],
        }];
        assert_eq!(format_hits(&hits), "OK 1\nHIT seed=17 entity=17,203\n.\n");
        assert_eq!(format_hits(&[]), "OK 0\n.\n");
    }
}
