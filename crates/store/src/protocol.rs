//! The `yv serve` line protocol.
//!
//! One request per line, `key=value` tokens separated by whitespace
//! (values therefore cannot contain spaces — a binary protocol is a
//! roadmap item). Responses are one `OK ...` or `ERR ...` status line,
//! zero or more data lines, and a lone `.` terminator:
//!
//! ```text
//! > QUERY first=Guido last=Foa certainty=1.0
//! < OK 2
//! < HIT seed=17 entity=17,203,5044
//! < HIT seed=203 entity=17,203,5044
//! < .
//! > ADD book=99 source=0 first=Sara last=Levi gender=f year=1921
//! < OK matches=3
//! < .
//! > RESOLVE Lewi k=3 min=0.5
//! < OK 2
//! < CAND entity=17 score=0.93110290407 name=levi members=17,203,5044
//! < CAND entity=88 score=0.71842 name=lewin members=88
//! < .
//! > STATS
//! < OK records=5000 sources=12 matches=10817 shards=4 wal=1 wal_bytes=104 vocabulary=1943 ...
//! < SHARD 0 records=1290 vocabulary=522 postings=2581 wal=1 wal_bytes=104
//! < SHARD 1 records=1244 vocabulary=489 postings=2487 wal=0 wal_bytes=0
//! < SHARD 2 records=1267 vocabulary=501 postings=2530 wal=0 wal_bytes=0
//! < SHARD 3 records=1199 vocabulary=431 postings=2399 wal=0 wal_bytes=0
//! < CMD QUERY count=240 errors=0 mean_us=412 p50_us=256 p95_us=1024 p99_us=2048
//! < CMD ADD count=12 errors=1 mean_us=95 p50_us=64 p95_us=256 p99_us=256
//! < CMD SNAPSHOT count=1 errors=0 mean_us=5210 p50_us=8192 p95_us=8192 p99_us=8192
//! < .
//! > METRICS
//! < OK metrics
//! < # HELP yv_cmd_query_latency_us QUERY latency (microsecond buckets)
//! < # TYPE yv_cmd_query_latency_us histogram
//! < yv_cmd_query_latency_us_bucket{le="1"} 0
//! < ...
//! < .
//! > SNAPSHOT
//! < OK snapshot
//! < .
//! > SHUTDOWN
//! < OK bye
//! < .
//! ```

use crate::store::DEFAULT_RESOLVE_K;
use yv_core::{PersonQuery, QueryHit};
use yv_fuzzy::RankedEntity;
use yv_records::{DateParts, Gender, Record, RecordBuilder, SourceId};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Query(PersonQuery),
    Resolve {
        /// The (possibly misspelled) name to resolve.
        name: String,
        /// Maximum candidates returned (defaults to
        /// [`DEFAULT_RESOLVE_K`], never 0).
        k: usize,
        /// Minimum blended score, if the client set one.
        min: Option<f64>,
    },
    Add(Box<Record>),
    Stats,
    Metrics,
    Snapshot,
    Shutdown,
}

impl Request {
    /// The canonical command name — a static string safe to embed in
    /// structured logs without escaping.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Request::Query(_) => "QUERY",
            Request::Resolve { .. } => "RESOLVE",
            Request::Add(_) => "ADD",
            Request::Stats => "STATS",
            Request::Metrics => "METRICS",
            Request::Snapshot => "SNAPSHOT",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// The response terminator line.
pub const TERMINATOR: &str = ".";

/// Parse one request line. Errors are human-readable strings destined for
/// an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next().ok_or_else(|| "empty request".to_owned())?;
    let args: Vec<&str> = tokens.collect();
    match command.to_ascii_uppercase().as_str() {
        "QUERY" => parse_query(&args).map(Request::Query),
        "RESOLVE" => parse_resolve(&args),
        "ADD" => parse_add(&args).map(|r| Request::Add(Box::new(r))),
        "STATS" => expect_no_args("STATS", &args).map(|()| Request::Stats),
        "METRICS" => expect_no_args("METRICS", &args).map(|()| Request::Metrics),
        "SNAPSHOT" => expect_no_args("SNAPSHOT", &args).map(|()| Request::Snapshot),
        "SHUTDOWN" => expect_no_args("SHUTDOWN", &args).map(|()| Request::Shutdown),
        other => Err(format!(
            "unknown command {other}; expected QUERY, RESOLVE, ADD, STATS, METRICS, SNAPSHOT \
             or SHUTDOWN"
        )),
    }
}

/// Parse `RESOLVE <name> [k=N] [min=SCORE]`. The name comes first as a
/// bare token; the options follow as `key=value` with the same
/// duplicate-key discipline as `QUERY`. `k=0` is rejected with a
/// dedicated message — it would silently answer nothing — as are
/// non-numeric `k`/`min` values.
fn parse_resolve(args: &[&str]) -> Result<Request, String> {
    let Some((&name, options)) = args.split_first() else {
        return Err("RESOLVE: a name argument is required".to_owned());
    };
    if name.contains('=') {
        return Err(format!("RESOLVE: the name must come before options, got {name:?}"));
    }
    let mut k = DEFAULT_RESOLVE_K;
    let mut min = None;
    let mut seen: Vec<&str> = Vec::new();
    for token in options {
        let (key, value) = split_kv(token, "RESOLVE")?;
        if seen.contains(&key) {
            return Err(format!("RESOLVE: duplicate key {key}"));
        }
        match key {
            "k" => {
                let parsed: usize = value.parse().map_err(|_| {
                    format!("RESOLVE: bad k value {value:?} (expected a positive integer)")
                })?;
                if parsed == 0 {
                    return Err("RESOLVE: k must be at least 1".to_owned());
                }
                k = parsed;
            }
            "min" => {
                min = Some(value.parse().map_err(|_| {
                    format!("RESOLVE: bad min value {value:?} (expected a number)")
                })?);
            }
            other => return Err(format!("RESOLVE: unknown key {other}")),
        }
        seen.push(key);
    }
    Ok(Request::Resolve { name: name.to_owned(), k, min })
}

fn expect_no_args(command: &str, args: &[&str]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("{command} takes no arguments"))
    }
}

fn split_kv<'a>(token: &'a str, command: &str) -> Result<(&'a str, &'a str), String> {
    token
        .split_once('=')
        .ok_or_else(|| format!("{command}: expected key=value, got {token:?}"))
}

fn parse_query(args: &[&str]) -> Result<PersonQuery, String> {
    let mut query = PersonQuery::default();
    // Every QUERY key is single-valued, so a repeat is a client bug: the
    // earlier value would be silently discarded and the client would get
    // an answer to a question it didn't mean to ask. Reject instead.
    let mut seen: Vec<&str> = Vec::new();
    for token in args {
        let (key, value) = split_kv(token, "QUERY")?;
        if seen.contains(&key) {
            return Err(format!("QUERY: duplicate key {key}"));
        }
        match key {
            "first" => query.first_name = Some(value.to_owned()),
            "last" => query.last_name = Some(value.to_owned()),
            "similarity" => query.name_similarity = parse_f64("similarity", value)?,
            "certainty" => query.certainty = parse_f64("certainty", value)?,
            other => return Err(format!("QUERY: unknown key {other}")),
        }
        seen.push(key);
    }
    Ok(query)
}

fn parse_add(args: &[&str]) -> Result<Record, String> {
    let mut book: Option<u64> = None;
    let mut source: Option<u32> = None;
    let mut builder: Option<RecordBuilder> = None;
    let mut pending: Vec<(String, String)> = Vec::new();
    // `first` and `last` legitimately repeat (records carry name lists);
    // every other ADD key is single-valued in the record schema, so a
    // repeat would silently drop the earlier value. Reject those.
    let mut seen: Vec<&str> = Vec::new();
    for token in args {
        let (key, value) = split_kv(token, "ADD")?;
        if !matches!(key, "first" | "last") {
            if seen.contains(&key) {
                return Err(format!("ADD: duplicate key {key}"));
            }
            seen.push(key);
        }
        match key {
            "book" => {
                book = Some(value.parse().map_err(|_| format!("ADD: bad book id {value:?}"))?);
            }
            "source" => {
                source =
                    Some(value.parse().map_err(|_| format!("ADD: bad source id {value:?}"))?);
            }
            _ => pending.push((key.to_owned(), value.to_owned())),
        }
        if builder.is_none() {
            if let (Some(b), Some(s)) = (book, source) {
                builder = Some(RecordBuilder::new(b, SourceId(s)));
            }
        }
    }
    let Some(mut builder) = builder else {
        return Err("ADD: book= and source= are required".to_owned());
    };
    let mut birth = DateParts::default();
    for (key, value) in pending {
        builder = match key.as_str() {
            "first" => builder.first_name(value),
            "last" => builder.last_name(value),
            "maiden" => builder.maiden_name(value),
            "father" => builder.father_name(value),
            "mother" => builder.mother_name(value),
            "spouse" => builder.spouse_name(value),
            "profession" => builder.profession(value),
            "gender" => match value.as_str() {
                "m" | "M" => builder.gender(Gender::Male),
                "f" | "F" => builder.gender(Gender::Female),
                other => return Err(format!("ADD: gender must be m or f, got {other:?}")),
            },
            "day" => {
                birth.day =
                    Some(value.parse().map_err(|_| format!("ADD: bad day {value:?}"))?);
                builder
            }
            "month" => {
                birth.month =
                    Some(value.parse().map_err(|_| format!("ADD: bad month {value:?}"))?);
                builder
            }
            "year" => {
                birth.year =
                    Some(value.parse().map_err(|_| format!("ADD: bad year {value:?}"))?);
                builder
            }
            other => return Err(format!("ADD: unknown key {other}")),
        };
    }
    Ok(builder.birth(birth).build())
}

fn parse_f64(what: &str, value: &str) -> Result<f64, String> {
    value.parse().map_err(|_| format!("bad {what} value {value:?}"))
}

/// Render query hits as response lines (status, data, terminator).
#[must_use]
pub fn format_hits(hits: &[QueryHit]) -> String {
    let mut out = format!("OK {}\n", hits.len());
    for hit in hits {
        let entity: Vec<String> = hit.entity.iter().map(|r| r.0.to_string()).collect();
        out.push_str(&format!("HIT seed={} entity={}\n", hit.seed.0, entity.join(",")));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// Render ranked `RESOLVE` candidates as response lines (status, one
/// `CAND` line per hit, terminator). Scores use plain `Display` — no
/// fixed-precision rounding — so identical rankings render to identical
/// bytes and the restart-identity tests can compare responses directly.
#[must_use]
pub fn format_candidates(hits: &[RankedEntity]) -> String {
    let mut out = format!("OK {}\n", hits.len());
    for hit in hits {
        let members: Vec<String> = hit.members.iter().map(|r| r.0.to_string()).collect();
        out.push_str(&format!(
            "CAND entity={} score={} name={} members={}\n",
            hit.entity.0,
            hit.score,
            hit.name,
            members.join(",")
        ));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// Render a single-status response (`OK ...` / `ERR ...`).
#[must_use]
pub fn format_status(status: &str) -> String {
    format!("{status}\n{TERMINATOR}\n")
}

/// Render a `METRICS` response: status line, the Prometheus text
/// exposition verbatim as data lines, and the terminator. Exposition
/// lines are metric samples or `# HELP`/`# TYPE` comments, so none can
/// collide with the lone-`.` terminator.
#[must_use]
pub fn format_metrics(exposition: &str) -> String {
    let mut out = String::with_capacity(exposition.len() + 16);
    out.push_str("OK metrics\n");
    out.push_str(exposition);
    if !exposition.ends_with('\n') && !exposition.is_empty() {
        out.push('\n');
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// One per-command row of the `STATS` response: request/error counts and
/// a latency summary in integer microseconds (percentiles are histogram
/// bucket upper bounds, hence powers of two). `count` is the number of
/// latency-measured requests — successes *and* errors — read from the
/// same histogram snapshot as the percentiles, so the row always
/// describes one consistent instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandStats {
    pub name: &'static str,
    pub count: u64,
    pub errors: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

/// Render the `STATS` response: the store-wide status line, one `SHARD`
/// data line per shard, one `CMD` data line per command kind, and the
/// terminator.
#[must_use]
pub fn format_stats(
    status: &str,
    shards: &[crate::shard::ShardStats],
    commands: &[CommandStats],
) -> String {
    let mut out = format!("{status}\n");
    for s in shards {
        out.push_str(&format!(
            "SHARD {} records={} vocabulary={} postings={} wal={} wal_bytes={} \
             fuzzy_names={} fuzzy_grams={} fuzzy_postings={}\n",
            s.shard,
            s.records,
            s.vocabulary,
            s.postings,
            s.wal_entries,
            s.wal_bytes,
            s.fuzzy_names,
            s.fuzzy_grams,
            s.fuzzy_postings
        ));
    }
    for c in commands {
        out.push_str(&format!(
            "CMD {} count={} errors={} mean_us={} p50_us={} p95_us={} p99_us={}\n",
            c.name, c.count, c.errors, c.mean_us, c.p50_us, c.p95_us, c.p99_us
        ));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::RecordId;

    #[test]
    fn query_parses_all_knobs() {
        let req = parse_request("QUERY first=Guido last=Foa similarity=0.9 certainty=1.5");
        let Ok(Request::Query(q)) = req else { panic!("{req:?}") };
        assert_eq!(q.first_name.as_deref(), Some("Guido"));
        assert_eq!(q.last_name.as_deref(), Some("Foa"));
        assert!((q.name_similarity - 0.9).abs() < 1e-12);
        assert!((q.certainty - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bare_query_is_unconstrained() {
        let Ok(Request::Query(q)) = parse_request("QUERY") else { panic!() };
        assert_eq!(q.first_name, None);
        assert_eq!(q.last_name, None);
    }

    #[test]
    fn add_builds_a_record() {
        let line = "ADD book=99 source=2 first=Sara last=Levi gender=f day=3 month=7 year=1921";
        let Ok(Request::Add(r)) = parse_request(line) else { panic!() };
        assert_eq!(r.book_id, 99);
        assert_eq!(r.source, SourceId(2));
        assert_eq!(r.first_names, vec!["Sara".to_owned()]);
        assert_eq!(r.gender, Some(Gender::Female));
        assert_eq!(r.birth, DateParts::full(3, 7, 1921));
    }

    #[test]
    fn add_requires_book_and_source() {
        assert!(parse_request("ADD first=Sara").is_err());
        assert!(parse_request("ADD book=1 first=Sara").is_err());
    }

    #[test]
    fn duplicate_single_valued_keys_are_protocol_errors() {
        // QUERY: every key is single-valued; last-wins used to silently
        // answer a different question than the client asked.
        for line in [
            "QUERY first=Guido first=Moshe",
            "QUERY last=Foa last=Foy",
            "QUERY similarity=0.9 similarity=0.8",
            "QUERY certainty=1.0 first=Guido certainty=0.5",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains("duplicate key"), "{line}: {err}");
        }
        // ADD: scalar record fields reject repeats...
        for line in [
            "ADD book=1 book=2 source=0 first=Sara",
            "ADD book=1 source=0 source=1 first=Sara",
            "ADD book=1 source=0 gender=f gender=m",
            "ADD book=1 source=0 maiden=Roth maiden=Katz",
            "ADD book=1 source=0 year=1921 year=1922",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains("duplicate key"), "{line}: {err}");
        }
        // ...while first/last repeat legitimately (records carry name
        // lists).
        let Ok(Request::Add(r)) =
            parse_request("ADD book=1 source=0 first=Sara first=Sura last=Levi last=Lewi")
        else {
            panic!()
        };
        assert_eq!(r.first_names, vec!["Sara".to_owned(), "Sura".to_owned()]);
        assert_eq!(r.last_names, vec!["Levi".to_owned(), "Lewi".to_owned()]);
    }

    #[test]
    fn unknown_commands_and_keys_are_rejected() {
        assert!(parse_request("FROB").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("QUERY color=blue").is_err());
        assert!(parse_request("ADD book=1 source=0 color=blue").is_err());
        assert!(parse_request("STATS now").is_err());
        assert!(parse_request("METRICS now").is_err());
    }

    #[test]
    fn metrics_parses_and_names_are_canonical() {
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(Request::Metrics.name(), "METRICS");
        assert_eq!(Request::Stats.name(), "STATS");
        assert_eq!(Request::Shutdown.name(), "SHUTDOWN");
    }

    #[test]
    fn metrics_render_exposition_between_status_and_terminator() {
        let exposition = "# TYPE yv_x counter\nyv_x 3\n";
        assert_eq!(
            format_metrics(exposition),
            "OK metrics\n# TYPE yv_x counter\nyv_x 3\n.\n"
        );
        assert_eq!(format_metrics(""), "OK metrics\n.\n");
        // A missing trailing newline is repaired, keeping the terminator
        // on its own line.
        assert_eq!(format_metrics("yv_x 3"), "OK metrics\nyv_x 3\n.\n");
    }

    #[test]
    fn stats_render_one_cmd_line_per_command() {
        let rows = [
            CommandStats {
                name: "QUERY",
                count: 3,
                errors: 0,
                mean_us: 40,
                p50_us: 32,
                p95_us: 64,
                p99_us: 64,
            },
            CommandStats {
                name: "ADD",
                count: 0,
                errors: 1,
                mean_us: 0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
            },
        ];
        let shards = [
            crate::shard::ShardStats {
                shard: 0,
                records: 5,
                vocabulary: 9,
                postings: 11,
                wal_entries: 1,
                wal_bytes: 104,
                fuzzy_names: 9,
                fuzzy_grams: 31,
                fuzzy_postings: 40,
            },
            crate::shard::ShardStats {
                shard: 1,
                records: 2,
                vocabulary: 4,
                postings: 4,
                wal_entries: 0,
                wal_bytes: 0,
                fuzzy_names: 4,
                fuzzy_grams: 17,
                fuzzy_postings: 18,
            },
        ];
        let rendered = format_stats("OK records=7", &shards, &rows);
        assert_eq!(
            rendered,
            "OK records=7\n\
             SHARD 0 records=5 vocabulary=9 postings=11 wal=1 wal_bytes=104 \
             fuzzy_names=9 fuzzy_grams=31 fuzzy_postings=40\n\
             SHARD 1 records=2 vocabulary=4 postings=4 wal=0 wal_bytes=0 \
             fuzzy_names=4 fuzzy_grams=17 fuzzy_postings=18\n\
             CMD QUERY count=3 errors=0 mean_us=40 p50_us=32 p95_us=64 p99_us=64\n\
             CMD ADD count=0 errors=1 mean_us=0 p50_us=0 p95_us=0 p99_us=0\n\
             .\n"
        );
        assert_eq!(format_stats("OK records=7", &[], &[]), "OK records=7\n.\n");
    }

    #[test]
    fn resolve_parses_name_and_options() {
        let Ok(Request::Resolve { name, k, min }) = parse_request("RESOLVE Lewi") else {
            panic!()
        };
        assert_eq!(name, "Lewi");
        assert_eq!(k, DEFAULT_RESOLVE_K);
        assert_eq!(min, None);

        let Ok(Request::Resolve { name, k, min }) = parse_request("resolve Foa k=3 min=0.5")
        else {
            panic!()
        };
        assert_eq!(name, "Foa");
        assert_eq!(k, 3);
        assert!((min.expect("min set") - 0.5).abs() < 1e-12);
        // Negative thresholds are legal: scores are unbounded below.
        let Ok(Request::Resolve { min, .. }) = parse_request("RESOLVE Foa min=-1.5") else {
            panic!()
        };
        assert!((min.expect("min set") + 1.5).abs() < 1e-12);
    }

    #[test]
    fn resolve_misuse_gets_dedicated_errors() {
        let err = parse_request("RESOLVE").expect_err("name required");
        assert!(err.contains("name argument is required"), "{err}");
        let err = parse_request("RESOLVE k=3").expect_err("name before options");
        assert!(err.contains("name must come before options"), "{err}");
        let err = parse_request("RESOLVE Foa k=0").expect_err("k=0");
        assert!(err.contains("k must be at least 1"), "{err}");
        for bad_k in ["RESOLVE Foa k=three", "RESOLVE Foa k=-1", "RESOLVE Foa k=1.5"] {
            let err = parse_request(bad_k).expect_err(bad_k);
            assert!(err.contains("bad k value"), "{bad_k}: {err}");
        }
        let err = parse_request("RESOLVE Foa min=high").expect_err("bad min");
        assert!(err.contains("bad min value"), "{err}");
        let err = parse_request("RESOLVE Foa k=1 k=2").expect_err("duplicate k");
        assert!(err.contains("duplicate key k"), "{err}");
        let err = parse_request("RESOLVE Foa min=0.1 min=0.2").expect_err("duplicate min");
        assert!(err.contains("duplicate key min"), "{err}");
        let err = parse_request("RESOLVE Foa color=blue").expect_err("unknown key");
        assert!(err.contains("unknown key color"), "{err}");
    }

    #[test]
    fn candidates_render_with_plain_display_scores() {
        let hits = vec![
            RankedEntity {
                entity: RecordId(17),
                score: 0.612_5,
                name: "levi".to_owned(),
                members: vec![RecordId(17), RecordId(203)],
            },
            RankedEntity {
                entity: RecordId(88),
                score: 0.25,
                name: "lewin".to_owned(),
                members: vec![RecordId(88)],
            },
        ];
        assert_eq!(
            format_candidates(&hits),
            "OK 2\n\
             CAND entity=17 score=0.6125 name=levi members=17,203\n\
             CAND entity=88 score=0.25 name=lewin members=88\n\
             .\n"
        );
        assert_eq!(format_candidates(&[]), "OK 0\n.\n");
    }

    #[test]
    fn hits_render_with_terminator() {
        let hits = vec![QueryHit {
            seed: RecordId(17),
            entity: vec![RecordId(17), RecordId(203)],
        }];
        assert_eq!(format_hits(&hits), "OK 1\nHIT seed=17 entity=17,203\n.\n");
        assert_eq!(format_hits(&[]), "OK 0\n.\n");
    }
}
