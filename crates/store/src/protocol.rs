//! The `yv serve` line protocol.
//!
//! One request per line, `key=value` tokens separated by whitespace
//! (values therefore cannot contain spaces — a binary protocol is a
//! roadmap item). Responses are one `OK ...` or `ERR ...` status line,
//! zero or more data lines, and a lone `.` terminator:
//!
//! ```text
//! > QUERY first=Guido last=Foa certainty=1.0
//! < OK 2
//! < HIT seed=17 entity=17,203,5044
//! < HIT seed=203 entity=17,203,5044
//! < .
//! > ADD book=99 source=0 first=Sara last=Levi gender=f year=1921
//! < OK matches=3
//! < .
//! > STATS
//! < OK records=5000 sources=12 matches=10817 shards=4 wal=1 wal_bytes=104 vocabulary=1943 ...
//! < SHARD 0 records=1290 vocabulary=522 postings=2581 wal=1 wal_bytes=104
//! < SHARD 1 records=1244 vocabulary=489 postings=2487 wal=0 wal_bytes=0
//! < SHARD 2 records=1267 vocabulary=501 postings=2530 wal=0 wal_bytes=0
//! < SHARD 3 records=1199 vocabulary=431 postings=2399 wal=0 wal_bytes=0
//! < CMD QUERY count=240 errors=0 mean_us=412 p50_us=256 p95_us=1024 p99_us=2048
//! < CMD ADD count=12 errors=1 mean_us=95 p50_us=64 p95_us=256 p99_us=256
//! < CMD SNAPSHOT count=1 errors=0 mean_us=5210 p50_us=8192 p95_us=8192 p99_us=8192
//! < .
//! > METRICS
//! < OK metrics
//! < # HELP yv_cmd_query_latency_us QUERY latency (microsecond buckets)
//! < # TYPE yv_cmd_query_latency_us histogram
//! < yv_cmd_query_latency_us_bucket{le="1"} 0
//! < ...
//! < .
//! > SNAPSHOT
//! < OK snapshot
//! < .
//! > SHUTDOWN
//! < OK bye
//! < .
//! ```

use yv_core::{PersonQuery, QueryHit};
use yv_records::{DateParts, Gender, Record, RecordBuilder, SourceId};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Query(PersonQuery),
    Add(Box<Record>),
    Stats,
    Metrics,
    Snapshot,
    Shutdown,
}

impl Request {
    /// The canonical command name — a static string safe to embed in
    /// structured logs without escaping.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Request::Query(_) => "QUERY",
            Request::Add(_) => "ADD",
            Request::Stats => "STATS",
            Request::Metrics => "METRICS",
            Request::Snapshot => "SNAPSHOT",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// The response terminator line.
pub const TERMINATOR: &str = ".";

/// Parse one request line. Errors are human-readable strings destined for
/// an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next().ok_or_else(|| "empty request".to_owned())?;
    let args: Vec<&str> = tokens.collect();
    match command.to_ascii_uppercase().as_str() {
        "QUERY" => parse_query(&args).map(Request::Query),
        "ADD" => parse_add(&args).map(|r| Request::Add(Box::new(r))),
        "STATS" => expect_no_args("STATS", &args).map(|()| Request::Stats),
        "METRICS" => expect_no_args("METRICS", &args).map(|()| Request::Metrics),
        "SNAPSHOT" => expect_no_args("SNAPSHOT", &args).map(|()| Request::Snapshot),
        "SHUTDOWN" => expect_no_args("SHUTDOWN", &args).map(|()| Request::Shutdown),
        other => Err(format!(
            "unknown command {other}; expected QUERY, ADD, STATS, METRICS, SNAPSHOT or SHUTDOWN"
        )),
    }
}

fn expect_no_args(command: &str, args: &[&str]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("{command} takes no arguments"))
    }
}

fn split_kv<'a>(token: &'a str, command: &str) -> Result<(&'a str, &'a str), String> {
    token
        .split_once('=')
        .ok_or_else(|| format!("{command}: expected key=value, got {token:?}"))
}

fn parse_query(args: &[&str]) -> Result<PersonQuery, String> {
    let mut query = PersonQuery::default();
    // Every QUERY key is single-valued, so a repeat is a client bug: the
    // earlier value would be silently discarded and the client would get
    // an answer to a question it didn't mean to ask. Reject instead.
    let mut seen: Vec<&str> = Vec::new();
    for token in args {
        let (key, value) = split_kv(token, "QUERY")?;
        if seen.contains(&key) {
            return Err(format!("QUERY: duplicate key {key}"));
        }
        match key {
            "first" => query.first_name = Some(value.to_owned()),
            "last" => query.last_name = Some(value.to_owned()),
            "similarity" => query.name_similarity = parse_f64("similarity", value)?,
            "certainty" => query.certainty = parse_f64("certainty", value)?,
            other => return Err(format!("QUERY: unknown key {other}")),
        }
        seen.push(key);
    }
    Ok(query)
}

fn parse_add(args: &[&str]) -> Result<Record, String> {
    let mut book: Option<u64> = None;
    let mut source: Option<u32> = None;
    let mut builder: Option<RecordBuilder> = None;
    let mut pending: Vec<(String, String)> = Vec::new();
    // `first` and `last` legitimately repeat (records carry name lists);
    // every other ADD key is single-valued in the record schema, so a
    // repeat would silently drop the earlier value. Reject those.
    let mut seen: Vec<&str> = Vec::new();
    for token in args {
        let (key, value) = split_kv(token, "ADD")?;
        if !matches!(key, "first" | "last") {
            if seen.contains(&key) {
                return Err(format!("ADD: duplicate key {key}"));
            }
            seen.push(key);
        }
        match key {
            "book" => {
                book = Some(value.parse().map_err(|_| format!("ADD: bad book id {value:?}"))?);
            }
            "source" => {
                source =
                    Some(value.parse().map_err(|_| format!("ADD: bad source id {value:?}"))?);
            }
            _ => pending.push((key.to_owned(), value.to_owned())),
        }
        if builder.is_none() {
            if let (Some(b), Some(s)) = (book, source) {
                builder = Some(RecordBuilder::new(b, SourceId(s)));
            }
        }
    }
    let Some(mut builder) = builder else {
        return Err("ADD: book= and source= are required".to_owned());
    };
    let mut birth = DateParts::default();
    for (key, value) in pending {
        builder = match key.as_str() {
            "first" => builder.first_name(value),
            "last" => builder.last_name(value),
            "maiden" => builder.maiden_name(value),
            "father" => builder.father_name(value),
            "mother" => builder.mother_name(value),
            "spouse" => builder.spouse_name(value),
            "profession" => builder.profession(value),
            "gender" => match value.as_str() {
                "m" | "M" => builder.gender(Gender::Male),
                "f" | "F" => builder.gender(Gender::Female),
                other => return Err(format!("ADD: gender must be m or f, got {other:?}")),
            },
            "day" => {
                birth.day =
                    Some(value.parse().map_err(|_| format!("ADD: bad day {value:?}"))?);
                builder
            }
            "month" => {
                birth.month =
                    Some(value.parse().map_err(|_| format!("ADD: bad month {value:?}"))?);
                builder
            }
            "year" => {
                birth.year =
                    Some(value.parse().map_err(|_| format!("ADD: bad year {value:?}"))?);
                builder
            }
            other => return Err(format!("ADD: unknown key {other}")),
        };
    }
    Ok(builder.birth(birth).build())
}

fn parse_f64(what: &str, value: &str) -> Result<f64, String> {
    value.parse().map_err(|_| format!("bad {what} value {value:?}"))
}

/// Render query hits as response lines (status, data, terminator).
#[must_use]
pub fn format_hits(hits: &[QueryHit]) -> String {
    let mut out = format!("OK {}\n", hits.len());
    for hit in hits {
        let entity: Vec<String> = hit.entity.iter().map(|r| r.0.to_string()).collect();
        out.push_str(&format!("HIT seed={} entity={}\n", hit.seed.0, entity.join(",")));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// Render a single-status response (`OK ...` / `ERR ...`).
#[must_use]
pub fn format_status(status: &str) -> String {
    format!("{status}\n{TERMINATOR}\n")
}

/// Render a `METRICS` response: status line, the Prometheus text
/// exposition verbatim as data lines, and the terminator. Exposition
/// lines are metric samples or `# HELP`/`# TYPE` comments, so none can
/// collide with the lone-`.` terminator.
#[must_use]
pub fn format_metrics(exposition: &str) -> String {
    let mut out = String::with_capacity(exposition.len() + 16);
    out.push_str("OK metrics\n");
    out.push_str(exposition);
    if !exposition.ends_with('\n') && !exposition.is_empty() {
        out.push('\n');
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

/// One per-command row of the `STATS` response: request/error counts and
/// a latency summary in integer microseconds (percentiles are histogram
/// bucket upper bounds, hence powers of two). `count` is the number of
/// latency-measured requests — successes *and* errors — read from the
/// same histogram snapshot as the percentiles, so the row always
/// describes one consistent instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandStats {
    pub name: &'static str,
    pub count: u64,
    pub errors: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

/// Render the `STATS` response: the store-wide status line, one `SHARD`
/// data line per shard, one `CMD` data line per command kind, and the
/// terminator.
#[must_use]
pub fn format_stats(
    status: &str,
    shards: &[crate::shard::ShardStats],
    commands: &[CommandStats],
) -> String {
    let mut out = format!("{status}\n");
    for s in shards {
        out.push_str(&format!(
            "SHARD {} records={} vocabulary={} postings={} wal={} wal_bytes={}\n",
            s.shard, s.records, s.vocabulary, s.postings, s.wal_entries, s.wal_bytes
        ));
    }
    for c in commands {
        out.push_str(&format!(
            "CMD {} count={} errors={} mean_us={} p50_us={} p95_us={} p99_us={}\n",
            c.name, c.count, c.errors, c.mean_us, c.p50_us, c.p95_us, c.p99_us
        ));
    }
    out.push_str(TERMINATOR);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::RecordId;

    #[test]
    fn query_parses_all_knobs() {
        let req = parse_request("QUERY first=Guido last=Foa similarity=0.9 certainty=1.5");
        let Ok(Request::Query(q)) = req else { panic!("{req:?}") };
        assert_eq!(q.first_name.as_deref(), Some("Guido"));
        assert_eq!(q.last_name.as_deref(), Some("Foa"));
        assert!((q.name_similarity - 0.9).abs() < 1e-12);
        assert!((q.certainty - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bare_query_is_unconstrained() {
        let Ok(Request::Query(q)) = parse_request("QUERY") else { panic!() };
        assert_eq!(q.first_name, None);
        assert_eq!(q.last_name, None);
    }

    #[test]
    fn add_builds_a_record() {
        let line = "ADD book=99 source=2 first=Sara last=Levi gender=f day=3 month=7 year=1921";
        let Ok(Request::Add(r)) = parse_request(line) else { panic!() };
        assert_eq!(r.book_id, 99);
        assert_eq!(r.source, SourceId(2));
        assert_eq!(r.first_names, vec!["Sara".to_owned()]);
        assert_eq!(r.gender, Some(Gender::Female));
        assert_eq!(r.birth, DateParts::full(3, 7, 1921));
    }

    #[test]
    fn add_requires_book_and_source() {
        assert!(parse_request("ADD first=Sara").is_err());
        assert!(parse_request("ADD book=1 first=Sara").is_err());
    }

    #[test]
    fn duplicate_single_valued_keys_are_protocol_errors() {
        // QUERY: every key is single-valued; last-wins used to silently
        // answer a different question than the client asked.
        for line in [
            "QUERY first=Guido first=Moshe",
            "QUERY last=Foa last=Foy",
            "QUERY similarity=0.9 similarity=0.8",
            "QUERY certainty=1.0 first=Guido certainty=0.5",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains("duplicate key"), "{line}: {err}");
        }
        // ADD: scalar record fields reject repeats...
        for line in [
            "ADD book=1 book=2 source=0 first=Sara",
            "ADD book=1 source=0 source=1 first=Sara",
            "ADD book=1 source=0 gender=f gender=m",
            "ADD book=1 source=0 maiden=Roth maiden=Katz",
            "ADD book=1 source=0 year=1921 year=1922",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains("duplicate key"), "{line}: {err}");
        }
        // ...while first/last repeat legitimately (records carry name
        // lists).
        let Ok(Request::Add(r)) =
            parse_request("ADD book=1 source=0 first=Sara first=Sura last=Levi last=Lewi")
        else {
            panic!()
        };
        assert_eq!(r.first_names, vec!["Sara".to_owned(), "Sura".to_owned()]);
        assert_eq!(r.last_names, vec!["Levi".to_owned(), "Lewi".to_owned()]);
    }

    #[test]
    fn unknown_commands_and_keys_are_rejected() {
        assert!(parse_request("FROB").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("QUERY color=blue").is_err());
        assert!(parse_request("ADD book=1 source=0 color=blue").is_err());
        assert!(parse_request("STATS now").is_err());
        assert!(parse_request("METRICS now").is_err());
    }

    #[test]
    fn metrics_parses_and_names_are_canonical() {
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(Request::Metrics.name(), "METRICS");
        assert_eq!(Request::Stats.name(), "STATS");
        assert_eq!(Request::Shutdown.name(), "SHUTDOWN");
    }

    #[test]
    fn metrics_render_exposition_between_status_and_terminator() {
        let exposition = "# TYPE yv_x counter\nyv_x 3\n";
        assert_eq!(
            format_metrics(exposition),
            "OK metrics\n# TYPE yv_x counter\nyv_x 3\n.\n"
        );
        assert_eq!(format_metrics(""), "OK metrics\n.\n");
        // A missing trailing newline is repaired, keeping the terminator
        // on its own line.
        assert_eq!(format_metrics("yv_x 3"), "OK metrics\nyv_x 3\n.\n");
    }

    #[test]
    fn stats_render_one_cmd_line_per_command() {
        let rows = [
            CommandStats {
                name: "QUERY",
                count: 3,
                errors: 0,
                mean_us: 40,
                p50_us: 32,
                p95_us: 64,
                p99_us: 64,
            },
            CommandStats {
                name: "ADD",
                count: 0,
                errors: 1,
                mean_us: 0,
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
            },
        ];
        let shards = [
            crate::shard::ShardStats {
                shard: 0,
                records: 5,
                vocabulary: 9,
                postings: 11,
                wal_entries: 1,
                wal_bytes: 104,
            },
            crate::shard::ShardStats {
                shard: 1,
                records: 2,
                vocabulary: 4,
                postings: 4,
                wal_entries: 0,
                wal_bytes: 0,
            },
        ];
        let rendered = format_stats("OK records=7", &shards, &rows);
        assert_eq!(
            rendered,
            "OK records=7\n\
             SHARD 0 records=5 vocabulary=9 postings=11 wal=1 wal_bytes=104\n\
             SHARD 1 records=2 vocabulary=4 postings=4 wal=0 wal_bytes=0\n\
             CMD QUERY count=3 errors=0 mean_us=40 p50_us=32 p95_us=64 p99_us=64\n\
             CMD ADD count=0 errors=1 mean_us=0 p50_us=0 p95_us=0 p99_us=0\n\
             .\n"
        );
        assert_eq!(format_stats("OK records=7", &[], &[]), "OK records=7\n.\n");
    }

    #[test]
    fn hits_render_with_terminator() {
        let hits = vec![QueryHit {
            seed: RecordId(17),
            entity: vec![RecordId(17), RecordId(203)],
        }];
        assert_eq!(format_hits(&hits), "OK 1\nHIT seed=17 entity=17,203\n.\n");
        assert_eq!(format_hits(&[]), "OK 0\n.\n");
    }
}
