//! Versioned on-disk snapshot of the full serving state: dataset,
//! accumulated ranked matches, trained ADT model and pipeline
//! configuration, in one file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! 8 bytes   magic  "YVSTORE\0"
//! u32       format version (currently 1)
//! u64       payload length in bytes
//! payload   see below
//! u64       FNV-1a 64 checksum of the payload
//! ```
//!
//! Payload: sources, records, ranked matches, the ADT model as the
//! length-prefixed `yv-adt v1` text of [`yv_adt::persist`], then pipeline
//! and incremental configuration. The encoding is deterministic (floats as
//! IEEE bits, insertion-ordered collections), so re-snapshotting a loaded
//! store reproduces the file byte for byte.

use crate::codec::{self, Reader, Writer};
use crate::error::StoreError;
use std::path::Path;
use yv_blocking::{MfiBlocksConfig, ScoreFunction};
use yv_core::{IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig, RankedMatch};
use yv_records::{Dataset, RecordId};

/// File magic: identifies a yv-store snapshot.
pub const MAGIC: [u8; 8] = *b"YVSTORE\0";
/// The snapshot format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Serialize a resolver's full state to snapshot bytes. Oversized
/// collections (lengths past the u32 prefix) surface as typed errors.
pub fn to_bytes(resolver: &IncrementalResolver) -> Result<Vec<u8>, StoreError> {
    let mut p = Writer::new();
    let ds = resolver.dataset();
    let sources = ds.sources();
    p.u32(len_u32(sources.len(), "source count")?);
    for s in sources {
        codec::write_source(&mut p, s)?;
    }
    p.u32(len_u32(ds.len(), "record count")?);
    for rid in ds.record_ids() {
        codec::write_record(&mut p, ds.record(rid))?;
    }
    let matches = resolver.matches();
    p.u32(len_u32(matches.len(), "match count")?);
    for m in matches {
        p.u32(m.a.0);
        p.u32(m.b.0);
        p.f64(m.score);
    }
    p.str(&yv_adt::to_text(&resolver.pipeline().model))?;
    write_pipeline_config(&mut p, resolver.config());
    let inc = resolver.inc_config();
    p.u64(inc.min_shared_items as u64);
    p.f64(inc.common_fraction);

    let payload = p.into_bytes();
    let mut out = Writer::new();
    out_magic(&mut out);
    out.u64(payload.len() as u64);
    let checksum = codec::fnv1a64(&payload);
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    Ok(bytes)
}

fn len_u32(len: usize, what: &'static str) -> Result<u32, StoreError> {
    u32::try_from(len).map_err(|_| StoreError::LimitExceeded { what, len })
}

fn out_magic(w: &mut Writer) {
    for b in MAGIC {
        w.u8(b);
    }
    w.u32(VERSION);
}

/// Deserialize snapshot bytes back into a resolver. Rejects bad magic,
/// unsupported versions and checksum mismatches with typed errors.
pub fn from_bytes(bytes: &[u8]) -> Result<IncrementalResolver, StoreError> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 8];
    for slot in &mut magic {
        *slot = r.u8("magic")?;
    }
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let payload_len = r.u64("payload length")? as usize;
    if r.remaining() < payload_len + 8 {
        return Err(StoreError::Corrupt(format!(
            "file shorter than declared payload: need {} bytes, have {}",
            payload_len + 8,
            r.remaining()
        )));
    }
    let payload = &bytes[bytes.len() - r.remaining()..][..payload_len];
    let mut trailer = Reader::new(&bytes[bytes.len() - r.remaining() + payload_len..]);
    let expected = trailer.u64("checksum")?;
    let actual = codec::fnv1a64(payload);
    if expected != actual {
        return Err(StoreError::ChecksumMismatch { expected, actual });
    }

    let mut p = Reader::new(payload);
    let n_sources = p.u32("source count")?;
    let mut ds = Dataset::new();
    for _ in 0..n_sources {
        ds.add_source(codec::read_source(&mut p)?);
    }
    let n_records = p.u32("record count")?;
    let n_sources = ds.sources().len();
    for _ in 0..n_records {
        let rec = codec::read_record(&mut p)?;
        if rec.source.0 as usize >= n_sources {
            return Err(StoreError::Corrupt(format!(
                "record {} references unknown source {}",
                rec.book_id, rec.source.0
            )));
        }
        ds.add_record(rec);
    }
    let n_matches = p.u32("match count")?;
    let mut matches = Vec::with_capacity((n_matches as usize).min(p.remaining()));
    for _ in 0..n_matches {
        let a = RecordId(p.u32("match a")?);
        let b = RecordId(p.u32("match b")?);
        let score = p.f64("match score")?;
        if a.index() >= ds.len() || b.index() >= ds.len() {
            return Err(StoreError::Corrupt(format!(
                "match ({}, {}) references records beyond the dataset",
                a.0, b.0
            )));
        }
        matches.push(RankedMatch { a, b, score });
    }
    let model = yv_adt::from_text(&p.str("model text")?)?;
    let config = read_pipeline_config(&mut p)?;
    let inc = IncrementalConfig {
        min_shared_items: usize::try_from(p.u64("min shared items")?)
            .map_err(|_| StoreError::Corrupt("min_shared_items overflows usize".into()))?,
        common_fraction: p.f64("common fraction")?,
    };
    if p.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after payload",
            p.remaining()
        )));
    }
    Ok(IncrementalResolver::from_parts(ds, Pipeline::with_model(model), config, inc, matches))
}

fn write_pipeline_config(w: &mut Writer, c: &PipelineConfig) {
    let b = &c.blocking;
    w.u64(b.max_minsup);
    w.f64(b.ng);
    w.f64(b.p);
    match &b.score {
        ScoreFunction::Jaccard => w.u8(0),
        ScoreFunction::WeightedJaccard(weights) => {
            w.u8(1);
            codec::write_expert_weights(w, weights);
        }
        ScoreFunction::ExpertSim => w.u8(2),
    }
    w.opt_f64(b.prune_frequent);
    w.opt_f64(b.prune_common);
    w.u64(b.threads as u64);
    w.u8(u8::from(c.same_src_discard));
    w.u8(u8::from(c.classify));
    w.u64(c.train.rounds as u64);
    w.u64(c.train.max_thresholds as u64);
    w.f64(c.train.epsilon);
}

fn read_pipeline_config(r: &mut Reader<'_>) -> Result<PipelineConfig, StoreError> {
    let max_minsup = r.u64("max minsup")?;
    let ng = r.f64("ng")?;
    let p = r.f64("p")?;
    let score = match r.u8("score function tag")? {
        0 => ScoreFunction::Jaccard,
        1 => ScoreFunction::WeightedJaccard(codec::read_expert_weights(r)?),
        2 => ScoreFunction::ExpertSim,
        t => return Err(StoreError::Corrupt(format!("unknown score function tag {t}"))),
    };
    let prune_frequent = r.opt_f64("prune frequent")?;
    let prune_common = r.opt_f64("prune common")?;
    let threads = usize::try_from(r.u64("threads")?)
        .map_err(|_| StoreError::Corrupt("threads overflows usize".into()))?;
    let same_src_discard = bool_flag(r.u8("same src discard")?, "same src discard")?;
    let classify = bool_flag(r.u8("classify")?, "classify")?;
    let rounds = usize::try_from(r.u64("train rounds")?)
        .map_err(|_| StoreError::Corrupt("rounds overflows usize".into()))?;
    let max_thresholds = usize::try_from(r.u64("max thresholds")?)
        .map_err(|_| StoreError::Corrupt("max_thresholds overflows usize".into()))?;
    let epsilon = r.f64("epsilon")?;
    Ok(PipelineConfig {
        blocking: MfiBlocksConfig {
            max_minsup,
            ng,
            p,
            score,
            prune_frequent,
            prune_common,
            threads,
        },
        same_src_discard,
        classify,
        train: yv_adt::TrainConfig { rounds, max_thresholds, epsilon },
    })
}

fn bool_flag(v: u8, what: &str) -> Result<bool, StoreError> {
    match v {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(StoreError::Corrupt(format!("bad bool {t} for {what}"))),
    }
}

/// Write a snapshot atomically: to a sibling temp file, then rename over
/// the target, so a crash mid-write never leaves a torn snapshot behind.
pub fn write_file(path: &Path, resolver: &IncrementalResolver) -> Result<(), StoreError> {
    let bytes = to_bytes(resolver)?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a snapshot file.
pub fn read_file(path: &Path) -> Result<IncrementalResolver, StoreError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}
