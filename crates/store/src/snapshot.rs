//! Versioned on-disk snapshot of the full serving state, split for the
//! sharded store: one *base* file holding everything shard-independent
//! (sources, ranked matches, trained ADT model, pipeline configuration,
//! and the record count), plus one *segment* file per shard holding that
//! shard's records with their global record ids.
//!
//! Base file (`snapshot.yvs`) layout, all integers little-endian:
//!
//! ```text
//! 8 bytes   magic  "YVSTORE\0"
//! u32       format version (currently 2)
//! u64       payload length in bytes
//! payload   sources, record count, ranked matches, ADT model text,
//!           pipeline + incremental configuration
//! u64       FNV-1a 64 checksum of the payload
//! ```
//!
//! Segment file (`snapshot.<shard>.yvs`) layout:
//!
//! ```text
//! 8 bytes   magic  "YVSTSEG\0"
//! u32       format version (currently 2)
//! u64       payload length in bytes
//! payload   u32 shard index, u32 entry count, then per entry:
//!           u32 record id + codec-encoded record
//! u64       FNV-1a 64 checksum of the payload
//! ```
//!
//! The encoding is deterministic (floats as IEEE bits, insertion-ordered
//! collections), so re-snapshotting a loaded store reproduces every file
//! byte for byte — and [`state_bytes`] exposes the same determinism as a
//! single canonical byte string covering the *whole* store state, which
//! is how the shard-identity tests compare an N-shard store against a
//! 1-shard control without caring how the records were partitioned.

use crate::codec::{self, Reader, Writer};
use crate::error::StoreError;
use std::path::Path;
use yv_blocking::{MfiBlocksConfig, ScoreFunction};
use yv_core::{IncrementalConfig, IncrementalResolver, Pipeline, PipelineConfig, RankedMatch};
use yv_records::{Record, RecordId, Source};

/// File magic: identifies a yv-store base snapshot.
pub const MAGIC: [u8; 8] = *b"YVSTORE\0";
/// File magic: identifies a per-shard snapshot segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"YVSTSEG\0";
/// The snapshot format version this build reads and writes. Version 1
/// was a single monolithic file with the records inline.
pub const VERSION: u32 = 2;

/// The shard-independent half of a snapshot, as read back from the base
/// file. Records live in the per-shard segments; `n_records` is recorded
/// here so reassembly can verify the segments cover the dataset exactly.
#[derive(Debug)]
pub struct BaseSnapshot {
    pub sources: Vec<Source>,
    pub n_records: usize,
    pub matches: Vec<RankedMatch>,
    pub pipeline: Pipeline,
    pub config: PipelineConfig,
    pub inc: IncrementalConfig,
}

/// Serialize the shard-independent state to base-file bytes.
pub fn base_to_bytes(resolver: &IncrementalResolver) -> Result<Vec<u8>, StoreError> {
    let mut p = Writer::new();
    write_base_payload(&mut p, resolver)?;
    Ok(frame(MAGIC, p.into_bytes()))
}

fn write_base_payload(p: &mut Writer, resolver: &IncrementalResolver) -> Result<(), StoreError> {
    let ds = resolver.dataset();
    let sources = ds.sources();
    p.u32(len_u32(sources.len(), "source count")?);
    for s in sources {
        codec::write_source(p, s)?;
    }
    p.u32(len_u32(ds.len(), "record count")?);
    let matches = resolver.matches();
    p.u32(len_u32(matches.len(), "match count")?);
    for m in matches {
        p.u32(m.a.0);
        p.u32(m.b.0);
        p.f64(m.score);
    }
    p.str(&yv_adt::to_text(&resolver.pipeline().model))?;
    write_pipeline_config(p, resolver.config());
    let inc = resolver.inc_config();
    p.u64(inc.min_shared_items as u64);
    p.f64(inc.common_fraction);
    Ok(())
}

/// Serialize one shard's records (with their global record ids) to
/// segment-file bytes. Entries must already be in ascending-rid order —
/// that is the order the store iterates them in, and keeping the file in
/// that order makes re-snapshotting byte-stable.
pub fn segment_to_bytes(
    shard: usize,
    entries: &[(RecordId, &Record)],
) -> Result<Vec<u8>, StoreError> {
    let mut p = Writer::new();
    p.u32(len_u32(shard, "shard index")?);
    p.u32(len_u32(entries.len(), "segment entry count")?);
    for (rid, record) in entries {
        p.u32(rid.0);
        codec::write_record(&mut p, record)?;
    }
    Ok(frame(SEGMENT_MAGIC, p.into_bytes()))
}

/// Wrap a payload in the magic/version/length/checksum frame shared by
/// the base and segment formats.
fn frame(magic: [u8; 8], payload: Vec<u8>) -> Vec<u8> {
    let mut out = Writer::new();
    for b in magic {
        out.u8(b);
    }
    out.u32(VERSION);
    out.u64(payload.len() as u64);
    let checksum = codec::fnv1a64(&payload);
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn len_u32(len: usize, what: &'static str) -> Result<u32, StoreError> {
    u32::try_from(len).map_err(|_| StoreError::LimitExceeded { what, len })
}

/// Unwrap the magic/version/length/checksum frame, returning the payload.
fn unframe<'a>(bytes: &'a [u8], magic: &[u8; 8]) -> Result<&'a [u8], StoreError> {
    let mut r = Reader::new(bytes);
    let mut found = [0u8; 8];
    for slot in &mut found {
        *slot = r.u8("magic")?;
    }
    if &found != magic {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let payload_len = usize::try_from(r.u64("payload length")?)
        .map_err(|_| StoreError::Corrupt("declared payload length overflows usize".to_owned()))?;
    if r.remaining() < payload_len + 8 {
        return Err(StoreError::Corrupt(format!(
            "file shorter than declared payload: need {} bytes, have {}",
            payload_len + 8,
            r.remaining()
        )));
    }
    let payload = &bytes[bytes.len() - r.remaining()..][..payload_len];
    let mut trailer = Reader::new(&bytes[bytes.len() - r.remaining() + payload_len..]);
    let expected = trailer.u64("checksum")?;
    let actual = codec::fnv1a64(payload);
    if expected != actual {
        return Err(StoreError::ChecksumMismatch { expected, actual });
    }
    if trailer.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after checksum",
            trailer.remaining()
        )));
    }
    Ok(payload)
}

/// Deserialize base-file bytes. Rejects bad magic, unsupported versions,
/// checksum mismatches and matches referencing records beyond the
/// declared count, all with typed errors.
pub fn base_from_bytes(bytes: &[u8]) -> Result<BaseSnapshot, StoreError> {
    let payload = unframe(bytes, &MAGIC)?;
    let mut p = Reader::new(payload);
    let n_sources = p.u32("source count")?;
    let mut sources = Vec::with_capacity((n_sources as usize).min(p.remaining()));
    for _ in 0..n_sources {
        sources.push(codec::read_source(&mut p)?);
    }
    let n_records = p.u32("record count")? as usize;
    let n_matches = p.u32("match count")?;
    let mut matches = Vec::with_capacity((n_matches as usize).min(p.remaining()));
    for _ in 0..n_matches {
        let a = RecordId(p.u32("match a")?);
        let b = RecordId(p.u32("match b")?);
        let score = p.f64("match score")?;
        if a.index() >= n_records || b.index() >= n_records {
            return Err(StoreError::Corrupt(format!(
                "match ({}, {}) references records beyond the dataset",
                a.0, b.0
            )));
        }
        matches.push(RankedMatch { a, b, score });
    }
    let model = yv_adt::from_text(&p.str("model text")?)?;
    let config = read_pipeline_config(&mut p)?;
    let inc = IncrementalConfig {
        min_shared_items: usize::try_from(p.u64("min shared items")?)
            .map_err(|_| StoreError::Corrupt("min_shared_items overflows usize".into()))?,
        common_fraction: p.f64("common fraction")?,
    };
    if p.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after payload",
            p.remaining()
        )));
    }
    Ok(BaseSnapshot {
        sources,
        n_records,
        matches,
        pipeline: Pipeline::with_model(model),
        config,
        inc,
    })
}

/// Deserialize segment-file bytes into the shard index it claims and its
/// `(rid, record)` entries, in file order.
pub fn segment_from_bytes(
    bytes: &[u8],
) -> Result<(usize, Vec<(RecordId, Record)>), StoreError> {
    let payload = unframe(bytes, &SEGMENT_MAGIC)?;
    let mut p = Reader::new(payload);
    let shard = p.u32("shard index")? as usize;
    let count = p.u32("segment entry count")?;
    let mut entries = Vec::with_capacity((count as usize).min(p.remaining()));
    for _ in 0..count {
        let rid = RecordId(p.u32("record id")?);
        let record = codec::read_record(&mut p)?;
        entries.push((rid, record));
    }
    if p.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after segment payload",
            p.remaining()
        )));
    }
    Ok((shard, entries))
}

/// One canonical byte string covering the resolver's *entire* state:
/// the base payload plus every record in ascending-rid order. Two stores
/// hold identical logical state exactly when their `state_bytes` agree —
/// regardless of how many shards each scattered its records across. This
/// is the comparison the shard-identity property test and the ci smoke
/// test are built on.
pub fn state_bytes(resolver: &IncrementalResolver) -> Result<Vec<u8>, StoreError> {
    let mut p = Writer::new();
    write_base_payload(&mut p, resolver)?;
    let ds = resolver.dataset();
    for rid in ds.record_ids() {
        p.u32(rid.0);
        codec::write_record(&mut p, ds.record(rid))?;
    }
    Ok(p.into_bytes())
}

fn write_pipeline_config(w: &mut Writer, c: &PipelineConfig) {
    let b = &c.blocking;
    w.u64(b.max_minsup);
    w.f64(b.ng);
    w.f64(b.p);
    match &b.score {
        ScoreFunction::Jaccard => w.u8(0),
        ScoreFunction::WeightedJaccard(weights) => {
            w.u8(1);
            codec::write_expert_weights(w, weights);
        }
        ScoreFunction::ExpertSim => w.u8(2),
    }
    w.opt_f64(b.prune_frequent);
    w.opt_f64(b.prune_common);
    w.u64(b.threads as u64);
    w.u8(u8::from(c.same_src_discard));
    w.u8(u8::from(c.classify));
    w.u64(c.train.rounds as u64);
    w.u64(c.train.max_thresholds as u64);
    w.f64(c.train.epsilon);
}

fn read_pipeline_config(r: &mut Reader<'_>) -> Result<PipelineConfig, StoreError> {
    let max_minsup = r.u64("max minsup")?;
    let ng = r.f64("ng")?;
    let p = r.f64("p")?;
    let score = match r.u8("score function tag")? {
        0 => ScoreFunction::Jaccard,
        1 => ScoreFunction::WeightedJaccard(codec::read_expert_weights(r)?),
        2 => ScoreFunction::ExpertSim,
        t => return Err(StoreError::Corrupt(format!("unknown score function tag {t}"))),
    };
    let prune_frequent = r.opt_f64("prune frequent")?;
    let prune_common = r.opt_f64("prune common")?;
    let threads = usize::try_from(r.u64("threads")?)
        .map_err(|_| StoreError::Corrupt("threads overflows usize".into()))?;
    let same_src_discard = bool_flag(r.u8("same src discard")?, "same src discard")?;
    let classify = bool_flag(r.u8("classify")?, "classify")?;
    let rounds = usize::try_from(r.u64("train rounds")?)
        .map_err(|_| StoreError::Corrupt("rounds overflows usize".into()))?;
    let max_thresholds = usize::try_from(r.u64("max thresholds")?)
        .map_err(|_| StoreError::Corrupt("max_thresholds overflows usize".into()))?;
    let epsilon = r.f64("epsilon")?;
    Ok(PipelineConfig {
        blocking: MfiBlocksConfig {
            max_minsup,
            ng,
            p,
            score,
            prune_frequent,
            prune_common,
            threads,
        },
        same_src_discard,
        classify,
        train: yv_adt::TrainConfig { rounds, max_thresholds, epsilon },
    })
}

fn bool_flag(v: u8, what: &str) -> Result<bool, StoreError> {
    match v {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(StoreError::Corrupt(format!("bad bool {t} for {what}"))),
    }
}

/// Write bytes atomically: to a sibling temp file, then rename over the
/// target, so a crash mid-write never leaves a torn file behind.
pub fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load and parse a base snapshot file.
pub fn read_base_file(path: &Path) -> Result<BaseSnapshot, StoreError> {
    let bytes = std::fs::read(path)?;
    base_from_bytes(&bytes)
}

/// Load and parse a segment file.
pub fn read_segment_file(path: &Path) -> Result<(usize, Vec<(RecordId, Record)>), StoreError> {
    let bytes = std::fs::read(path)?;
    segment_from_bytes(&bytes)
}
