//! Write-ahead log of incremental arrivals — one log per shard.
//!
//! Every `ADD` is appended (and flushed) here *before* it is applied to
//! the in-memory resolver, so a crash between append and apply replays
//! the arrival on restart instead of losing it. `SNAPSHOT` folds the logs
//! into a fresh snapshot and truncates them.
//!
//! Since the store is sharded, arrivals scatter across N WAL files
//! (`wal.<shard>.yvl`), so each frame carries the arrival's *global
//! sequence number*: the position the arrival held in the store-wide
//! apply order. Replaying a sharded store merges every shard's frames
//! back into that order by sorting on `seq` — and because record ids are
//! assigned in apply order, the merge must be gapless (see
//! [`crate::StoreError::ShardWalGap`]).
//!
//! Layout:
//!
//! ```text
//! 8 bytes   magic  "YVWAL\0\0\0"
//! u32       format version (currently 2)
//! frames:
//!   u8      entry tag (1 = record, 2 = source)
//!   u64     global arrival sequence number
//!   u32     payload length
//!   bytes   payload (codec-encoded record / source)
//!   u64     FNV-1a 64 checksum of tag + seq + payload
//! ```
//!
//! A *truncated* final frame is how a crash mid-append looks; replay
//! treats it as a clean stop (surfaced via [`WalScan::torn`] so the store
//! can tell a harmless torn tail from a cross-shard sequence gap) and the
//! next append overwrites it. A frame that is complete but fails its
//! checksum is real corruption and surfaces as a typed error.

use crate::codec::{self, Reader, Writer};
use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use yv_records::{Record, Source};

/// File magic: identifies a yv-store write-ahead log.
pub const MAGIC: [u8; 8] = *b"YVWAL\0\0\0";
/// The WAL format version this build reads and writes. Version 1 frames
/// carried no sequence number and cannot be merged across shards.
pub const VERSION: u32 = 2;

const TAG_RECORD: u8 = 1;
const TAG_SOURCE: u8 = 2;

/// One replayed WAL entry.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    Record(Box<Record>),
    Source(Source),
}

/// Byte length of the file header (magic + version).
const HEADER_LEN: u64 = 12;

/// Result of scanning one WAL file: the complete frames (with their
/// global sequence numbers, in file order), the byte length of the valid
/// prefix, and whether a torn (incomplete) final frame followed it.
#[derive(Debug)]
pub struct WalScan {
    pub entries: Vec<(u64, WalEntry)>,
    pub valid_len: usize,
    pub torn: bool,
}

/// Append handle over a WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// On-disk byte length (header plus complete frames), tracked so
    /// `STATS` and the metrics scrape report WAL growth without a
    /// filesystem round trip.
    bytes: u64,
}

impl Wal {
    /// Create a fresh (empty) log, truncating any existing file.
    pub fn create(path: &Path) -> Result<Wal, StoreError> {
        let mut file =
            OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(Wal { file, bytes: HEADER_LEN })
    }

    /// Open an existing log for appending, positioned after the last
    /// complete frame (a torn tail from a crash is overwritten).
    pub fn open(path: &Path) -> Result<Wal, StoreError> {
        let bytes = std::fs::read(path)?;
        let valid_len = scan(&bytes)?.valid_len;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal { file, bytes: valid_len as u64 })
    }

    /// Current on-disk byte length: header plus every complete frame.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append a record frame stamped with its global arrival sequence.
    pub fn append_record(&mut self, seq: u64, record: &Record) -> Result<(), StoreError> {
        let mut w = Writer::new();
        codec::write_record(&mut w, record)?;
        self.append_frame(TAG_RECORD, seq, &w.into_bytes(), true)
    }

    /// Append a record frame without forcing it to disk — group-commit
    /// building block. The frame is not durable until [`Wal::sync`]
    /// returns; callers must not acknowledge the record before then.
    pub fn append_record_nosync(
        &mut self,
        seq: u64,
        record: &Record,
    ) -> Result<(), StoreError> {
        let mut w = Writer::new();
        codec::write_record(&mut w, record)?;
        self.append_frame(TAG_RECORD, seq, &w.into_bytes(), false)
    }

    /// Append a source frame stamped with its global arrival sequence.
    pub fn append_source(&mut self, seq: u64, source: &Source) -> Result<(), StoreError> {
        let mut w = Writer::new();
        codec::write_source(&mut w, source)?;
        self.append_frame(TAG_SOURCE, seq, &w.into_bytes(), true)
    }

    /// Force every appended frame to disk. One call per batch is the
    /// whole point of group commit: a 256-record `BATCH_ADD` pays one
    /// `sync_data` where per-record appends would pay 256.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn append_frame(
        &mut self,
        tag: u8,
        seq: u64,
        payload: &[u8],
        sync: bool,
    ) -> Result<(), StoreError> {
        let len = u32::try_from(payload.len()).map_err(|_| StoreError::LimitExceeded {
            what: "WAL frame payload",
            len: payload.len(),
        })?;
        let mut frame = Vec::with_capacity(payload.len() + 21);
        frame.push(tag);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&frame_checksum(tag, seq, payload).to_le_bytes());
        self.file.write_all(&frame)?;
        if sync {
            self.file.sync_data()?;
        }
        self.bytes += frame.len() as u64;
        Ok(())
    }
}

/// The frame checksum covers the tag, the sequence number and the
/// payload, so a bitflip in any of them is caught.
fn frame_checksum(tag: u8, seq: u64, payload: &[u8]) -> u64 {
    let mut hashed = Vec::with_capacity(payload.len() + 9);
    hashed.push(tag);
    hashed.extend_from_slice(&seq.to_le_bytes());
    hashed.extend_from_slice(payload);
    codec::fnv1a64(&hashed)
}

/// Replay a WAL file into `(seq, entry)` pairs, in file order. A
/// truncated tail is tolerated; checksum failures on complete frames are
/// errors.
pub fn replay(path: &Path) -> Result<Vec<(u64, WalEntry)>, StoreError> {
    Ok(scan_file(path)?.entries)
}

/// Scan a WAL file: entries, valid prefix length, torn-tail flag.
pub fn scan_file(path: &Path) -> Result<WalScan, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    scan(&bytes)
}

/// Parse the log bytes.
fn scan(bytes: &[u8]) -> Result<WalScan, StoreError> {
    if bytes.len() < 12 {
        return Err(StoreError::BadMagic);
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = le_u32(&bytes[8..12], "format version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let mut entries = Vec::new();
    let mut pos = 12;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        // Frame header: tag + seq + length. Shorter than that = torn tail.
        if rest.len() < 13 {
            break;
        }
        let tag = rest[0];
        let seq = le_u64(&rest[1..9], "frame seq")?;
        let len = le_u32(&rest[9..13], "frame length")? as usize;
        let Some(frame_rest) = rest.get(13..13 + len + 8) else {
            break; // torn tail: payload or checksum incomplete
        };
        let payload = &frame_rest[..len];
        let expected = le_u64(&frame_rest[len..], "frame checksum")?;
        let actual = frame_checksum(tag, seq, payload);
        if expected != actual {
            return Err(StoreError::ChecksumMismatch { expected, actual });
        }
        let mut r = Reader::new(payload);
        let entry = match tag {
            TAG_RECORD => WalEntry::Record(Box::new(codec::read_record(&mut r)?)),
            TAG_SOURCE => WalEntry::Source(codec::read_source(&mut r)?),
            t => return Err(StoreError::Corrupt(format!("unknown WAL entry tag {t}"))),
        };
        if r.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes in WAL frame",
                r.remaining()
            )));
        }
        entries.push((seq, entry));
        pos += 13 + len + 8;
    }
    Ok(WalScan { entries, valid_len: pos, torn: pos < bytes.len() })
}

/// Little-endian u32 from an exactly-sized slice; callers bound-check for
/// torn-tail handling first, so a short slice here is corruption.
fn le_u32(bytes: &[u8], what: &str) -> Result<u32, StoreError> {
    bytes
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| StoreError::Corrupt(format!("truncated {what}")))
}

/// Little-endian u64, same contract as [`le_u32`].
fn le_u64(bytes: &[u8], what: &str) -> Result<u64, StoreError> {
    bytes
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| StoreError::Corrupt(format!("truncated {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, SourceId};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("yv-store-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_entries() -> (Source, Record, Record) {
        (
            Source::list(SourceId(0), "late list"),
            RecordBuilder::new(1, SourceId(0)).first_name("Guido").last_name("Foa").build(),
            RecordBuilder::new(2, SourceId(0)).first_name("Sara").last_name("Levi").build(),
        )
    }

    #[test]
    fn append_then_replay_round_trips_with_seqs() {
        let path = tmp("roundtrip.wal");
        let (src, r1, r2) = sample_entries();
        let mut wal = Wal::create(&path).unwrap();
        wal.append_source(0, &src).unwrap();
        wal.append_record(1, &r1).unwrap();
        // Shard WALs hold a sparse subset of the global sequence: gaps
        // within one file are normal (the missing seqs live elsewhere).
        wal.append_record(7, &r2).unwrap();
        let entries = replay(&path).unwrap();
        assert_eq!(
            entries,
            vec![
                (0, WalEntry::Source(src)),
                (1, WalEntry::Record(Box::new(r1))),
                (7, WalEntry::Record(Box::new(r2)))
            ]
        );
    }

    #[test]
    fn byte_tracking_matches_the_file() {
        let path = tmp("bytes.wal");
        let (src, r1, _) = sample_entries();
        let mut wal = Wal::create(&path).unwrap();
        assert_eq!(wal.bytes(), 12, "fresh log is just the header");
        wal.append_source(0, &src).unwrap();
        wal.append_record(1, &r1).unwrap();
        assert_eq!(wal.bytes(), std::fs::metadata(&path).unwrap().len());
        drop(wal);
        // Re-opening recovers the length from the valid prefix.
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.bytes(), std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_a_clean_stop_and_flagged() {
        let path = tmp("torn.wal");
        let (src, r1, _) = sample_entries();
        let mut wal = Wal::create(&path).unwrap();
        wal.append_source(0, &src).unwrap();
        wal.append_record(1, &r1).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut into the middle of the last frame.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.entries, vec![(0, WalEntry::Source(src.clone()))]);
        assert!(scan.torn, "the incomplete final frame must be flagged");
        // Re-opening for append truncates the torn tail and continues.
        let mut wal = Wal::open(&path).unwrap();
        wal.append_record(1, &r1).unwrap();
        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert!(!scan.torn);
    }

    #[test]
    fn bitflip_in_complete_frame_is_checksum_error() {
        let path = tmp("bitflip.wal");
        let (src, r1, _) = sample_entries();
        let mut wal = Wal::create(&path).unwrap();
        wal.append_source(0, &src).unwrap();
        wal.append_record(1, &r1).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first frame's payload.
        bytes[28] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            replay(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bitflip_in_seq_field_is_checksum_error() {
        let path = tmp("seqflip.wal");
        let (src, _, _) = sample_entries();
        let mut wal = Wal::create(&path).unwrap();
        wal.append_source(3, &src).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Byte 13 is inside the first frame's seq field (12 header + tag).
        bytes[13] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(replay(&path), Err(StoreError::ChecksumMismatch { .. })),
            "a corrupted sequence number must not replay as a different position"
        );
    }

    #[test]
    fn pathological_inputs_are_errors_or_clean_stops_never_panics() {
        let path = tmp("pathological.wal");
        let (src, r1, _) = sample_entries();
        let mut wal = Wal::create(&path).unwrap();
        wal.append_source(0, &src).unwrap();
        wal.append_record(1, &r1).unwrap();
        drop(wal);
        let good = std::fs::read(&path).unwrap();

        // A frame header declaring a gigantic payload is a torn tail: the
        // declared bytes are not there, so replay stops cleanly.
        let mut huge = good[..12].to_vec();
        huge.push(1); // TAG_RECORD
        huge.extend_from_slice(&0u64.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0xab; 64]);
        std::fs::write(&path, &huge).unwrap();
        assert_eq!(replay(&path).unwrap(), vec![]);
        // And re-opening for append truncates it back to the header.
        let mut wal = Wal::open(&path).unwrap();
        wal.append_source(0, &src).unwrap();
        assert_eq!(replay(&path).unwrap().len(), 1);

        // A complete frame with an unknown tag is typed corruption.
        let mut payload_frame = good[..12].to_vec();
        let tag = 9u8;
        let payload = b"junk";
        payload_frame.push(tag);
        payload_frame.extend_from_slice(&0u64.to_le_bytes());
        payload_frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        payload_frame.extend_from_slice(payload);
        payload_frame.extend_from_slice(&frame_checksum(tag, 0, payload).to_le_bytes());
        std::fs::write(&path, &payload_frame).unwrap();
        assert!(matches!(replay(&path), Err(StoreError::Corrupt(_))));

        // Truncations at every byte boundary of a real log: each must
        // yield Ok (torn tail) or a typed error, never a panic.
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            match replay(&path) {
                Ok(entries) => assert!(entries.len() <= 2),
                Err(
                    StoreError::BadMagic
                    | StoreError::Corrupt(_)
                    | StoreError::ChecksumMismatch { .. },
                ) => {}
                Err(e) => panic!("cut {cut}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let path = tmp("magic.wal");
        std::fs::write(&path, b"NOTAWAL\0rest").unwrap();
        assert!(matches!(replay(&path), Err(StoreError::BadMagic)));
        let mut header = MAGIC.to_vec();
        header.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &header).unwrap();
        assert!(matches!(
            replay(&path),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        // Version 1 logs (no seq field) are explicitly unsupported.
        let mut v1 = MAGIC.to_vec();
        v1.extend_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &v1).unwrap();
        assert!(matches!(
            replay(&path),
            Err(StoreError::UnsupportedVersion { found: 1, supported: 2 })
        ));
    }
}
