//! The persistent resolution store: an [`IncrementalResolver`] wrapped
//! with durability (snapshot + WAL) and serving-speed lookups (name
//! postings + per-threshold entity maps).
//!
//! Durability protocol: `create` writes a full snapshot and an empty WAL.
//! Every arrival is appended to the WAL *before* it is applied in memory.
//! `open` loads the snapshot and replays the WAL, reconstructing exactly
//! the pre-crash state; `snapshot` folds the WAL into a fresh snapshot
//! and truncates it.

use crate::error::StoreError;
use crate::index::QueryIndex;
use crate::snapshot;
use crate::wal::{self, Wal, WalEntry};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yv_core::{
    EntityMap, IncrementalResolver, PersonQuery, QueryHit, RankedMatch, Resolution,
};
use yv_obs::Counter;
use yv_records::{Dataset, Record, Source, SourceId};

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.yvs";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.yvl";

/// Default number of per-threshold entity maps kept memoized. Each map
/// holds an entry per record, so an unbounded cache grows linearly in
/// (distinct thresholds × records); serving workloads rarely use more
/// than a handful of thresholds at once.
pub const DEFAULT_ENTITY_MAP_CAPACITY: usize = 8;

/// Point-in-time counters for `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    pub records: usize,
    pub sources: usize,
    pub matches: usize,
    /// Arrivals applied since the last snapshot (pending WAL entries).
    pub wal_entries: usize,
    /// On-disk WAL size in bytes (header plus complete frames).
    pub wal_bytes: u64,
    /// Distinct lowercased names in the query index.
    pub vocabulary: usize,
    /// Total posting entries in the query index.
    pub postings: usize,
    /// Entity maps currently memoized (≤ the configured capacity).
    pub entity_maps_cached: usize,
    /// Lifetime LRU evictions from the entity-map cache. Invalidation on
    /// writes clears the cache without counting here.
    pub entity_map_evictions: u64,
}

/// A bounded LRU of entity maps keyed by certainty-threshold bits.
///
/// Capacities are small (single digits), so recency is a sequence stamp
/// per entry and eviction is a linear scan — no linked list needed.
#[derive(Debug)]
struct EntityMapCache {
    capacity: usize,
    seq: u64,
    entries: Vec<(u64, Arc<EntityMap>, u64)>,
}

impl EntityMapCache {
    fn new(capacity: usize) -> EntityMapCache {
        EntityMapCache { capacity: capacity.max(1), seq: 0, entries: Vec::new() }
    }

    fn get(&mut self, key: u64) -> Option<Arc<EntityMap>> {
        self.seq += 1;
        let seq = self.seq;
        self.entries.iter_mut().find(|(k, _, _)| *k == key).map(|entry| {
            entry.2 = seq;
            Arc::clone(&entry.1)
        })
    }

    /// Insert `map`, evicting the least-recently-used entry when full.
    /// Returns the number of evictions (0 or 1).
    fn insert(&mut self, key: u64, map: Arc<EntityMap>) -> u64 {
        self.seq += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            entry.1 = map;
            entry.2 = self.seq;
            return 0;
        }
        let mut evicted = 0;
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
                evicted = 1;
            }
        }
        self.entries.push((key, map, self.seq));
        evicted
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A durable, queryable resolution store rooted at a directory.
#[derive(Debug)]
pub struct Store {
    resolver: IncrementalResolver,
    index: QueryIndex,
    wal: Wal,
    dir: PathBuf,
    wal_entries: usize,
    /// Ranked-match resolution, rebuilt lazily after writes.
    resolution: Mutex<Option<Arc<Resolution>>>,
    /// Bounded per-threshold entity-map memo, keyed by threshold bits.
    entity_maps: Mutex<EntityMapCache>,
    /// Lifetime LRU evictions (capacity pressure, not write invalidation).
    evictions: Counter,
}

impl Store {
    /// Initialize a store directory from a bootstrapped resolver: writes
    /// the initial snapshot and an empty WAL.
    pub fn create(dir: &Path, resolver: IncrementalResolver) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir)?;
        snapshot::write_file(&dir.join(SNAPSHOT_FILE), &resolver)?;
        let wal = Wal::create(&dir.join(WAL_FILE))?;
        let index = QueryIndex::build(resolver.dataset());
        Ok(Store {
            resolver,
            index,
            wal,
            dir: dir.to_path_buf(),
            wal_entries: 0,
            resolution: Mutex::new(None),
            entity_maps: Mutex::new(EntityMapCache::new(DEFAULT_ENTITY_MAP_CAPACITY)),
            evictions: Counter::new(),
        })
    }

    /// Open an existing store directory: load the snapshot, replay the
    /// WAL over it, and position the WAL for further appends.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !snap_path.exists() {
            return Err(StoreError::MissingSnapshot(dir.to_path_buf()));
        }
        let mut resolver = snapshot::read_file(&snap_path)?;
        let wal_path = dir.join(WAL_FILE);
        let entries = if wal_path.exists() { wal::replay(&wal_path)? } else { Vec::new() };
        let wal_entries = entries.len();
        for entry in entries {
            match entry {
                WalEntry::Source(source) => {
                    resolver.add_source(source);
                }
                WalEntry::Record(record) => {
                    if record.source.index() >= resolver.dataset().sources().len() {
                        return Err(StoreError::Corrupt(format!(
                            "WAL record {} references unknown source {}",
                            record.book_id, record.source.0
                        )));
                    }
                    resolver.insert(*record);
                }
            }
        }
        let wal = if wal_path.exists() {
            Wal::open(&wal_path)?
        } else {
            Wal::create(&wal_path)?
        };
        let index = QueryIndex::build(resolver.dataset());
        Ok(Store {
            resolver,
            index,
            wal,
            dir: dir.to_path_buf(),
            wal_entries,
            resolution: Mutex::new(None),
            entity_maps: Mutex::new(EntityMapCache::new(DEFAULT_ENTITY_MAP_CAPACITY)),
            evictions: Counter::new(),
        })
    }

    /// Bound the entity-map memo to `capacity` entries (minimum 1).
    /// Shrinking below the current population evicts oldest-first.
    pub fn set_entity_map_capacity(&mut self, capacity: usize) {
        let mut cache = self.entity_maps.lock();
        cache.capacity = capacity.max(1);
        while cache.len() > cache.capacity {
            if let Some(lru) = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
            {
                cache.entries.swap_remove(lru);
                self.evictions.incr();
            }
        }
    }

    /// The growing dataset.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        self.resolver.dataset()
    }

    /// The underlying resolver.
    #[must_use]
    pub fn resolver(&self) -> &IncrementalResolver {
        &self.resolver
    }

    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: self.resolver.len(),
            sources: self.resolver.dataset().sources().len(),
            matches: self.resolver.matches().len(),
            wal_entries: self.wal_entries,
            wal_bytes: self.wal.bytes(),
            vocabulary: self.index.vocabulary_size(),
            postings: self.index.postings(),
            entity_maps_cached: self.entity_maps.lock().len(),
            entity_map_evictions: self.evictions.get(),
        }
    }

    /// Register an arriving source, durably (WAL first).
    pub fn add_source(&mut self, source: Source) -> Result<SourceId, StoreError> {
        self.wal.append_source(&source)?;
        self.wal_entries += 1;
        Ok(self.resolver.add_source(source))
    }

    /// Apply one arriving record, durably (WAL first); returns the new
    /// ranked matches it produced. Unknown sources are a typed error, not
    /// a panic, because arrivals come over the wire.
    pub fn add_record(&mut self, record: Record) -> Result<Vec<RankedMatch>, StoreError> {
        if record.source.index() >= self.resolver.dataset().sources().len() {
            return Err(StoreError::Corrupt(format!(
                "record {} references unknown source {}",
                record.book_id, record.source.0
            )));
        }
        self.wal.append_record(&record)?;
        self.wal_entries += 1;
        let rid = yv_records::RecordId(self.resolver.len() as u32);
        let matches = self.resolver.insert(record);
        self.index.add_record(rid, self.resolver.dataset().record(rid));
        *self.resolution.lock() = None;
        self.entity_maps.lock().clear();
        Ok(matches)
    }

    /// The current resolution, cached until the next write.
    #[must_use]
    pub fn resolution(&self) -> Arc<Resolution> {
        let mut cached = self.resolution.lock();
        if let Some(r) = cached.as_ref() {
            return Arc::clone(r);
        }
        let fresh = Arc::new(self.resolver.resolution());
        *cached = Some(Arc::clone(&fresh));
        fresh
    }

    /// The entity map at a certainty threshold, memoized until the next
    /// write (keyed by the threshold's bit pattern). The memo is a small
    /// LRU — see [`DEFAULT_ENTITY_MAP_CAPACITY`] and
    /// [`Store::set_entity_map_capacity`]; evictions are counted in
    /// [`StoreStats::entity_map_evictions`].
    #[must_use]
    pub fn entity_map(&self, certainty: f64) -> Arc<EntityMap> {
        let key = certainty.to_bits();
        if let Some(m) = self.entity_maps.lock().get(key) {
            return m;
        }
        let fresh = Arc::new(self.resolution().entity_map(certainty));
        self.evictions.add(self.entity_maps.lock().insert(key, Arc::clone(&fresh)));
        fresh
    }

    /// Answer a person query through the index — same hits, same order,
    /// as `PersonQuery::run` over the full dataset.
    #[must_use]
    pub fn query(&self, query: &PersonQuery) -> Vec<QueryHit> {
        let entity_map = self.entity_map(query.certainty);
        self.index
            .seeds(query)
            .into_iter()
            .map(|seed| QueryHit {
                seed,
                entity: entity_map
                    .entity_of(seed)
                    .map_or_else(|| vec![seed], <[yv_records::RecordId]>::to_vec),
            })
            .collect()
    }

    /// Fold the WAL into a fresh snapshot and truncate it.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        snapshot::write_file(&self.dir.join(SNAPSHOT_FILE), &self.resolver)?;
        self.wal = Wal::create(&self.dir.join(WAL_FILE))?;
        self.wal_entries = 0;
        Ok(())
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
