//! The persistent resolution store: an [`IncrementalResolver`] wrapped
//! with durability (snapshot + WAL), serving-speed lookups (name
//! postings and per-threshold entity maps), and name-hash sharding so
//! concurrent writers on distinct shards never contend on the
//! durability path.
//!
//! Sharding: the store is partitioned into N shards fixed at `create`
//! time (see [`crate::shard::Manifest`]). Each shard owns its own query
//! index, WAL file and snapshot segment behind a per-shard lock. A
//! record belongs to the shard of its first last name
//! ([`crate::shard::shard_of_record`]); sources — global, shard-less
//! state — are logged to shard 0 by convention.
//!
//! Durability protocol: `create` writes a full snapshot (base + one
//! segment per shard) and empty WALs. Every arrival takes a global
//! arrival sequence number *under its shard's write lock*, is appended
//! (and fsynced) to that shard's WAL — fsyncs on distinct shards run in
//! parallel — and is then applied to the shared resolver strictly in
//! sequence order (a condvar sequencer hands applies out in ticket
//! order). `open` replays the shard WALs in parallel, merges the frames
//! by sequence number, and refuses to open if the merge has a hole
//! ([`StoreError::ShardWalGap`]): record ids are assigned in apply
//! order, so replaying past a hole would renumber every later record. A
//! torn tail on the globally *last* arrival is the ordinary
//! crash-mid-append case and recovers cleanly. `snapshot` quiesces all
//! shards, folds the WALs into fresh snapshot files and truncates them.

use crate::error::StoreError;
use crate::index::QueryIndex;
use crate::shard::{self, Manifest, ShardStats};
use crate::snapshot;
use crate::wal::{Wal, WalEntry, WalScan};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use yv_core::{
    EntityMap, IncrementalResolver, PersonQuery, QueryHit, RankedMatch, Resolution,
};
use yv_fuzzy::{rank_entities, FuzzyIndex, RankedEntity, ScoreBlend, DEFAULT_QGRAM_BOUND};
use yv_obs::{Counter, TraceCtx};
use yv_records::{Dataset, Record, RecordId, Source, SourceId};

/// Base snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.yvs";

/// Per-shard WAL file name inside a store directory.
#[must_use]
pub fn wal_file_name(shard: usize) -> String {
    format!("wal.{shard}.yvl")
}

/// Per-shard snapshot segment file name inside a store directory.
#[must_use]
pub fn segment_file_name(shard: usize) -> String {
    format!("snapshot.{shard}.yvs")
}

/// Default number of per-threshold entity maps kept memoized. Each map
/// holds an entry per record, so an unbounded cache grows linearly in
/// (distinct thresholds × records); serving workloads rarely use more
/// than a handful of thresholds at once.
pub const DEFAULT_ENTITY_MAP_CAPACITY: usize = 8;

/// Point-in-time counters for `STATS`: store-wide totals plus one
/// [`ShardStats`] row per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    pub records: usize,
    pub sources: usize,
    pub matches: usize,
    /// Arrivals applied since the last snapshot (pending WAL entries,
    /// summed over shards).
    pub wal_entries: usize,
    /// On-disk WAL size in bytes, summed over shards.
    pub wal_bytes: u64,
    /// Distinct lowercased names, summed over shard indexes. A name
    /// spanning shards counts once per shard holding it.
    pub vocabulary: usize,
    /// Total posting entries, summed over shard indexes.
    pub postings: usize,
    /// Entity maps currently memoized (≤ the configured capacity).
    pub entity_maps_cached: usize,
    /// Lifetime LRU evictions from the entity-map cache.
    pub entity_map_evictions: u64,
    /// Distinct names in the fuzzy indexes, summed over shards.
    pub fuzzy_names: usize,
    /// Distinct q-grams in the fuzzy indexes, summed over shards.
    pub fuzzy_grams: usize,
    /// Gram → name posting entries in the fuzzy indexes, summed over
    /// shards.
    pub fuzzy_postings: usize,
    /// Lifetime candidate names examined by `RESOLVE` scans.
    pub fuzzy_examined: u64,
    /// Lifetime candidate names pruned by the `RESOLVE` filters.
    pub fuzzy_pruned: u64,
    /// Per-shard breakdown, ascending by shard index.
    pub shards: Vec<ShardStats>,
}

/// Tuning knobs for [`Store::resolve`]. The defaults serve the protocol
/// command; the blend and bound are exposed for the eval sweep and for
/// callers embedding the store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolveOptions {
    /// Maximum candidates returned.
    pub k: usize,
    /// Drop candidates scoring below this (inclusive bound).
    pub min_score: f64,
    /// Q-gram Jaccard bound for candidate generation.
    pub bound: f64,
    /// Signal weights for the ranked scorer.
    pub blend: ScoreBlend,
}

impl Default for ResolveOptions {
    fn default() -> ResolveOptions {
        ResolveOptions {
            k: DEFAULT_RESOLVE_K,
            min_score: f64::NEG_INFINITY,
            bound: DEFAULT_QGRAM_BOUND,
            blend: ScoreBlend::default(),
        }
    }
}

/// Default `k` when a `RESOLVE` query does not name one.
pub const DEFAULT_RESOLVE_K: usize = 10;

/// The answer to one fuzzy resolution: ranked entities plus the filter
/// telemetry for this scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolveOutcome {
    /// Ranked candidates, best first — score `total_cmp` descending,
    /// ties toward the smaller entity id.
    pub hits: Vec<RankedEntity>,
    /// Candidate names sharing at least one gram with the query.
    pub examined: u64,
    /// Candidate names the length/Jaccard filters pruned.
    pub pruned: u64,
}

/// A bounded LRU of entity maps keyed by (write generation, certainty
/// bits).
///
/// The generation component replaces the old clear-on-write
/// invalidation: with queries and writes running concurrently under
/// different locks, a clear could race a query that was already
/// computing a map from pre-write state and re-inserting it *after* the
/// clear. Keying by generation makes stale entries unreachable instead
/// — they age out of the LRU naturally.
///
/// Capacities are small (single digits), so recency is a sequence stamp
/// per entry and eviction is a linear scan — no linked list needed.
#[derive(Debug)]
struct EntityMapCache {
    capacity: usize,
    seq: u64,
    entries: Vec<((u64, u64), Arc<EntityMap>, u64)>,
}

impl EntityMapCache {
    fn new(capacity: usize) -> EntityMapCache {
        EntityMapCache { capacity: capacity.max(1), seq: 0, entries: Vec::new() }
    }

    fn get(&mut self, key: (u64, u64)) -> Option<Arc<EntityMap>> {
        self.seq += 1;
        let seq = self.seq;
        self.entries.iter_mut().find(|(k, _, _)| *k == key).map(|entry| {
            entry.2 = seq;
            Arc::clone(&entry.1)
        })
    }

    /// Insert `map`, evicting the least-recently-used entry when full.
    /// Returns the number of evictions (0 or 1).
    fn insert(&mut self, key: (u64, u64), map: Arc<EntityMap>) -> u64 {
        self.seq += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            entry.1 = map;
            entry.2 = self.seq;
            return 0;
        }
        let mut evicted = 0;
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
                evicted = 1;
            }
        }
        self.entries.push((key, map, self.seq));
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Hands the global arrival order out as tickets and serializes the
/// in-memory applies behind it.
///
/// A writer takes its ticket *while holding its shard's write lock* (so
/// sequence numbers within one WAL file are strictly increasing), does
/// its WAL fsync — the part that parallelizes across shards — and then
/// waits its turn to apply to the shared resolver. Because a shard's
/// write lock admits one writer at a time, at most one ticket per shard
/// is ever in flight, and the ticket a writer waits on is always held by
/// a writer on a *different* shard that needs no lock the waiter holds:
/// no deadlock. An errored writer must still consume its ticket
/// ([`Sequencer::finish`]) or every later arrival stalls forever.
///
/// Built on `std::sync` because the workspace's vendored `parking_lot`
/// stub has no condvar; poisoning is recovered (the protected state is a
/// bare counter, always valid).
#[derive(Debug)]
struct Sequencer {
    /// Next ticket to hand out.
    next: AtomicU64,
    /// Next ticket allowed to apply.
    turn: StdMutex<u64>,
    cv: Condvar,
}

impl Sequencer {
    fn new(start: u64) -> Sequencer {
        Sequencer { next: AtomicU64::new(start), turn: StdMutex::new(start), cv: Condvar::new() }
    }

    fn ticket(&self) -> u64 {
        self.next.fetch_add(1, Ordering::SeqCst)
    }

    fn wait_turn(&self, ticket: u64) {
        let mut turn = self.turn.lock().unwrap_or_else(PoisonError::into_inner);
        while *turn != ticket {
            turn = self.cv.wait(turn).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self) {
        let mut turn = self.turn.lock().unwrap_or_else(PoisonError::into_inner);
        *turn += 1;
        self.cv.notify_all();
    }

    /// Rewind after a snapshot truncated the WALs. Only sound while every
    /// shard is quiesced (no ticket in flight).
    fn reset(&self, to: u64) {
        let mut turn = self.turn.lock().unwrap_or_else(PoisonError::into_inner);
        self.next.store(to, Ordering::SeqCst);
        *turn = to;
    }
}

/// Everything one shard owns, behind its per-shard lock.
#[derive(Debug)]
struct ShardState {
    wal: Wal,
    index: QueryIndex,
    /// Secondary q-gram index over this shard's names, maintained in
    /// lockstep with `index` (create, open, WAL replay, add).
    fuzzy: FuzzyIndex,
    /// Arrivals logged to this shard since the last snapshot.
    wal_entries: usize,
}

/// A durable, queryable, sharded resolution store rooted at a directory.
///
/// All methods take `&self`: interior locks (per-shard + resolver)
/// replace the old whole-store `RwLock<Store>`, so the server's workers
/// share a plain reference and `ADD`s on distinct shards overlap their
/// WAL fsyncs.
#[derive(Debug)]
pub struct Store {
    resolver: RwLock<IncrementalResolver>,
    shards: Vec<RwLock<ShardState>>,
    seq: Sequencer,
    dir: PathBuf,
    /// Bumped under the resolver write lock on every applied write;
    /// keys the resolution and entity-map caches.
    generation: AtomicU64,
    /// Ranked-match resolution memo for the generation that built it.
    resolution: Mutex<Option<(u64, Arc<Resolution>)>>,
    /// Bounded per-(generation, threshold) entity-map memo.
    entity_maps: Mutex<EntityMapCache>,
    /// Per-record best incident match score, memoized per generation
    /// (the `RESOLVE` certainty signal).
    certainties: Mutex<Option<(u64, Arc<Vec<f64>>)>>,
    /// Lifetime LRU evictions (capacity pressure).
    evictions: Counter,
    /// Lifetime candidate names examined by `RESOLVE` scans.
    fuzzy_examined: Counter,
    /// Lifetime candidate names pruned by the `RESOLVE` filters.
    fuzzy_pruned: Counter,
}

/// Partition a dataset's records by shard, ascending rid within each.
fn partition(ds: &Dataset, n_shards: usize) -> Vec<Vec<(RecordId, &Record)>> {
    let mut parts: Vec<Vec<(RecordId, &Record)>> = vec![Vec::new(); n_shards];
    for rid in ds.record_ids() {
        let record = ds.record(rid);
        parts[shard::shard_of_record(record, n_shards)].push((rid, record));
    }
    parts
}

/// Write the full snapshot file set: per-shard segments first, base
/// last, each atomically. The base file doubles as the commit marker —
/// `open` validates segment coverage against its record count, so a
/// crash mid-way leaves a detectably inconsistent (not silently wrong)
/// directory.
fn write_snapshot_files(
    dir: &Path,
    resolver: &IncrementalResolver,
    n_shards: usize,
) -> Result<(), StoreError> {
    for (s, entries) in partition(resolver.dataset(), n_shards).iter().enumerate() {
        let bytes = snapshot::segment_to_bytes(s, entries)?;
        snapshot::write_atomically(&dir.join(segment_file_name(s)), &bytes)?;
    }
    let base = snapshot::base_to_bytes(resolver)?;
    snapshot::write_atomically(&dir.join(SNAPSHOT_FILE), &base)?;
    Ok(())
}

/// What one shard contributes to `open`, loaded in parallel.
struct ShardLoad {
    index: QueryIndex,
    fuzzy: FuzzyIndex,
    records: Vec<(RecordId, Record)>,
    scan: WalScan,
}

/// Load one shard's segment and WAL (the parallel part of `open`).
fn load_shard(dir: &Path, s: usize) -> Result<ShardLoad, StoreError> {
    let (claimed, records) = snapshot::read_segment_file(&dir.join(segment_file_name(s)))?;
    if claimed != s {
        return Err(StoreError::Corrupt(format!(
            "segment file {} claims shard {claimed}",
            segment_file_name(s)
        )));
    }
    let mut index = QueryIndex::default();
    let mut fuzzy = FuzzyIndex::new();
    let mut prev: Option<RecordId> = None;
    for (rid, record) in &records {
        if prev.is_some_and(|p| p >= *rid) {
            return Err(StoreError::Corrupt(format!(
                "shard {s} segment records out of order at rid {}",
                rid.0
            )));
        }
        prev = Some(*rid);
        index.add_record(*rid, record);
        fuzzy.add_record(*rid, record);
    }
    let wal_path = dir.join(wal_file_name(s));
    if !wal_path.exists() {
        return Err(StoreError::Corrupt(format!(
            "shard {s} WAL ({}) is missing",
            wal_file_name(s)
        )));
    }
    let scan = crate::wal::scan_file(&wal_path)?;
    Ok(ShardLoad { index, fuzzy, records, scan })
}

impl Store {
    /// Initialize a store directory from a bootstrapped resolver: writes
    /// the manifest, the initial snapshot (base + `shards` segments) and
    /// one empty WAL per shard.
    pub fn create(
        dir: &Path,
        resolver: IncrementalResolver,
        shards: usize,
    ) -> Result<Store, StoreError> {
        let manifest = Manifest::new(shards)?;
        std::fs::create_dir_all(dir)?;
        write_snapshot_files(dir, &resolver, shards)?;
        manifest.write(dir)?;
        let mut shard_states = Vec::with_capacity(shards);
        let parts = partition(resolver.dataset(), shards);
        for (s, entries) in parts.iter().enumerate() {
            let wal = Wal::create(&dir.join(wal_file_name(s)))?;
            let mut index = QueryIndex::default();
            let mut fuzzy = FuzzyIndex::new();
            for (rid, record) in entries {
                index.add_record(*rid, record);
                fuzzy.add_record(*rid, record);
            }
            shard_states.push(RwLock::new(ShardState { wal, index, fuzzy, wal_entries: 0 }));
        }
        Ok(Store {
            resolver: RwLock::new(resolver),
            shards: shard_states,
            seq: Sequencer::new(0),
            dir: dir.to_path_buf(),
            generation: AtomicU64::new(0),
            resolution: Mutex::new(None),
            entity_maps: Mutex::new(EntityMapCache::new(DEFAULT_ENTITY_MAP_CAPACITY)),
            certainties: Mutex::new(None),
            evictions: Counter::new(),
            fuzzy_examined: Counter::new(),
            fuzzy_pruned: Counter::new(),
        })
    }

    /// Open an existing store directory: load the manifest and base
    /// snapshot, load every shard's segment and WAL in parallel, merge
    /// the WAL frames back into global arrival order, replay them, and
    /// position the WALs for further appends.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !snap_path.exists() {
            return Err(StoreError::MissingSnapshot(dir.to_path_buf()));
        }
        let manifest = Manifest::read(dir)?;
        let n_shards = manifest.shards;
        let base = snapshot::read_base_file(&snap_path)?;

        // Parallel phase: segment read + index build + WAL scan per shard.
        let mut loads: Vec<Option<Result<ShardLoad, StoreError>>> =
            (0..n_shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (s, slot) in loads.iter_mut().enumerate() {
                scope.spawn(move || {
                    *slot = Some(load_shard(dir, s));
                });
            }
        });
        // Surface errors in shard order, so a multi-shard failure reports
        // deterministically.
        let mut shard_loads = Vec::with_capacity(n_shards);
        for (s, slot) in loads.into_iter().enumerate() {
            match slot {
                Some(Ok(load)) => shard_loads.push(load),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(StoreError::Corrupt(format!("shard {s} loader panicked")))
                }
            }
        }

        // Reassemble the dataset: segments must cover 0..n_records
        // exactly, each record in the shard its name routes to.
        let mut slots: Vec<Option<Record>> = (0..base.n_records).map(|_| None).collect();
        for (s, load) in shard_loads.iter_mut().enumerate() {
            for (rid, record) in load.records.drain(..) {
                if shard::shard_of_record(&record, n_shards) != s {
                    return Err(StoreError::Corrupt(format!(
                        "record {} (rid {}) found in shard {s} segment but routes elsewhere",
                        record.book_id, rid.0
                    )));
                }
                let slot = slots.get_mut(rid.index()).ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "segment record id {} beyond declared count {}",
                        rid.0, base.n_records
                    ))
                })?;
                if slot.replace(record).is_some() {
                    return Err(StoreError::Corrupt(format!(
                        "record id {} appears in more than one segment",
                        rid.0
                    )));
                }
            }
        }
        let mut ds = Dataset::new();
        for source in base.sources {
            ds.add_source(source);
        }
        let n_sources = ds.sources().len();
        for (i, slot) in slots.into_iter().enumerate() {
            let record = slot.ok_or_else(|| {
                StoreError::Corrupt(format!("no segment carries record id {i}"))
            })?;
            if record.source.index() >= n_sources {
                return Err(StoreError::Corrupt(format!(
                    "record {} references unknown source {}",
                    record.book_id, record.source.0
                )));
            }
            ds.add_record(record);
        }
        let mut resolver =
            IncrementalResolver::from_parts(ds, base.pipeline, base.config, base.inc, base.matches);

        // Merge the shard WALs back into global arrival order and demand
        // the sequence is gapless from 0 — see [`StoreError::ShardWalGap`].
        let mut merged: Vec<(u64, usize, WalEntry)> = Vec::new();
        for (s, load) in shard_loads.iter_mut().enumerate() {
            for (seq, entry) in load.scan.entries.drain(..) {
                merged.push((seq, s, entry));
            }
        }
        merged.sort_by_key(|(seq, _, _)| *seq);
        for (expected, (seq, _, _)) in merged.iter().enumerate() {
            let expected = expected as u64;
            match seq.cmp(&expected) {
                std::cmp::Ordering::Equal => {}
                std::cmp::Ordering::Less => {
                    return Err(StoreError::Corrupt(format!(
                        "arrival seq {seq} appears in more than one WAL frame"
                    )))
                }
                std::cmp::Ordering::Greater => {
                    // A hole. Blame the shard that demonstrably lost its
                    // tail; without one, the loss is unattributable.
                    let torn =
                        shard_loads.iter().position(|l| l.scan.torn).ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "WAL merge is missing arrival seq {expected} and no shard \
                                 has a torn tail"
                            ))
                        })?;
                    return Err(StoreError::ShardWalGap {
                        shard: torn,
                        missing_seq: expected,
                    });
                }
            }
        }

        // Replay in arrival order, re-deriving each record's id exactly
        // as the original apply did.
        let wal_entries_total = merged.len() as u64;
        let mut wal_entries_per_shard = vec![0usize; n_shards];
        for (_, s, entry) in merged {
            wal_entries_per_shard[s] += 1;
            match entry {
                WalEntry::Source(source) => {
                    if s != 0 {
                        return Err(StoreError::Corrupt(format!(
                            "source frame in shard {s} WAL; sources are logged to shard 0"
                        )));
                    }
                    resolver.add_source(source);
                }
                WalEntry::Record(record) => {
                    if shard::shard_of_record(&record, n_shards) != s {
                        return Err(StoreError::Corrupt(format!(
                            "WAL record {} found in shard {s} but routes elsewhere",
                            record.book_id
                        )));
                    }
                    if record.source.index() >= resolver.dataset().sources().len() {
                        return Err(StoreError::Corrupt(format!(
                            "WAL record {} references unknown source {}",
                            record.book_id, record.source.0
                        )));
                    }
                    let rid = RecordId(resolver.len() as u32);
                    resolver.insert(*record);
                    shard_loads[s].index.add_record(rid, resolver.dataset().record(rid));
                    shard_loads[s].fuzzy.add_record(rid, resolver.dataset().record(rid));
                }
            }
        }

        let mut shard_states = Vec::with_capacity(n_shards);
        for (s, load) in shard_loads.into_iter().enumerate() {
            // `Wal::open` truncates any torn tail, so the next append
            // lands after the last complete frame.
            let wal = Wal::open(&dir.join(wal_file_name(s)))?;
            shard_states.push(RwLock::new(ShardState {
                wal,
                index: load.index,
                fuzzy: load.fuzzy,
                wal_entries: wal_entries_per_shard[s],
            }));
        }
        Ok(Store {
            resolver: RwLock::new(resolver),
            shards: shard_states,
            seq: Sequencer::new(wal_entries_total),
            dir: dir.to_path_buf(),
            generation: AtomicU64::new(0),
            resolution: Mutex::new(None),
            entity_maps: Mutex::new(EntityMapCache::new(DEFAULT_ENTITY_MAP_CAPACITY)),
            certainties: Mutex::new(None),
            evictions: Counter::new(),
            fuzzy_examined: Counter::new(),
            fuzzy_pruned: Counter::new(),
        })
    }

    /// Number of shards, fixed at `create` time.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bound the entity-map memo to `capacity` entries (minimum 1).
    /// Shrinking below the current population evicts oldest-first.
    pub fn set_entity_map_capacity(&self, capacity: usize) {
        let mut cache = self.entity_maps.lock();
        cache.capacity = capacity.max(1);
        while cache.len() > cache.capacity {
            if let Some(lru) = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
            {
                cache.entries.swap_remove(lru);
                self.evictions.incr();
            }
        }
    }

    /// Run `f` against the growing dataset, under the resolver read
    /// lock. (References cannot escape the lock, hence the closure.)
    pub fn with_dataset<R>(&self, f: impl FnOnce(&Dataset) -> R) -> R {
        f(self.resolver.read().dataset())
    }

    /// Run `f` against the underlying resolver, under the read lock.
    pub fn with_resolver<R>(&self, f: impl FnOnce(&IncrementalResolver) -> R) -> R {
        f(&self.resolver.read())
    }

    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let (records, sources, matches) = {
            let r = self.resolver.read();
            (r.len(), r.dataset().sources().len(), r.matches().len())
        };
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, s) in self.shards.iter().enumerate() {
            let s = s.read();
            shards.push(ShardStats {
                shard: i,
                records: s.index.len(),
                vocabulary: s.index.vocabulary_size(),
                postings: s.index.postings(),
                wal_entries: s.wal_entries,
                wal_bytes: s.wal.bytes(),
                fuzzy_names: s.fuzzy.names(),
                fuzzy_grams: s.fuzzy.grams(),
                fuzzy_postings: s.fuzzy.postings(),
            });
        }
        StoreStats {
            records,
            sources,
            matches,
            wal_entries: shards.iter().map(|s| s.wal_entries).sum(),
            wal_bytes: shards.iter().map(|s| s.wal_bytes).sum(),
            vocabulary: shards.iter().map(|s| s.vocabulary).sum(),
            postings: shards.iter().map(|s| s.postings).sum(),
            entity_maps_cached: self.entity_maps.lock().len(),
            entity_map_evictions: self.evictions.get(),
            fuzzy_names: shards.iter().map(|s| s.fuzzy_names).sum(),
            fuzzy_grams: shards.iter().map(|s| s.fuzzy_grams).sum(),
            fuzzy_postings: shards.iter().map(|s| s.fuzzy_postings).sum(),
            fuzzy_examined: self.fuzzy_examined.get(),
            fuzzy_pruned: self.fuzzy_pruned.get(),
            shards,
        }
    }

    /// Register an arriving source, durably (WAL first). Sources are
    /// global state and serialize through shard 0's lock and WAL.
    pub fn add_source(&self, source: Source) -> Result<SourceId, StoreError> {
        let mut shard = self.shards[0].write();
        let ticket = self.seq.ticket();
        // audit:allow(L1) WAL fsync under the shard lock is the arrival-ordering invariant (the lock spans ticket to apply)
        let logged = shard.wal.append_source(ticket, &source);
        self.seq.wait_turn(ticket);
        let outcome = match logged {
            Err(e) => Err(e),
            Ok(()) => {
                shard.wal_entries += 1;
                let mut resolver = self.resolver.write();
                let id = resolver.add_source(source);
                self.generation.fetch_add(1, Ordering::SeqCst);
                Ok(id)
            }
        };
        self.seq.finish();
        outcome
    }

    /// Apply one arriving record, durably (WAL first); returns the new
    /// ranked matches it produced. Unknown sources are a typed error, not
    /// a panic, because arrivals come over the wire.
    ///
    /// Concurrency: only the owning shard's write lock is held across
    /// the WAL fsync, so arrivals routed to distinct shards overlap
    /// their disk waits; the in-memory applies then run one at a time in
    /// ticket order, keeping record-id assignment identical to a
    /// single-threaded arrival stream.
    pub fn add_record(&self, record: Record) -> Result<Vec<RankedMatch>, StoreError> {
        {
            let resolver = self.resolver.read();
            if record.source.index() >= resolver.dataset().sources().len() {
                return Err(StoreError::Corrupt(format!(
                    "record {} references unknown source {}",
                    record.book_id, record.source.0
                )));
            }
        }
        let s = shard::shard_of_record(&record, self.shards.len());
        let mut shard = self.shards[s].write();
        let ticket = self.seq.ticket();
        // audit:allow(L1) WAL fsync under the shard lock is the arrival-ordering invariant (the lock spans ticket to apply)
        let logged = shard.wal.append_record(ticket, &record);
        self.seq.wait_turn(ticket);
        // Even a failed append must consume its ticket, or every later
        // arrival waits forever.
        let outcome = match logged {
            Err(e) => Err(e),
            Ok(()) => {
                shard.wal_entries += 1;
                let mut resolver = self.resolver.write();
                let rid = RecordId(resolver.len() as u32);
                let matches = resolver.insert(record);
                shard.index.add_record(rid, resolver.dataset().record(rid));
                shard.fuzzy.add_record(rid, resolver.dataset().record(rid));
                self.generation.fetch_add(1, Ordering::SeqCst);
                Ok(matches)
            }
        };
        self.seq.finish();
        outcome
    }

    /// Apply a batch of arriving records with **group commit**: one WAL
    /// fsync per dirty shard instead of one per record. Returns one
    /// outcome per submitted record, in submission order.
    ///
    /// Durability: a record's `Ok` outcome is only produced after its
    /// shard's WAL has been synced, so acknowledgements derived from
    /// these outcomes never precede durability.
    ///
    /// Crash safety vs the gapless-sequence replay invariant (restart
    /// refuses to open on a hole in the merged arrival sequence): the
    /// batch holds *every* shard's write lock — taken in ascending
    /// order, the same quiesce order as [`Store::snapshot`] — so no
    /// concurrent arrival can interleave a ticket into the batch's run
    /// of the global sequence. Records are then processed grouped by
    /// shard, and shard `i` is synced before shard `i+1`'s frames are
    /// even written, so at any crash point the unsynced frames are
    /// exactly a suffix of the global sequence: replay sees a torn or
    /// short tail, never a gap.
    ///
    /// Record ids are assigned in (shard, batch) order rather than
    /// submission order; replay reproduces the same order from the
    /// sequence stamps.
    pub fn add_records(
        &self,
        records: Vec<Record>,
    ) -> Vec<Result<Vec<RankedMatch>, StoreError>> {
        let mut statuses: Vec<Option<Result<Vec<RankedMatch>, StoreError>>> =
            records.iter().map(|_| None).collect();
        let sources = self.resolver.read().dataset().sources().len();
        let shard_count = self.shards.len();
        let mut groups: Vec<Vec<(usize, Record)>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for (i, record) in records.into_iter().enumerate() {
            if record.source.index() >= sources {
                statuses[i] = Some(Err(StoreError::Corrupt(format!(
                    "record {} references unknown source {}",
                    record.book_id, record.source.0
                ))));
            } else {
                let s = shard::shard_of_record(&record, shard_count);
                groups[s].push((i, record));
            }
        }
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        for (s, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &mut guards[s];
            let mut appended: Vec<(usize, Record, u64, Result<(), StoreError>)> =
                Vec::with_capacity(group.len());
            for (i, record) in group {
                let ticket = self.seq.ticket();
                // audit:allow(L1) WAL append under every shard lock is the group-commit invariant (the locks pin the batch's run of the sequence)
                let logged = shard.wal.append_record_nosync(ticket, &record);
                appended.push((i, record, ticket, logged));
            }
            // audit:allow(L1) one fsync per dirty shard under its lock is the group-commit payoff
            let sync_err = shard.wal.sync().err().map(|e| e.to_string());
            for (i, record, ticket, logged) in appended {
                self.seq.wait_turn(ticket);
                // Even a failed append must consume its ticket, or every
                // later arrival waits forever.
                let outcome = match (&sync_err, logged) {
                    (Some(e), _) => {
                        Err(StoreError::Corrupt(format!("batch WAL sync failed: {e}")))
                    }
                    (None, Err(e)) => Err(e),
                    (None, Ok(())) => {
                        shard.wal_entries += 1;
                        let mut resolver = self.resolver.write();
                        let rid = RecordId(resolver.len() as u32);
                        let matches = resolver.insert(record);
                        shard.index.add_record(rid, resolver.dataset().record(rid));
                        shard.fuzzy.add_record(rid, resolver.dataset().record(rid));
                        self.generation.fetch_add(1, Ordering::SeqCst);
                        Ok(matches)
                    }
                };
                statuses[i] = Some(outcome);
                self.seq.finish();
            }
        }
        drop(guards);
        statuses
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(StoreError::Corrupt("batch bookkeeping lost a record".into()))
                })
            })
            .collect()
    }

    /// The current resolution and the write generation it reflects,
    /// memoized per generation.
    fn resolution_at(&self) -> (u64, Arc<Resolution>) {
        let mut cached = self.resolution.lock();
        let generation = self.generation.load(Ordering::SeqCst);
        if let Some((cached_gen, r)) = cached.as_ref() {
            if *cached_gen == generation {
                return (generation, Arc::clone(r));
            }
        }
        let resolver = self.resolver.read();
        // Re-read under the resolver lock: the generation only moves
        // under the resolver *write* lock, so this value is pinned for
        // as long as we hold the read lock — the memo key is honest.
        let generation = self.generation.load(Ordering::SeqCst);
        let fresh = Arc::new(resolver.resolution());
        *cached = Some((generation, Arc::clone(&fresh)));
        (generation, fresh)
    }

    /// The current resolution, memoized until the next applied write.
    #[must_use]
    pub fn resolution(&self) -> Arc<Resolution> {
        self.resolution_at().1
    }

    /// The entity map at a certainty threshold, memoized per (write
    /// generation, threshold bits). The memo is a small LRU — see
    /// [`DEFAULT_ENTITY_MAP_CAPACITY`] and
    /// [`Store::set_entity_map_capacity`]; evictions are counted in
    /// [`StoreStats::entity_map_evictions`].
    #[must_use]
    pub fn entity_map(&self, certainty: f64) -> Arc<EntityMap> {
        let (generation, resolution) = self.resolution_at();
        let key = (generation, certainty.to_bits());
        if let Some(m) = self.entity_maps.lock().get(key) {
            return m;
        }
        let fresh = Arc::new(resolution.entity_map(certainty));
        self.evictions.add(self.entity_maps.lock().insert(key, Arc::clone(&fresh)));
        fresh
    }

    /// Answer a person query: fan the seed lookup out over every shard's
    /// index, merge deterministically (ascending [`RecordId`]; shards
    /// hold disjoint records, so the merge is a sort, not a dedup), then
    /// expand each seed through the entity map — same hits, same order,
    /// as `PersonQuery::run` over the full dataset.
    #[must_use]
    pub fn query(&self, query: &PersonQuery) -> Vec<QueryHit> {
        self.query_traced(query, &mut TraceCtx::disabled())
    }

    /// [`Store::query`] with request-scoped tracing: the shard fan-out
    /// and the merge/expand phase each record a span, with one child
    /// span per shard annotated with the seeds it contributed. A
    /// [`TraceCtx::disabled`] context makes every trace call a no-op, so
    /// the untraced path pays one branch per shard.
    #[must_use]
    pub fn query_traced(&self, query: &PersonQuery, trace: &mut TraceCtx) -> Vec<QueryHit> {
        trace.enter("shard_fanout");
        let mut seeds: Vec<RecordId> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            trace.enter_shard("shard", i as u32);
            let before = seeds.len();
            seeds.extend(shard.read().index.seeds(query));
            trace.arg("seeds", (seeds.len() - before) as u64);
            trace.exit();
        }
        trace.exit();
        trace.enter("merge");
        seeds.sort_unstable();
        let entity_map = self.entity_map(query.certainty);
        let hits = seeds
            .into_iter()
            .map(|seed| QueryHit {
                seed,
                entity: entity_map
                    .entity_of(seed)
                    .map_or_else(|| vec![seed], <[RecordId]>::to_vec),
            })
            .collect();
        trace.exit();
        hits
    }

    /// Per-record best incident ranked-match score — the resolver's own
    /// confidence that a record belongs to a multi-report person —
    /// memoized per write generation alongside the resolution.
    fn certainties_at(&self) -> Arc<Vec<f64>> {
        let (generation, resolution) = self.resolution_at();
        let mut cached = self.certainties.lock();
        if let Some((cached_gen, c)) = cached.as_ref() {
            if *cached_gen == generation {
                return Arc::clone(c);
            }
        }
        let mut best: Vec<f64> = Vec::new();
        for m in &resolution.matches {
            for rid in [m.a, m.b] {
                let i = rid.index();
                if i >= best.len() {
                    best.resize(i + 1, 0.0);
                }
                if m.score > best[i] {
                    best[i] = m.score;
                }
            }
        }
        let fresh = Arc::new(best);
        *cached = Some((generation, Arc::clone(&fresh)));
        fresh
    }

    /// Fuzzily resolve a (possibly misspelled) name into ranked
    /// entities: scan every shard's q-gram index for candidate names
    /// within `options.bound`, then rank the union with
    /// [`yv_fuzzy::rank_entities`] against the current resolution.
    ///
    /// Determinism: the per-shard phase applies only the pure per-name
    /// Jaccard predicate — no per-shard truncation — so the candidate
    /// union, and therefore the ranking, depends only on the store's
    /// logical state, never on the shard count, arrival interleaving, or
    /// a restart.
    #[must_use]
    pub fn resolve(&self, name: &str, options: &ResolveOptions) -> ResolveOutcome {
        self.resolve_traced(name, options, &mut TraceCtx::disabled())
    }

    /// [`Store::resolve`] with request-scoped tracing: one span for the
    /// q-gram shard fan-out (a child per shard annotated with the
    /// candidates it surfaced and the names it examined) and one for the
    /// ranking merge. Only counts enter the trace — candidate names stay
    /// out, same privacy discipline as the slow log.
    #[must_use]
    pub fn resolve_traced(
        &self,
        name: &str,
        options: &ResolveOptions,
        trace: &mut TraceCtx,
    ) -> ResolveOutcome {
        let query = name.to_lowercase();
        // Collect owned candidates so the shard read locks drop before
        // ranking (which may take the resolver lock via the memos).
        let mut names: Vec<(String, f64, Vec<RecordId>)> = Vec::new();
        let mut examined = 0;
        let mut pruned = 0;
        trace.enter("shard_fanout");
        for (i, shard) in self.shards.iter().enumerate() {
            trace.enter_shard("shard", i as u32);
            let s = shard.read();
            let (candidates, stats) = s.fuzzy.candidates(&query, options.bound);
            examined += stats.examined;
            pruned += stats.pruned_length + stats.pruned_jaccard;
            trace.arg("cands", candidates.len() as u64);
            trace.arg("examined", stats.examined);
            for c in candidates {
                names.push((c.name.to_owned(), c.jaccard, c.records.to_vec()));
            }
            trace.exit();
        }
        trace.exit();
        self.fuzzy_examined.add(examined);
        self.fuzzy_pruned.add(pruned);

        trace.enter("merge");
        let entity_map = self.entity_map(0.0);
        let certainties = self.certainties_at();
        let hits = rank_entities(
            &query,
            names.iter().map(|(n, j, rs)| (n.as_str(), *j, rs.as_slice())),
            |rid| entity_map.entity_of(rid).map_or_else(|| vec![rid], <[RecordId]>::to_vec),
            |rid| certainties.get(rid.index()).copied().unwrap_or(0.0),
            &options.blend,
            options.k,
            options.min_score,
        );
        trace.exit();
        ResolveOutcome { hits, examined, pruned }
    }

    /// Fold the WALs into a fresh snapshot file set and truncate them.
    ///
    /// Quiesce protocol: take every shard's write lock in ascending
    /// order (writers hold their shard lock from ticket to apply, so
    /// once all locks are held no arrival is in flight anywhere), write
    /// segments + base, truncate each WAL, rewind the sequencer.
    pub fn snapshot(&self) -> Result<(), StoreError> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        {
            let resolver = self.resolver.read();
            // audit:allow(L1) the quiesce protocol writes the segment files while every shard (and the resolver) is pinned — this hold is the point
            write_snapshot_files(&self.dir, &resolver, guards.len())?;
        }
        // The resolver read lock is released before the WAL churn below:
        // recreating the per-shard WALs needs only the shard guards, and
        // resolve() calls may proceed concurrently with those fsyncs.
        for (s, guard) in guards.iter_mut().enumerate() {
            guard.wal = Wal::create(&self.dir.join(wal_file_name(s)))?;
            guard.wal_entries = 0;
        }
        self.seq.reset(0);
        Ok(())
    }

    /// One canonical byte string covering the store's entire logical
    /// state — see [`snapshot::state_bytes`]. Two stores are
    /// byte-identical here exactly when they hold the same records (in
    /// the same arrival order), matches, model and configuration,
    /// *regardless of shard count*.
    pub fn state_bytes(&self) -> Result<Vec<u8>, StoreError> {
        snapshot::state_bytes(&self.resolver.read())
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
