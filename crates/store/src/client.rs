//! Typed client for `yv serve`, over either transport.
//!
//! A [`Client`] wraps one TCP connection and turns protocol exchanges
//! into typed calls — [`Client::query`] returns [`QueryHit`]s,
//! [`Client::add`] the match count, [`Client::stats`] a parsed
//! [`StatsReport`] — so callers (tests, the CLI, load generators) never
//! hand-assemble request lines or scrape response text:
//!
//! ```no_run
//! # use yv_store::client::Client;
//! # use yv_core::PersonQuery;
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! let query = PersonQuery { last_name: Some("Foa".into()), ..PersonQuery::default() };
//! for hit in client.query(&query)? {
//!     println!("seed {} resolves with {} records", hit.seed.0, hit.entity.len());
//! }
//! # Ok::<(), yv_store::client::ClientError>(())
//! ```
//!
//! ## Transports
//!
//! The transport lives behind the [`Connection`] trait with two
//! backends: the original line protocol ([`Protocol::Text`], what
//! `Client::connect` still gives you) and the length-prefixed,
//! checksummed binary framing from [`crate::frame`]
//! ([`Protocol::Binary`], negotiated by sending `HELLO proto=binary` as
//! the first request). [`ClientOptions`] picks the transport and the
//! socket timeouts:
//!
//! ```no_run
//! # use std::time::Duration;
//! # use yv_store::client::{ClientOptions, Protocol};
//! let mut client = ClientOptions::new()
//!     .connect_timeout(Duration::from_secs(2))
//!     .read_timeout(Duration::from_secs(30))
//!     .protocol(Protocol::Negotiate)
//!     .connect("127.0.0.1:7878")?;
//! # Ok::<(), yv_store::client::ClientError>(())
//! ```
//!
//! Every typed call works identically on both transports (binary
//! replies carry the same rendered block the text server would have
//! written, so even the parsers are shared). The binary transport adds
//! [`Client::batch_add`] — many records in one round trip with
//! per-record [`BatchStatus`] outcomes — and [`Client::pipeline`], which
//! keeps a bounded window of requests in flight and hands replies back
//! in request order.
//!
//! ## What the text wire cannot carry
//!
//! The line format is `key=value` tokens separated by whitespace, so not
//! every [`Record`] is expressible there: values containing whitespace
//! (or empty ones), `mothers_maiden`, and places have no encoding. Those
//! surface as [`ClientError::Unencodable`] *before* anything is sent —
//! an encoding gap never half-transmits a record. The binary codec
//! carries every record verbatim.

use crate::error::StoreError;
use crate::frame::{BatchStatus, RequestFrame, ResponseFrame, HELLO_LINE, HELLO_OK};
use crate::protocol::TERMINATOR;
use crate::shard::ShardStats;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use yv_core::{PersonQuery, QueryHit};
use yv_records::{Gender, Record, RecordId};

/// Everything that can go wrong talking to a `yv serve` server.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed or dropped mid-exchange.
    Io(std::io::Error),
    /// The server answered, but not in the shape the protocol promises
    /// (missing terminator, malformed data line, bad frame checksum).
    /// The string names what was expected.
    Protocol(String),
    /// The server answered with an `ERR ...` status; the string is the
    /// server's message.
    Server(String),
    /// The request has no encoding on the connection's transport
    /// (whitespace or empty value, `mothers_maiden`, places on the line
    /// protocol; `BATCH_ADD` on a text connection). Detected client-side
    /// before anything is sent.
    Unencodable(String),
}

impl ClientError {
    /// True when the server itself answered `ERR ...` — the request
    /// reached the store and was refused (bad arguments, unknown
    /// source). Protocol misuse is testable through this predicate
    /// without string-matching transport failures.
    #[must_use]
    pub fn is_server(&self) -> bool {
        matches!(self, ClientError::Server(_))
    }

    /// True when the failure happened *around* the server rather than
    /// in it: the connection dropped, the response was malformed, or
    /// the request could not be encoded at all.
    #[must_use]
    pub fn is_transport(&self) -> bool {
        !self.is_server()
    }

    /// The server's `ERR` message, if this is a server-side refusal.
    #[must_use]
    pub fn server_message(&self) -> Option<&str> {
        match self {
            ClientError::Server(msg) => Some(msg),
            _ => None,
        }
    }

    /// The [`std::io::ErrorKind`] underneath a transport failure, if the
    /// failure was an I/O error at all. Retry logic upstream can branch
    /// on this without string-matching: `ConnectionRefused` (server not
    /// up yet) and `TimedOut`/`WouldBlock` (slow reply) are retryable in
    /// ways `ConnectionReset` mid-request may not be.
    #[must_use]
    pub fn io_kind(&self) -> Option<std::io::ErrorKind> {
        match self {
            ClientError::Io(e) => Some(e.kind()),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(what) => write!(f, "malformed server response: {what}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unencodable(what) => {
                write!(f, "not expressible on this transport: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<StoreError> for ClientError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// One `SHARD` row of a `STATS` response. Field-for-field the server's
/// [`ShardStats`].
pub type ShardRow = ShardStats;

/// One `CAND` row of a `RESOLVE` response: a ranked entity candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolveRow {
    /// Entity representative (smallest member record id).
    pub entity: RecordId,
    /// Blended score in `[0, 1]`.
    pub score: f64,
    /// The indexed name that matched the query best.
    pub name: String,
    /// Entity members, ascending.
    pub members: Vec<RecordId>,
}

/// One `CMD` row of a `STATS` or `TOP` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandRow {
    pub name: String,
    pub count: u64,
    pub errors: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// The `RING` row of a `TOP` response: capture-ring counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingRow {
    pub capacity: usize,
    pub occupancy: usize,
    pub captured: u64,
    pub evicted: u64,
    pub sampled: u64,
    /// Trace id of the most recent tail-sampled request (0 = none yet).
    pub last_slow: u64,
}

/// One `SLOW` row of a `TOP` response: a tail-sampled request summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRow {
    pub trace: u64,
    pub command: String,
    pub ok: bool,
    pub conn: u64,
    pub total_ns: u64,
    pub spans: usize,
}

/// A parsed `TOP` response: ring counters, per-command latency rows and
/// the recent tail-sampled requests, newest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopReport {
    pub ring: RingRow,
    pub commands: Vec<CommandRow>,
    pub slow: Vec<SlowRow>,
}

/// One `SPAN` row of a `TRACE` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    pub name: String,
    pub depth: u8,
    pub shard: Option<u32>,
    /// Start offset relative to the request's accept time, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub args: Vec<(String, u64)>,
}

/// A parsed `TRACE` response: the request summary from the status line
/// plus the span tree in depth-first order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    pub id: u64,
    pub command: String,
    pub ok: bool,
    pub conn: u64,
    pub total_ns: u64,
    pub dropped_spans: u16,
    pub args: Vec<(String, u64)>,
    pub spans: Vec<SpanRow>,
}

/// The `WINDOW` row of a `HISTORY` response: every in-window sample
/// merged, with interpolated min/max-clamped percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistorySummaryRow {
    pub count: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub min_us: u64,
    pub max_us: u64,
}

/// One `SLO` row of a `HISTORY` response: a burn-rate rule and its
/// evaluated state (`ok` / `warning` / `firing`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistorySloRow {
    pub metric: String,
    pub p: f64,
    pub threshold_us: u64,
    pub window: usize,
    pub short_window: usize,
    pub state: String,
    pub burn_long_pct: u64,
    pub burn_short_pct: u64,
}

/// One `BUCKET` row of a `HISTORY` response: a closed window bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryBucketRow {
    pub epoch: u64,
    pub count: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub max_us: u64,
}

/// A parsed `HISTORY` response: the resolved metric/tier/window from the
/// status line, the whole-window summary, the SLO rows watching the
/// metric, and the non-empty closed buckets (ascending epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryReport {
    pub metric: String,
    /// The tier label the server resolved (`s` or `m`).
    pub tier: String,
    pub window: usize,
    /// The currently open epoch; buckets cover `[now_epoch - window,
    /// now_epoch)`.
    pub now_epoch: u64,
    pub summary: HistorySummaryRow,
    pub slo: Vec<HistorySloRow>,
    pub buckets: Vec<HistoryBucketRow>,
}

/// A parsed `STATS` response: the store-wide aggregates from the status
/// line plus the per-shard and per-command data rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    pub records: usize,
    pub sources: usize,
    pub matches: usize,
    pub shards: usize,
    pub wal_entries: usize,
    pub wal_bytes: u64,
    pub vocabulary: usize,
    pub entity_maps: usize,
    pub evictions: u64,
    pub fuzzy_names: usize,
    pub fuzzy_grams: usize,
    pub fuzzy_postings: usize,
    pub fuzzy_examined: u64,
    pub fuzzy_pruned: u64,
    pub errors: u64,
    pub shard_rows: Vec<ShardRow>,
    pub commands: Vec<CommandRow>,
}

/// Which transport a connection should speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// The original line protocol. The default: inspectable with
    /// `telnet`/`nc`, and what [`Client::connect`] gives you.
    #[default]
    Text,
    /// Send `HELLO proto=binary` on connect and require the upgrade; a
    /// server that refuses is an error ([`ClientError::Server`]).
    Binary,
    /// Try the `HELLO` upgrade, but fall back to the text protocol on
    /// the same connection if the server refuses (an `ERR` reply leaves
    /// the text session usable by design).
    Negotiate,
}

/// Builder for how a [`Client`] connects: socket timeouts and the
/// transport ([`Protocol`]). `Client::connect(addr)` is shorthand for
/// `ClientOptions::new().connect(addr)`.
#[derive(Debug, Clone, Default)]
pub struct ClientOptions {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    protocol: Protocol,
}

impl ClientOptions {
    /// Defaults: no timeouts (blocking connect/read), text protocol.
    #[must_use]
    pub fn new() -> ClientOptions {
        ClientOptions::default()
    }

    /// Bound how long `connect` waits for the TCP handshake. Each
    /// resolved address gets the full budget in turn.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> ClientOptions {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Bound how long any single read waits for server bytes; an
    /// expired timeout surfaces as [`ClientError::Io`] with kind
    /// `TimedOut`/`WouldBlock` (platform-dependent).
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> ClientOptions {
        self.read_timeout = Some(timeout);
        self
    }

    /// Pick the transport (default [`Protocol::Text`]).
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> ClientOptions {
        self.protocol = protocol;
        self
    }

    /// Connect, apply the timeouts, and run the `HELLO` negotiation the
    /// chosen [`Protocol`] calls for.
    pub fn connect<A: ToSocketAddrs>(&self, addr: A) -> Result<Client, ClientError> {
        let stream = self.open_stream(addr)?;
        stream.set_read_timeout(self.read_timeout)?;
        // Request/response protocol: Nagle holds the final partial
        // segment of a large frame until the server's delayed ACK, which
        // turns every pipelined BATCH_ADD into a ~40ms round trip.
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let binary = match self.protocol {
            Protocol::Text => false,
            Protocol::Binary | Protocol::Negotiate => {
                writer.write_all(HELLO_LINE.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                let (status, _) = read_text_block(&mut reader)?;
                if status == HELLO_OK {
                    true
                } else if let Some(msg) = status.strip_prefix("ERR ") {
                    if self.protocol == Protocol::Binary {
                        return Err(ClientError::Server(msg.to_owned()));
                    }
                    false
                } else {
                    return Err(ClientError::Protocol(format!(
                        "unexpected HELLO reply {status:?}"
                    )));
                }
            }
        };
        let negotiated = if binary { Protocol::Binary } else { Protocol::Text };
        let conn: Box<dyn Connection> = if binary {
            Box::new(BinaryConnection { reader, writer })
        } else {
            Box::new(TextConnection { reader, writer })
        };
        Ok(Client { conn, negotiated })
    }

    fn open_stream<A: ToSocketAddrs>(&self, addr: A) -> Result<TcpStream, ClientError> {
        let Some(timeout) = self.connect_timeout else {
            return Ok(TcpStream::connect(addr)?);
        };
        let mut last = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }
}

/// One reply off the wire, still in transport shape. [`Reply::block`]
/// and [`Reply::batch`] convert to the typed forms (mapping `ERR`
/// statuses to [`ClientError::Server`]); pipelined callers get `Reply`
/// values back so an `ERR` mid-stream doesn't abort the replies behind
/// it.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A rendered response block: the status line plus the data lines
    /// (terminator already consumed). Both transports produce these —
    /// the binary framing carries the same rendered text.
    Block {
        status: String,
        data: Vec<String>,
    },
    /// Per-record `BATCH_ADD` outcomes, in request order (binary only).
    Batch(Vec<BatchStatus>),
}

impl Reply {
    /// This reply as a successful text block. `ERR` statuses become
    /// [`ClientError::Server`]; a batch reply here is a protocol breach.
    pub fn block(self) -> Result<(String, Vec<String>), ClientError> {
        match self {
            Reply::Block { status, data } => {
                if let Some(msg) = status.strip_prefix("ERR ") {
                    return Err(ClientError::Server(msg.to_owned()));
                }
                if !status.starts_with("OK") {
                    return Err(ClientError::Protocol(format!(
                        "expected an OK or ERR status line, got {status:?}"
                    )));
                }
                Ok((status, data))
            }
            Reply::Batch(_) => Err(ClientError::Protocol(
                "expected a response block, got a BATCH_ADD status frame".to_owned(),
            )),
        }
    }

    /// This reply as per-record `BATCH_ADD` statuses.
    pub fn batch(self) -> Result<Vec<BatchStatus>, ClientError> {
        match self {
            Reply::Batch(statuses) => Ok(statuses),
            Reply::Block { status, .. } => {
                if let Some(msg) = status.strip_prefix("ERR ") {
                    return Err(ClientError::Server(msg.to_owned()));
                }
                Err(ClientError::Protocol(format!(
                    "expected BATCH_ADD statuses, got a response block {status:?}"
                )))
            }
        }
    }
}

/// One request/reply transport. Implementations promise that replies
/// come back **in request order** (the server handles each connection
/// serially), which is what makes [`Pipeline`] sound: after `n` sends
/// and `m < n` receives, the next [`recv`](Connection::recv) yields the
/// reply to send `m + 1`.
pub trait Connection: fmt::Debug + Send {
    /// Encode and write one request without waiting for its reply.
    /// Encoding failures ([`ClientError::Unencodable`]) are detected
    /// before any byte is written.
    fn send(&mut self, request: &RequestFrame) -> Result<(), ClientError>;

    /// Read the next reply, in send order.
    fn recv(&mut self) -> Result<Reply, ClientError>;
}

/// The line-protocol backend: requests render to `key=value` lines,
/// replies are status + data lines up to the terminator.
#[derive(Debug)]
pub struct TextConnection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection for TextConnection {
    fn send(&mut self, request: &RequestFrame) -> Result<(), ClientError> {
        // One write per request: splitting the line and its newline into
        // two TCP segments lets Nagle hold the newline for the delayed
        // ACK (~40ms per request on loopback).
        let mut line = render_request(request)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Reply, ClientError> {
        let (status, data) = read_text_block(&mut self.reader)?;
        Ok(Reply::Block { status, data })
    }
}

/// The binary backend: length-prefixed, checksummed frames from
/// [`crate::frame`], entered via `HELLO proto=binary`.
#[derive(Debug)]
pub struct BinaryConnection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection for BinaryConnection {
    fn send(&mut self, request: &RequestFrame) -> Result<(), ClientError> {
        let bytes = request.encode()?;
        self.writer.write_all(&bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Reply, ClientError> {
        match ResponseFrame::read(&mut self.reader)? {
            None => Err(ClientError::Protocol("connection closed mid-response".to_owned())),
            Some(ResponseFrame::Batch(statuses)) => Ok(Reply::Batch(statuses)),
            Some(ResponseFrame::Block(block)) => {
                let mut lines = block.lines().map(str::to_owned);
                let status = lines.next().ok_or_else(|| {
                    ClientError::Protocol("empty response block frame".to_owned())
                })?;
                let mut data: Vec<String> = lines.collect();
                if data.pop().as_deref() != Some(TERMINATOR) {
                    return Err(ClientError::Protocol(
                        "response block frame has no terminator".to_owned(),
                    ));
                }
                Ok(Reply::Block { status, data })
            }
        }
    }
}

/// A connected client. One logical request/reply at a time through the
/// typed methods; [`Client::pipeline`] overlaps requests explicitly.
#[derive(Debug)]
pub struct Client {
    conn: Box<dyn Connection>,
    negotiated: Protocol,
}

impl Client {
    /// Connect with the defaults: text protocol, no timeouts. Shorthand
    /// for `ClientOptions::new().connect(addr)`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        ClientOptions::new().connect(addr)
    }

    /// The transport this connection actually speaks after negotiation:
    /// [`Protocol::Binary`] iff the `HELLO` upgrade happened.
    #[must_use]
    pub fn protocol(&self) -> Protocol {
        self.negotiated
    }

    /// Run a `QUERY` and parse the hits.
    pub fn query(&mut self, query: &PersonQuery) -> Result<Vec<QueryHit>, ClientError> {
        let (_, data) = self.request(&RequestFrame::Query(query.clone()))?;
        data.iter().map(|line| parse_hit(line)).collect()
    }

    /// Run an `ADD`, returning the number of ranked matches the new
    /// record produced.
    pub fn add(&mut self, record: &Record) -> Result<usize, ClientError> {
        let (status, _) = self.request(&RequestFrame::Add(Box::new(record.clone())))?;
        // Token scan, not a prefix match: OK status lines may carry a
        // trailing `trace=<id>` token after the matches count.
        status
            .split_whitespace()
            .find_map(|token| token.strip_prefix("matches="))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("expected OK matches=N, got {status:?}")))
    }

    /// Run a `BATCH_ADD`: all `records` in one round trip, answered with
    /// one [`BatchStatus`] per record in order. Binary transport only —
    /// on a text connection this refuses with
    /// [`ClientError::Unencodable`] before sending anything.
    pub fn batch_add(&mut self, records: Vec<Record>) -> Result<Vec<BatchStatus>, ClientError> {
        self.conn.send(&RequestFrame::BatchAdd(records))?;
        self.conn.recv()?.batch()
    }

    /// Run a `RESOLVE` and parse the ranked candidates. `k` and `min`
    /// are optional protocol options (`k=N`, `min=SCORE`); the server
    /// defaults apply when absent.
    pub fn resolve(
        &mut self,
        name: &str,
        k: Option<usize>,
        min: Option<f64>,
    ) -> Result<Vec<ResolveRow>, ClientError> {
        let k = k.map(wire_u32("k")).transpose()?;
        let frame = RequestFrame::Resolve { name: name.to_owned(), k, min };
        let (_, data) = self.request(&frame)?;
        data.iter().map(|line| parse_cand(line)).collect()
    }

    /// Run `STATS` and parse the report.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let (status, data) = self.request(&RequestFrame::Stats)?;
        parse_stats(&status, &data)
    }

    /// Run `METRICS`, returning the Prometheus text exposition verbatim.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (_, data) = self.request(&RequestFrame::Metrics)?;
        let mut out = String::new();
        for line in data {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }

    /// Run `TOP` and parse the live introspection report. `k` bounds the
    /// number of `SLOW` rows; the server default applies when absent.
    pub fn top(&mut self, k: Option<usize>) -> Result<TopReport, ClientError> {
        let k = k.map(wire_u32("k")).transpose()?;
        let (_, data) = self.request(&RequestFrame::Top { k })?;
        parse_top(&data)
    }

    /// Run `TRACE <id>` and parse the span tree for one captured request.
    /// Ids come from the `trace=` token on OK status lines (or `TOP`).
    pub fn trace_get(&mut self, id: u64) -> Result<TraceReport, ClientError> {
        let (status, data) = self.request(&RequestFrame::Trace { id, json: false })?;
        parse_trace(&status, &data)
    }

    /// Run `HISTORY <metric>` and parse the windowed-rollup report.
    /// `window` (buckets) and `tier` fall back to the server defaults
    /// (60 and seconds) when absent.
    pub fn history(
        &mut self,
        metric: &str,
        window: Option<usize>,
        tier: Option<yv_obs::Tier>,
    ) -> Result<HistoryReport, ClientError> {
        let frame = RequestFrame::History {
            metric: metric.to_owned(),
            window: window.map(wire_u32("window")).transpose()?,
            tier,
            json: false,
        };
        let (status, data) = self.request(&frame)?;
        parse_history(&status, &data)
    }

    /// Ask the server to fold its WALs into a fresh snapshot.
    pub fn snapshot(&mut self) -> Result<(), ClientError> {
        self.request(&RequestFrame::Snapshot).map(|_| ())
    }

    /// Ask the server to shut down (it answers `OK bye` first).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&RequestFrame::Shutdown).map(|_| ())
    }

    /// Start a pipelined stretch: up to `window` requests in flight at
    /// once, replies collected in request order. A `window` of 0 is
    /// treated as 1 (plain request/reply).
    pub fn pipeline(&mut self, window: usize) -> Pipeline<'_> {
        Pipeline { conn: self.conn.as_mut(), window: window.max(1), in_flight: 0, replies: Vec::new() }
    }

    /// One request/reply exchange, unwrapped to (status, data lines).
    fn request(&mut self, frame: &RequestFrame) -> Result<(String, Vec<String>), ClientError> {
        self.conn.send(frame)?;
        self.conn.recv()?.block()
    }
}

/// An explicit pipelining window over a [`Client`]'s connection.
///
/// [`push`](Pipeline::push) writes a request, first draining one reply
/// if the in-flight window is full — so at most `window` requests are
/// outstanding and neither side can deadlock on a full TCP buffer.
/// [`flush`](Pipeline::flush) drains the rest. Replies always come back
/// in push order; an `ERR` reply occupies its slot like any other (it
/// does not abort the stream), so callers match replies to requests by
/// index.
#[derive(Debug)]
pub struct Pipeline<'a> {
    conn: &'a mut dyn Connection,
    window: usize,
    in_flight: usize,
    replies: Vec<Reply>,
}

impl Pipeline<'_> {
    /// Send one request, draining a reply first if the window is full.
    pub fn push(&mut self, request: &RequestFrame) -> Result<(), ClientError> {
        if self.in_flight >= self.window {
            let reply = self.conn.recv()?;
            self.replies.push(reply);
            self.in_flight -= 1;
        }
        self.conn.send(request)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Drain every outstanding reply and return all replies collected
    /// since the last flush, in push order. The pipeline stays usable.
    pub fn flush(&mut self) -> Result<Vec<Reply>, ClientError> {
        while self.in_flight > 0 {
            let reply = self.conn.recv()?;
            self.replies.push(reply);
            self.in_flight -= 1;
        }
        Ok(std::mem::take(&mut self.replies))
    }
}

/// Read one text-protocol response block: the status line plus data
/// lines up to (and consuming) the terminator.
fn read_text_block<R: BufRead>(reader: &mut R) -> Result<(String, Vec<String>), ClientError> {
    let status = read_line(reader)?;
    let mut data = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line == TERMINATOR {
            break;
        }
        data.push(line);
    }
    Ok((status, data))
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Protocol("connection closed mid-response".to_owned()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Narrow a caller-facing `usize` knob to the wire's `u32`.
fn wire_u32(key: &'static str) -> impl Fn(usize) -> Result<u32, ClientError> {
    move |value| {
        u32::try_from(value)
            .map_err(|_| ClientError::Unencodable(format!("{key} value {value} exceeds u32")))
    }
}

/// Render a request as its line-protocol form, exactly as the pre-frame
/// client would have sent it. `BATCH_ADD` has no line form.
fn render_request(request: &RequestFrame) -> Result<String, ClientError> {
    Ok(match request {
        RequestFrame::Query(query) => encode_query(query)?,
        RequestFrame::Add(record) => encode_add(record)?,
        RequestFrame::Resolve { name, k, min } => {
            let mut line = String::from("RESOLVE");
            line.push(' ');
            line.push_str(wire_value("name", name)?);
            if let Some(k) = k {
                push_kv(&mut line, "k", &k.to_string())?;
            }
            if let Some(min) = min {
                push_kv(&mut line, "min", &format!("{min}"))?;
            }
            line
        }
        RequestFrame::BatchAdd(_) => {
            return Err(ClientError::Unencodable(
                "BATCH_ADD has no line-protocol encoding; connect with Protocol::Binary"
                    .to_owned(),
            ))
        }
        RequestFrame::Stats => "STATS".to_owned(),
        RequestFrame::Metrics => "METRICS".to_owned(),
        RequestFrame::Top { k } => {
            let mut line = String::from("TOP");
            if let Some(k) = k {
                push_kv(&mut line, "k", &k.to_string())?;
            }
            line
        }
        RequestFrame::Trace { id, json } => {
            let mut line = format!("TRACE {id:016x}");
            if *json {
                push_kv(&mut line, "format", "json")?;
            }
            line
        }
        RequestFrame::History { metric, window, tier, json } => {
            let mut line = String::from("HISTORY");
            line.push(' ');
            line.push_str(wire_value("metric", metric)?);
            if let Some(window) = window {
                push_kv(&mut line, "window", &window.to_string())?;
            }
            if let Some(tier) = tier {
                push_kv(&mut line, "tier", tier.label())?;
            }
            if *json {
                push_kv(&mut line, "format", "json")?;
            }
            line
        }
        RequestFrame::Snapshot => "SNAPSHOT".to_owned(),
        RequestFrame::Shutdown => "SHUTDOWN".to_owned(),
    })
}

/// Check a value is wire-safe (non-empty, no whitespace) and return it.
fn wire_value<'a>(key: &str, value: &'a str) -> Result<&'a str, ClientError> {
    if value.is_empty() {
        return Err(ClientError::Unencodable(format!("{key} value is empty")));
    }
    if value.chars().any(char::is_whitespace) {
        return Err(ClientError::Unencodable(format!(
            "{key} value {value:?} contains whitespace"
        )));
    }
    Ok(value)
}

fn push_kv(out: &mut String, key: &str, value: &str) -> Result<(), ClientError> {
    out.push(' ');
    out.push_str(key);
    out.push('=');
    out.push_str(wire_value(key, value)?);
    Ok(())
}

/// Encode a query as a request line. Floats use plain `Display` (no
/// fixed-precision truncation), which round-trips exactly through the
/// server's `parse`.
fn encode_query(query: &PersonQuery) -> Result<String, ClientError> {
    let mut out = String::from("QUERY");
    if let Some(first) = &query.first_name {
        push_kv(&mut out, "first", first)?;
    }
    if let Some(last) = &query.last_name {
        push_kv(&mut out, "last", last)?;
    }
    push_kv(&mut out, "similarity", &format!("{}", query.name_similarity))?;
    push_kv(&mut out, "certainty", &format!("{}", query.certainty))?;
    Ok(out)
}

/// Encode a record as an `ADD` line, or refuse with
/// [`ClientError::Unencodable`] if the record holds anything the wire
/// format cannot carry.
fn encode_add(record: &Record) -> Result<String, ClientError> {
    if record.mothers_maiden.is_some() {
        return Err(ClientError::Unencodable(
            "mothers_maiden has no ADD key".to_owned(),
        ));
    }
    if record.places.iter().any(Option::is_some) {
        return Err(ClientError::Unencodable("places have no ADD keys".to_owned()));
    }
    let mut out = String::from("ADD");
    push_kv(&mut out, "book", &record.book_id.to_string())?;
    push_kv(&mut out, "source", &record.source.0.to_string())?;
    for first in &record.first_names {
        push_kv(&mut out, "first", first)?;
    }
    for last in &record.last_names {
        push_kv(&mut out, "last", last)?;
    }
    let scalars = [
        ("maiden", &record.maiden_name),
        ("father", &record.father_name),
        ("mother", &record.mother_name),
        ("spouse", &record.spouse_name),
        ("profession", &record.profession),
    ];
    for (key, value) in scalars {
        if let Some(value) = value {
            push_kv(&mut out, key, value)?;
        }
    }
    if let Some(gender) = record.gender {
        let code = match gender {
            Gender::Male => "m",
            Gender::Female => "f",
        };
        push_kv(&mut out, "gender", code)?;
    }
    if let Some(day) = record.birth.day {
        push_kv(&mut out, "day", &day.to_string())?;
    }
    if let Some(month) = record.birth.month {
        push_kv(&mut out, "month", &month.to_string())?;
    }
    if let Some(year) = record.birth.year {
        push_kv(&mut out, "year", &year.to_string())?;
    }
    Ok(out)
}

/// Parse one `HIT seed=N entity=A,B,C` data line.
fn parse_hit(line: &str) -> Result<QueryHit, ClientError> {
    let malformed = || ClientError::Protocol(format!("malformed HIT line {line:?}"));
    let rest = line.strip_prefix("HIT seed=").ok_or_else(malformed)?;
    let (seed, entity) = rest.split_once(" entity=").ok_or_else(malformed)?;
    let seed = RecordId(seed.parse().map_err(|_| malformed())?);
    let entity = entity
        .split(',')
        .map(|r| r.parse().map(RecordId))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| malformed())?;
    Ok(QueryHit { seed, entity })
}

/// Parse one `CAND entity=N score=S name=X members=A,B,C` data line.
fn parse_cand(line: &str) -> Result<ResolveRow, ClientError> {
    let malformed = || ClientError::Protocol(format!("malformed CAND line {line:?}"));
    if !line.starts_with("CAND ") {
        return Err(malformed());
    }
    let members: String = field(line, "members")?;
    let members = members
        .split(',')
        .map(|r| r.parse().map(RecordId))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| malformed())?;
    Ok(ResolveRow {
        entity: RecordId(field(line, "entity")?),
        score: field(line, "score")?,
        name: field::<String>(line, "name")?,
        members,
    })
}

/// Pull `key=` out of a whitespace-tokenized line and parse it.
fn field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, ClientError> {
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("no {key}= field in {line:?}")))
}

/// Like [`field`], but for the zero-padded hex trace ids.
fn hex_field(line: &str, key: &str) -> Result<u64, ClientError> {
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&prefix))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| ClientError::Protocol(format!("no hex {key}= field in {line:?}")))
}

/// Collect the `key=value` tokens whose key is *not* in `known` and
/// whose value is a u64 — the open-ended trace/span annotation args.
fn extra_args(line: &str, known: &[&str]) -> Vec<(String, u64)> {
    line.split_whitespace()
        .filter_map(|token| token.split_once('='))
        .filter(|(key, _)| !known.contains(key))
        .filter_map(|(key, value)| value.parse().ok().map(|v| (key.to_owned(), v)))
        .collect()
}

/// Parse one `CMD NAME count=... max_us=...` row (shared by `STATS` and
/// `TOP`).
fn parse_cmd_row(line: &str) -> Result<CommandRow, ClientError> {
    let rest = line
        .strip_prefix("CMD ")
        .ok_or_else(|| ClientError::Protocol(format!("malformed CMD line {line:?}")))?;
    let name = rest
        .split_whitespace()
        .next()
        .ok_or_else(|| ClientError::Protocol(format!("malformed CMD line {line:?}")))?
        .to_owned();
    Ok(CommandRow {
        name,
        count: field(line, "count")?,
        errors: field(line, "errors")?,
        mean_us: field(line, "mean_us")?,
        p50_us: field(line, "p50_us")?,
        p95_us: field(line, "p95_us")?,
        p99_us: field(line, "p99_us")?,
        max_us: field(line, "max_us")?,
    })
}

/// Parse the `ok`/`err` value of a `status=` token.
fn status_flag(line: &str) -> Result<bool, ClientError> {
    match field::<String>(line, "status")?.as_str() {
        "ok" => Ok(true),
        "err" => Ok(false),
        other => Err(ClientError::Protocol(format!(
            "unexpected status={other:?} in {line:?}"
        ))),
    }
}

/// Parse the `TOP` data rows: `RING`, `CMD` and `SLOW` lines.
fn parse_top(data: &[String]) -> Result<TopReport, ClientError> {
    let mut ring = None;
    let mut commands = Vec::new();
    let mut slow = Vec::new();
    for line in data {
        if line.starts_with("RING ") {
            ring = Some(RingRow {
                capacity: field(line, "capacity")?,
                occupancy: field(line, "occupancy")?,
                captured: field(line, "captured")?,
                evicted: field(line, "evicted")?,
                sampled: field(line, "sampled")?,
                last_slow: hex_field(line, "last_slow_trace")?,
            });
        } else if line.starts_with("CMD ") {
            commands.push(parse_cmd_row(line)?);
        } else if line.starts_with("SLOW ") {
            slow.push(SlowRow {
                trace: hex_field(line, "trace")?,
                command: field(line, "command")?,
                ok: status_flag(line)?,
                conn: field(line, "conn")?,
                total_ns: field(line, "total_ns")?,
                spans: field(line, "spans")?,
            });
        } else {
            return Err(ClientError::Protocol(format!(
                "unexpected TOP data line {line:?}"
            )));
        }
    }
    let ring =
        ring.ok_or_else(|| ClientError::Protocol("TOP response has no RING line".to_owned()))?;
    Ok(TopReport { ring, commands, slow })
}

/// Parse the `TRACE` status line plus the indented `SPAN` tree.
fn parse_trace(status: &str, data: &[String]) -> Result<TraceReport, ClientError> {
    const KNOWN: &[&str] = &["trace", "command", "status", "conn", "total_ns", "spans", "dropped"];
    const SPAN_KNOWN: &[&str] = &["name", "depth", "shard", "start_ns", "dur_ns"];
    let mut report = TraceReport {
        id: hex_field(status, "trace")?,
        command: field(status, "command")?,
        ok: status_flag(status)?,
        conn: field(status, "conn")?,
        total_ns: field(status, "total_ns")?,
        dropped_spans: field(status, "dropped")?,
        args: extra_args(status, KNOWN),
        spans: Vec::new(),
    };
    for line in data {
        if !line.trim_start().starts_with("SPAN ") {
            return Err(ClientError::Protocol(format!(
                "unexpected TRACE data line {line:?}"
            )));
        }
        let shard = match line.split_whitespace().find_map(|t| t.strip_prefix("shard=")) {
            Some(v) => Some(v.parse().map_err(|_| {
                ClientError::Protocol(format!("malformed shard= in {line:?}"))
            })?),
            None => None,
        };
        report.spans.push(SpanRow {
            name: field(line, "name")?,
            depth: field(line, "depth")?,
            shard,
            start_ns: field(line, "start_ns")?,
            dur_ns: field(line, "dur_ns")?,
            args: extra_args(line, SPAN_KNOWN),
        });
    }
    Ok(report)
}

/// Parse the `HISTORY` status line plus `WINDOW` / `SLO` / `BUCKET` rows.
fn parse_history(status: &str, data: &[String]) -> Result<HistoryReport, ClientError> {
    let mut summary = None;
    let mut slo = Vec::new();
    let mut buckets = Vec::new();
    for line in data {
        if line.starts_with("WINDOW ") {
            summary = Some(HistorySummaryRow {
                count: field(line, "count")?,
                mean_us: field(line, "mean_us")?,
                p50_us: field(line, "p50_us")?,
                p95_us: field(line, "p95_us")?,
                p99_us: field(line, "p99_us")?,
                min_us: field(line, "min_us")?,
                max_us: field(line, "max_us")?,
            });
        } else if line.starts_with("SLO ") {
            slo.push(HistorySloRow {
                metric: field(line, "metric")?,
                p: field(line, "p")?,
                threshold_us: field(line, "threshold_us")?,
                window: field(line, "window")?,
                short_window: field(line, "short_window")?,
                state: field(line, "state")?,
                burn_long_pct: field(line, "burn_long_pct")?,
                burn_short_pct: field(line, "burn_short_pct")?,
            });
        } else if line.starts_with("BUCKET ") {
            buckets.push(HistoryBucketRow {
                epoch: field(line, "epoch")?,
                count: field(line, "count")?,
                mean_us: field(line, "mean_us")?,
                p50_us: field(line, "p50_us")?,
                max_us: field(line, "max_us")?,
            });
        } else {
            return Err(ClientError::Protocol(format!(
                "unexpected HISTORY data line {line:?}"
            )));
        }
    }
    let summary = summary
        .ok_or_else(|| ClientError::Protocol("HISTORY response has no WINDOW line".to_owned()))?;
    Ok(HistoryReport {
        metric: field(status, "metric")?,
        tier: field(status, "tier")?,
        window: field(status, "window")?,
        now_epoch: field(status, "now_epoch")?,
        summary,
        slo,
        buckets,
    })
}

/// Parse the `STATS` status line plus `SHARD` / `CMD` data rows.
fn parse_stats(status: &str, data: &[String]) -> Result<StatsReport, ClientError> {
    let mut report = StatsReport {
        records: field(status, "records")?,
        sources: field(status, "sources")?,
        matches: field(status, "matches")?,
        shards: field(status, "shards")?,
        wal_entries: field(status, "wal")?,
        wal_bytes: field(status, "wal_bytes")?,
        vocabulary: field(status, "vocabulary")?,
        entity_maps: field(status, "entity_maps")?,
        evictions: field(status, "evictions")?,
        fuzzy_names: field(status, "fuzzy_names")?,
        fuzzy_grams: field(status, "fuzzy_grams")?,
        fuzzy_postings: field(status, "fuzzy_postings")?,
        fuzzy_examined: field(status, "fuzzy_examined")?,
        fuzzy_pruned: field(status, "fuzzy_pruned")?,
        errors: field(status, "errors")?,
        ..StatsReport::default()
    };
    for line in data {
        if let Some(rest) = line.strip_prefix("SHARD ") {
            let shard = rest
                .split_whitespace()
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ClientError::Protocol(format!("malformed SHARD line {line:?}")))?;
            report.shard_rows.push(ShardRow {
                shard,
                records: field(line, "records")?,
                vocabulary: field(line, "vocabulary")?,
                postings: field(line, "postings")?,
                wal_entries: field(line, "wal")?,
                wal_bytes: field(line, "wal_bytes")?,
                fuzzy_names: field(line, "fuzzy_names")?,
                fuzzy_grams: field(line, "fuzzy_grams")?,
                fuzzy_postings: field(line, "fuzzy_postings")?,
            });
        } else if line.starts_with("CMD ") {
            report.commands.push(parse_cmd_row(line)?);
        } else {
            return Err(ClientError::Protocol(format!(
                "unexpected STATS data line {line:?}"
            )));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};
    use yv_records::{DateParts, RecordBuilder, SourceId};

    #[test]
    fn encoded_add_round_trips_through_the_server_parser() {
        let record = RecordBuilder::new(99, SourceId(2))
            .first_name("Sara")
            .first_name("Sura")
            .last_name("Levi")
            .maiden_name("Roth")
            .father_name("Moshe")
            .mother_name("Rivka")
            .spouse_name("David")
            .profession("tailor")
            .gender(Gender::Female)
            .birth(DateParts::full(3, 7, 1921))
            .build();
        let line = encode_add(&record).expect("encodable");
        let Ok(Request::Add(parsed)) = parse_request(&line) else {
            panic!("server rejected {line:?}")
        };
        assert_eq!(*parsed, record);
    }

    #[test]
    fn encoded_query_round_trips_through_the_server_parser() {
        let query = PersonQuery {
            first_name: Some("Guido".into()),
            last_name: Some("Foa".into()),
            name_similarity: 0.91,
            certainty: 1.25,
        };
        let line = encode_query(&query).expect("encodable");
        let Ok(Request::Query(parsed)) = parse_request(&line) else {
            panic!("server rejected {line:?}")
        };
        assert_eq!(parsed.first_name, query.first_name);
        assert_eq!(parsed.last_name, query.last_name);
        assert!((parsed.name_similarity - query.name_similarity).abs() < 1e-12);
        assert!((parsed.certainty - query.certainty).abs() < 1e-12);
    }

    #[test]
    fn unencodable_records_are_refused_before_sending() {
        let spaced = RecordBuilder::new(1, SourceId(0)).first_name("Sara Lea").build();
        assert!(matches!(encode_add(&spaced), Err(ClientError::Unencodable(_))));

        let empty = RecordBuilder::new(1, SourceId(0)).first_name("").build();
        assert!(matches!(encode_add(&empty), Err(ClientError::Unencodable(_))));

        let mut with_mm = RecordBuilder::new(1, SourceId(0)).first_name("Sara").build();
        with_mm.mothers_maiden = Some("Katz".to_owned());
        assert!(matches!(encode_add(&with_mm), Err(ClientError::Unencodable(_))));

        let spaced_query =
            PersonQuery { first_name: Some("Sara Lea".into()), ..PersonQuery::default() };
        assert!(matches!(encode_query(&spaced_query), Err(ClientError::Unencodable(_))));
    }

    #[test]
    fn hit_lines_parse() {
        let hit = parse_hit("HIT seed=17 entity=17,203,5044").expect("well-formed");
        assert_eq!(hit.seed, RecordId(17));
        assert_eq!(hit.entity, vec![RecordId(17), RecordId(203), RecordId(5044)]);
        assert!(parse_hit("HIT seed=17").is_err());
        assert!(parse_hit("seed=17 entity=1").is_err());
        assert!(parse_hit("HIT seed=x entity=1").is_err());
    }

    #[test]
    fn cand_lines_parse() {
        let row = parse_cand("CAND entity=17 score=0.6125 name=levi members=17,203")
            .expect("well-formed");
        assert_eq!(row.entity, RecordId(17));
        assert!((row.score - 0.6125).abs() < 1e-12);
        assert_eq!(row.name, "levi");
        assert_eq!(row.members, vec![RecordId(17), RecordId(203)]);
        assert!(parse_cand("CAND entity=17 score=0.5 name=levi").is_err());
        assert!(parse_cand("HIT seed=17 entity=1").is_err());
        assert!(parse_cand("CAND entity=17 score=x name=levi members=17").is_err());
    }

    /// A scripted [`Connection`] that records the high-water mark of
    /// outstanding requests, for exercising [`Pipeline`] off-socket.
    #[derive(Debug)]
    struct MockConn {
        sent: Vec<u8>,
        outstanding: usize,
        max_outstanding: usize,
        next_reply: usize,
    }

    impl MockConn {
        fn new() -> MockConn {
            MockConn { sent: Vec::new(), outstanding: 0, max_outstanding: 0, next_reply: 0 }
        }
    }

    impl Connection for MockConn {
        fn send(&mut self, request: &RequestFrame) -> Result<(), ClientError> {
            self.sent.push(request.tag());
            self.outstanding += 1;
            self.max_outstanding = self.max_outstanding.max(self.outstanding);
            Ok(())
        }

        fn recv(&mut self) -> Result<Reply, ClientError> {
            assert!(self.outstanding > 0, "recv with nothing in flight");
            self.outstanding -= 1;
            let n = self.next_reply;
            self.next_reply += 1;
            Ok(Reply::Block { status: format!("OK reply={n}"), data: Vec::new() })
        }
    }

    #[test]
    fn pipeline_bounds_the_window_and_preserves_reply_order() {
        let mut conn = MockConn::new();
        let mut pipeline =
            Pipeline { conn: &mut conn, window: 3, in_flight: 0, replies: Vec::new() };
        for _ in 0..10 {
            pipeline.push(&RequestFrame::Stats).expect("push");
        }
        let replies = pipeline.flush().expect("flush");
        assert_eq!(replies.len(), 10);
        for (n, reply) in replies.iter().enumerate() {
            let expected = format!("OK reply={n}");
            assert!(matches!(reply, Reply::Block { status, .. } if *status == expected));
        }
        // The pipeline stays usable after a flush, and a fresh flush
        // only returns replies pushed since.
        pipeline.push(&RequestFrame::Metrics).expect("push");
        let more = pipeline.flush().expect("flush");
        assert_eq!(more.len(), 1);
        assert!(pipeline.flush().expect("empty flush").is_empty());
        assert_eq!(conn.max_outstanding, 3, "window must bound in-flight requests");
        assert_eq!(conn.sent.len(), 11);
    }

    #[test]
    fn rendered_requests_round_trip_through_the_server_parser() {
        let cases = [
            (RequestFrame::Resolve { name: "levi".into(), k: Some(3), min: Some(0.25) }, ()),
            (RequestFrame::Resolve { name: "levi".into(), k: None, min: None }, ()),
            (RequestFrame::Stats, ()),
            (RequestFrame::Metrics, ()),
            (RequestFrame::Top { k: Some(7) }, ()),
            (RequestFrame::Top { k: None }, ()),
            (RequestFrame::Trace { id: 0x00ab_00cd_00ef_0011, json: true }, ()),
            (
                RequestFrame::History {
                    metric: "query".into(),
                    window: Some(5),
                    tier: Some(yv_obs::Tier::Minutes),
                    json: false,
                },
                (),
            ),
            (RequestFrame::Snapshot, ()),
            (RequestFrame::Shutdown, ()),
        ];
        for (frame, ()) in cases {
            let line = render_request(&frame).expect("renderable");
            let parsed = parse_request(&line)
                .unwrap_or_else(|e| panic!("server rejected {line:?}: {e}"));
            let via_frame = frame.clone().into_request().expect("frame converts");
            assert_eq!(parsed, via_frame, "text and binary disagree for {line:?}");
        }
        assert!(matches!(
            render_request(&RequestFrame::BatchAdd(Vec::new())),
            Err(ClientError::Unencodable(_))
        ));
    }

    #[test]
    fn reply_conversions_map_err_statuses_to_server_errors() {
        let err = Reply::Block { status: "ERR no such metric".to_owned(), data: Vec::new() };
        assert!(matches!(err.clone().block(), Err(ClientError::Server(msg)) if msg == "no such metric"));
        assert!(matches!(err.batch(), Err(ClientError::Server(_))));

        let ok = Reply::Block { status: "OK matches=2".to_owned(), data: Vec::new() };
        assert_eq!(ok.clone().block().expect("ok").0, "OK matches=2");
        assert!(matches!(ok.batch(), Err(ClientError::Protocol(_))));

        let batch = Reply::Batch(vec![BatchStatus::Ok { matches: 1 }]);
        assert!(matches!(batch.clone().block(), Err(ClientError::Protocol(_))));
        assert_eq!(batch.batch().expect("batch").len(), 1);

        let garbled = Reply::Block { status: "HELLO?".to_owned(), data: Vec::new() };
        assert!(matches!(garbled.block(), Err(ClientError::Protocol(_))));
    }

    #[test]
    fn io_kind_surfaces_the_transport_error_kind() {
        let refused = ClientError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionRefused));
        assert_eq!(refused.io_kind(), Some(std::io::ErrorKind::ConnectionRefused));
        assert_eq!(ClientError::Protocol("x".to_owned()).io_kind(), None);
        assert_eq!(ClientError::Server("x".to_owned()).io_kind(), None);
        assert_eq!(ClientError::Unencodable("x".to_owned()).io_kind(), None);
    }

    #[test]
    fn error_predicates_separate_server_refusals_from_transport() {
        let server = ClientError::Server("RESOLVE: k must be at least 1".to_owned());
        assert!(server.is_server());
        assert!(!server.is_transport());
        assert_eq!(server.server_message(), Some("RESOLVE: k must be at least 1"));

        let protocol = ClientError::Protocol("missing terminator".to_owned());
        assert!(protocol.is_transport());
        assert_eq!(protocol.server_message(), None);

        let io = ClientError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        assert!(io.is_transport());
        assert!(!io.is_server());
    }

    #[test]
    fn stats_response_parses_shard_and_cmd_rows() {
        let status = "OK records=7 sources=2 matches=9 shards=2 wal=1 wal_bytes=104 \
                      vocabulary=13 entity_maps=1 evictions=0 fuzzy_names=13 fuzzy_grams=48 \
                      fuzzy_postings=58 fuzzy_examined=21 fuzzy_pruned=6 errors=3";
        let data = vec![
            "SHARD 0 records=5 vocabulary=9 postings=11 wal=1 wal_bytes=104 \
             fuzzy_names=9 fuzzy_grams=31 fuzzy_postings=40"
                .to_owned(),
            "SHARD 1 records=2 vocabulary=4 postings=4 wal=0 wal_bytes=0 \
             fuzzy_names=4 fuzzy_grams=17 fuzzy_postings=18"
                .to_owned(),
            "CMD QUERY count=3 errors=0 mean_us=40 p50_us=32 p95_us=64 p99_us=64 max_us=71"
                .to_owned(),
        ];
        let report = parse_stats(status, &data).expect("well-formed");
        assert_eq!(report.records, 7);
        assert_eq!(report.shards, 2);
        assert_eq!(report.wal_bytes, 104);
        assert_eq!(report.errors, 3);
        assert_eq!(report.shard_rows.len(), 2);
        assert_eq!(report.shard_rows[1].shard, 1);
        assert_eq!(report.shard_rows[0].postings, 11);
        assert_eq!(report.fuzzy_names, 13);
        assert_eq!(report.fuzzy_pruned, 6);
        assert_eq!(report.shard_rows[0].fuzzy_grams, 31);
        assert_eq!(report.shard_rows[1].fuzzy_postings, 18);
        assert_eq!(report.commands.len(), 1);
        assert_eq!(report.commands[0].name, "QUERY");
        assert_eq!(report.commands[0].p95_us, 64);
        assert_eq!(report.commands[0].max_us, 71);
        assert!(parse_stats("OK records=7", &[]).is_err(), "missing fields rejected");
    }

    #[test]
    fn top_response_parses_ring_cmd_and_slow_rows() {
        let data = vec![
            "RING capacity=512 occupancy=3 captured=3 evicted=0 sampled=1 \
             last_slow_trace=00ab00cd00ef0011"
                .to_owned(),
            "CMD RESOLVE count=1 errors=0 mean_us=24 p50_us=24 p95_us=24 p99_us=24 max_us=24"
                .to_owned(),
            "SLOW trace=00ab00cd00ef0011 command=RESOLVE status=ok conn=3 total_ns=24500 spans=5"
                .to_owned(),
        ];
        let report = parse_top(&data).expect("well-formed");
        assert_eq!(report.ring.capacity, 512);
        assert_eq!(report.ring.occupancy, 3);
        assert_eq!(report.ring.sampled, 1);
        assert_eq!(report.ring.last_slow, 0x00ab_00cd_00ef_0011);
        assert_eq!(report.commands.len(), 1);
        assert_eq!(report.commands[0].name, "RESOLVE");
        assert_eq!(report.commands[0].max_us, 24);
        assert_eq!(report.slow.len(), 1);
        assert_eq!(report.slow[0].trace, 0x00ab_00cd_00ef_0011);
        assert!(report.slow[0].ok);
        assert_eq!(report.slow[0].spans, 5);
        assert!(parse_top(&["CMD QUERY count=1".to_owned()]).is_err(), "RING line required");
        assert!(parse_top(&["RANDOM row".to_owned()]).is_err(), "unknown rows rejected");
    }

    #[test]
    fn trace_response_parses_the_span_tree_with_shards_and_args() {
        let status = "OK trace=00ab00cd00ef0011 command=RESOLVE status=ok conn=3 \
                      total_ns=24500 spans=5 dropped=0 name_digest=3735928559 k=3";
        let data = vec![
            "SPAN name=accept depth=0 start_ns=0 dur_ns=0".to_owned(),
            "  SPAN name=shard depth=1 shard=2 start_ns=4000 dur_ns=10000 cands=4".to_owned(),
        ];
        let report = parse_trace(status, &data).expect("well-formed");
        assert_eq!(report.id, 0x00ab_00cd_00ef_0011);
        assert_eq!(report.command, "RESOLVE");
        assert!(report.ok);
        assert_eq!(report.conn, 3);
        assert_eq!(report.total_ns, 24500);
        assert_eq!(report.dropped_spans, 0);
        assert_eq!(
            report.args,
            vec![("name_digest".to_owned(), 3_735_928_559), ("k".to_owned(), 3)]
        );
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].name, "accept");
        assert_eq!(report.spans[0].shard, None);
        assert_eq!(report.spans[1].shard, Some(2));
        assert_eq!(report.spans[1].start_ns, 4000);
        assert_eq!(report.spans[1].args, vec![("cands".to_owned(), 4)]);
        assert!(
            parse_trace(status, &["HIT seed=1 entity=1".to_owned()]).is_err(),
            "non-SPAN data rejected"
        );
        assert!(
            parse_trace("OK trace=zz command=X status=ok conn=0 total_ns=0 spans=0 dropped=0", &[])
                .is_err(),
            "bad hex id rejected"
        );
    }

    #[test]
    fn history_response_parses_summary_slo_and_bucket_rows() {
        let status = "OK history metric=query tier=s window=5 now_epoch=9 buckets=2";
        let data = vec![
            "WINDOW count=4 mean_us=40 p50_us=24 p95_us=100 p99_us=100 min_us=10 max_us=100"
                .to_owned(),
            "SLO metric=query p=0.99 threshold_us=1000 window=60 short_window=10 state=ok \
             burn_long_pct=0 burn_short_pct=0"
                .to_owned(),
            "BUCKET epoch=7 count=3 mean_us=20 p50_us=24 max_us=30".to_owned(),
            "BUCKET epoch=8 count=1 mean_us=100 p50_us=100 max_us=100".to_owned(),
        ];
        let report = parse_history(status, &data).expect("well-formed");
        assert_eq!(report.metric, "query");
        assert_eq!(report.tier, "s");
        assert_eq!(report.window, 5);
        assert_eq!(report.now_epoch, 9);
        assert_eq!(report.summary.count, 4);
        assert_eq!(report.summary.p50_us, 24);
        assert_eq!(report.summary.min_us, 10);
        assert_eq!(report.summary.max_us, 100);
        assert_eq!(report.slo.len(), 1);
        assert_eq!(report.slo[0].metric, "query");
        assert!((report.slo[0].p - 0.99).abs() < 1e-12);
        assert_eq!(report.slo[0].threshold_us, 1000);
        assert_eq!(report.slo[0].short_window, 10);
        assert_eq!(report.slo[0].state, "ok");
        assert_eq!(report.buckets.len(), 2);
        assert_eq!(report.buckets[0].epoch, 7);
        assert_eq!(report.buckets[0].count, 3);
        assert_eq!(report.buckets[1].epoch, 8);
        assert_eq!(report.buckets[1].mean_us, 100);
        assert!(parse_history(status, &[]).is_err(), "WINDOW line required");
        assert!(
            parse_history(status, &["RANDOM row".to_owned()]).is_err(),
            "unknown rows rejected"
        );
    }
}
