//! Concurrent line-protocol server over a [`Store`].
//!
//! Architecture: the calling thread accepts connections and feeds them
//! through a crossbeam channel to a scoped worker pool. Workers share the
//! store behind a `parking_lot::RwLock` — queries and stats take the read
//! lock (and run concurrently), arrivals and snapshots take the write
//! lock. `SHUTDOWN` sets a flag and self-connects to unblock the
//! acceptor; once the pool drains, the WAL is flushed into a fresh
//! snapshot and the store is handed back to the caller.

use crate::error::StoreError;
use crate::protocol::{self, CommandStats, Request};
use crate::store::Store;
use parking_lot::RwLock;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use yv_obs::{Clock, Counter, Histogram, MonotonicClock};

/// Per-command metrics: success/error counters plus a lock-free latency
/// histogram (percentiles via [`Histogram::summary`]). Latency covers the
/// full command — lock acquisition included — so `STATS` reflects what
/// clients actually wait, not just the critical section.
#[derive(Debug, Default)]
pub struct CommandMetrics {
    pub ok: Counter,
    pub errors: Counter,
    pub latency: Histogram,
}

impl CommandMetrics {
    fn record(&self, ok: bool, dur_ns: u64) {
        if ok {
            self.ok.incr();
        } else {
            self.errors.incr();
        }
        self.latency.record_ns(dur_ns);
    }

    fn stats(&self, name: &'static str) -> CommandStats {
        let summary = self.latency.summary();
        CommandStats {
            name,
            count: self.ok.get(),
            errors: self.errors.get(),
            mean_us: summary.mean_us,
            p50_us: summary.p50_us,
            p95_us: summary.p95_us,
            p99_us: summary.p99_us,
        }
    }
}

/// Per-request metrics, split by command kind and shared across workers.
///
/// The earlier design kept one latency accumulator and reported a single
/// mean; a mean over a mixed QUERY/ADD/SNAPSHOT stream is dominated by
/// whichever command runs most and hides tail latency entirely. Each
/// command kind now gets its own counters and histogram.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub query: CommandMetrics,
    pub add: CommandMetrics,
    pub snapshot: CommandMetrics,
    /// Request lines that never parsed into a command.
    pub parse_errors: Counter,
}

impl ServerMetrics {
    /// Per-command stats rows in protocol order (QUERY, ADD, SNAPSHOT).
    #[must_use]
    pub fn command_stats(&self) -> [CommandStats; 3] {
        [
            self.query.stats("QUERY"),
            self.add.stats("ADD"),
            self.snapshot.stats("SNAPSHOT"),
        ]
    }

    /// Total failed requests (parse failures plus per-command errors).
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.parse_errors.get()
            + self.query.errors.get()
            + self.add.errors.get()
            + self.snapshot.errors.get()
    }
}

/// Serve the store on an already-bound listener until a client sends
/// `SHUTDOWN`. Returns the store after flushing the WAL into a fresh
/// snapshot, so the caller can keep using (or inspect) the final state.
pub fn serve(store: Store, listener: TcpListener, workers: usize) -> Result<Store, StoreError> {
    let addr = listener.local_addr()?;
    let lock = RwLock::new(store);
    let metrics = ServerMetrics::default();
    let clock = MonotonicClock::new();
    let shutdown = AtomicBool::new(false);
    let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();

    let result = crossbeam::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let lock = &lock;
            let metrics = &metrics;
            let clock = &clock;
            let shutdown = &shutdown;
            s.spawn(move |_| {
                for stream in rx.iter() {
                    handle_connection(stream, lock, metrics, clock, shutdown, addr);
                }
            });
        }
        drop(rx);
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // A send only fails if every worker panicked; stop accepting.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        drop(tx);
    });
    if result.is_err() {
        return Err(StoreError::Corrupt("a server worker panicked".into()));
    }

    let mut store = lock.into_inner();
    store.snapshot()?;
    Ok(store)
}

/// Serve one client connection: request lines in, response blocks out,
/// until the client closes or asks for shutdown.
fn handle_connection(
    stream: TcpStream,
    lock: &RwLock<Store>,
    metrics: &ServerMetrics,
    clock: &MonotonicClock,
    shutdown: &AtomicBool,
    addr: std::net::SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = clock.now_nanos();
        let response = match protocol::parse_request(&line) {
            Err(msg) => {
                metrics.parse_errors.incr();
                protocol::format_status(&format!("ERR {msg}"))
            }
            Ok(Request::Query(query)) => {
                let hits = lock.read().query(&query);
                metrics.query.record(true, clock.now_nanos().saturating_sub(started));
                protocol::format_hits(&hits)
            }
            Ok(Request::Add(record)) => {
                let outcome = lock.write().add_record(*record);
                metrics.add.record(outcome.is_ok(), clock.now_nanos().saturating_sub(started));
                match outcome {
                    Ok(matches) => {
                        protocol::format_status(&format!("OK matches={}", matches.len()))
                    }
                    Err(e) => protocol::format_status(&format!("ERR {e}")),
                }
            }
            Ok(Request::Stats) => {
                let stats = lock.read().stats();
                protocol::format_stats(
                    &format!(
                        "OK records={} sources={} matches={} wal={} vocabulary={} \
                         entity_maps={} evictions={} errors={}",
                        stats.records,
                        stats.sources,
                        stats.matches,
                        stats.wal_entries,
                        stats.vocabulary,
                        stats.entity_maps_cached,
                        stats.entity_map_evictions,
                        metrics.errors(),
                    ),
                    &metrics.command_stats(),
                )
            }
            Ok(Request::Snapshot) => {
                let outcome = lock.write().snapshot();
                metrics
                    .snapshot
                    .record(outcome.is_ok(), clock.now_nanos().saturating_sub(started));
                match outcome {
                    Ok(()) => protocol::format_status("OK snapshot"),
                    Err(e) => protocol::format_status(&format!("ERR {e}")),
                }
            }
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = writer.write_all(protocol::format_status("OK bye").as_bytes());
                // Unblock the acceptor so it observes the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
        };
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
    }
}
