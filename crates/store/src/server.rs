//! Concurrent line-protocol server over a [`Store`].
//!
//! Architecture: the calling thread accepts connections and feeds them
//! through a crossbeam channel to a scoped worker pool. Workers share the
//! store behind a `parking_lot::RwLock` — queries and stats take the read
//! lock (and run concurrently), arrivals and snapshots take the write
//! lock. `SHUTDOWN` sets a flag and self-connects to unblock the
//! acceptor; once the pool drains, the WAL is flushed into a fresh
//! snapshot and the store is handed back to the caller.

use crate::error::StoreError;
use crate::protocol::{self, Request};
use crate::store::Store;
use parking_lot::RwLock;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Per-request counters, shared across workers. Latency is accumulated in
/// nanoseconds and reported as a mean in `STATS`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub queries: AtomicU64,
    pub adds: AtomicU64,
    pub snapshots: AtomicU64,
    pub errors: AtomicU64,
    query_nanos: AtomicU64,
}

impl ServerMetrics {
    fn record_query(&self, started: Instant) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.query_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Mean query latency in microseconds (0 before the first query).
    #[must_use]
    pub fn avg_query_us(&self) -> u64 {
        let n = self.queries.load(Ordering::Relaxed);
        if n == 0 {
            return 0;
        }
        self.query_nanos.load(Ordering::Relaxed) / n / 1_000
    }
}

/// Serve the store on an already-bound listener until a client sends
/// `SHUTDOWN`. Returns the store after flushing the WAL into a fresh
/// snapshot, so the caller can keep using (or inspect) the final state.
pub fn serve(store: Store, listener: TcpListener, workers: usize) -> Result<Store, StoreError> {
    let addr = listener.local_addr()?;
    let lock = RwLock::new(store);
    let metrics = ServerMetrics::default();
    let shutdown = AtomicBool::new(false);
    let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();

    let result = crossbeam::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let lock = &lock;
            let metrics = &metrics;
            let shutdown = &shutdown;
            s.spawn(move |_| {
                for stream in rx.iter() {
                    handle_connection(stream, lock, metrics, shutdown, addr);
                }
            });
        }
        drop(rx);
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // A send only fails if every worker panicked; stop accepting.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        drop(tx);
    });
    if result.is_err() {
        return Err(StoreError::Corrupt("a server worker panicked".into()));
    }

    let mut store = lock.into_inner();
    store.snapshot()?;
    Ok(store)
}

/// Serve one client connection: request lines in, response blocks out,
/// until the client closes or asks for shutdown.
fn handle_connection(
    stream: TcpStream,
    lock: &RwLock<Store>,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
    addr: std::net::SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Err(msg) => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                protocol::format_status(&format!("ERR {msg}"))
            }
            Ok(Request::Query(query)) => {
                let started = Instant::now();
                let hits = lock.read().query(&query);
                metrics.record_query(started);
                protocol::format_hits(&hits)
            }
            Ok(Request::Add(record)) => match lock.write().add_record(*record) {
                Ok(matches) => {
                    metrics.adds.fetch_add(1, Ordering::Relaxed);
                    protocol::format_status(&format!("OK matches={}", matches.len()))
                }
                Err(e) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    protocol::format_status(&format!("ERR {e}"))
                }
            },
            Ok(Request::Stats) => {
                let stats = lock.read().stats();
                protocol::format_status(&format!(
                    "OK records={} sources={} matches={} wal={} vocabulary={} \
                     queries={} adds={} snapshots={} errors={} avg_query_us={}",
                    stats.records,
                    stats.sources,
                    stats.matches,
                    stats.wal_entries,
                    stats.vocabulary,
                    metrics.queries.load(Ordering::Relaxed),
                    metrics.adds.load(Ordering::Relaxed),
                    metrics.snapshots.load(Ordering::Relaxed),
                    metrics.errors.load(Ordering::Relaxed),
                    metrics.avg_query_us(),
                ))
            }
            Ok(Request::Snapshot) => match lock.write().snapshot() {
                Ok(()) => {
                    metrics.snapshots.fetch_add(1, Ordering::Relaxed);
                    protocol::format_status("OK snapshot")
                }
                Err(e) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    protocol::format_status(&format!("ERR {e}"))
                }
            },
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = writer.write_all(protocol::format_status("OK bye").as_bytes());
                // Unblock the acceptor so it observes the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
        };
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
    }
}
