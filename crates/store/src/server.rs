//! Concurrent line-protocol server over a [`Store`].
//!
//! Architecture: the calling thread accepts connections and feeds them
//! through a crossbeam channel to a scoped worker pool. Workers share
//! the store as a plain `&Store` — the store's own per-shard and
//! resolver locks (see [`Store`]) replace the whole-store `RwLock` an
//! earlier design used, so `ADD`s routed to distinct shards overlap
//! their WAL fsyncs instead of serializing. `SHUTDOWN` sets a flag and
//! self-connects to unblock the acceptor(s); once the pool drains, the
//! WALs are flushed into a fresh snapshot and the store is handed back
//! to the caller.
//!
//! Configuration is the [`ServeOptions`] builder:
//!
//! ```no_run
//! # use yv_store::{ServeOptions, Store};
//! # use std::net::TcpListener;
//! # let store = Store::open(std::path::Path::new("people.store"))?;
//! let listener = TcpListener::bind("127.0.0.1:7878")?;
//! let store = ServeOptions::new(store)
//!     .workers(8)
//!     .slow_us(5_000)
//!     .serve(listener)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Observability: every command kind registers its counters and latency
//! histogram in a [`MetricsRegistry`], scraped two ways — the `METRICS`
//! protocol command, and (via [`ServeOptions::metrics_listener`] or
//! [`ServeOptions::metrics_addr`]) a sidecar TCP listener answering
//! `GET /metrics` in plain HTTP/1.1 with the Prometheus text exposition,
//! so a stock Prometheus scraper needs no protocol client. Per-shard
//! gauges (`yv_shard_<i>_records` / `_postings` / `_wal_bytes`) expose
//! the shard balance. Requests slower than [`ServeOptions::slow_us`] are
//! logged as one JSON line each (see [`SlowLog`]), into a size-capped,
//! rotating file when [`ServeOptions::slow_log_file`] is set.
//!
//! Windowed telemetry: every command's latency histogram additionally
//! feeds a [`WindowedHistogram`] (60 × 1s and 60 × 1m rings of snapshot
//! deltas). A tick thread rotates the windows from the injected clock,
//! persists each closed bucket to `telemetry.yvt` (see
//! [`crate::telemetry`]) when [`ServeOptions::telemetry_dir`] is set, and
//! re-evaluates the [`SloRule`]s from [`ServeOptions::slo`], publishing
//! their burn-rate state as `yv_slo_*` gauges. The `HISTORY` command
//! serves the recent-window rollups; rotation is *lazy and idempotent*,
//! so `HISTORY`/`METRICS` stay correct under a [`yv_obs::ManualClock`]
//! where the ticker never observes time moving.

use crate::error::StoreError;
use crate::frame;
use crate::protocol::{self, CommandStats, Request};
use crate::store::Store;
use crate::telemetry::{self, TelemetryLog};
use yv_records::Record;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use yv_obs::{
    Clock, Counter, Histogram, MetricsRegistry, MonotonicClock, SloRule, SloStatus, Tier,
    TraceCtx, TraceSink, WindowView, WindowedCounter, WindowedHistogram,
};

/// Default capture-ring capacity (power of two; ~2 KiB per slot).
pub const DEFAULT_TRACE_CAPACITY: usize = 512;

/// Default seed for the deterministic trace-id generator.
pub const DEFAULT_TRACE_SEED: u64 = 0x7976_5f74_7261_6365; // "yv_trace"

/// Default size cap for the slow-request JSONL log before it rotates.
pub const DEFAULT_SLOW_LOG_CAP_BYTES: u64 = 8 * 1024 * 1024;

/// Interval of the window-rotation tick thread (real time).
const TICK_MILLIS: u64 = 250;

/// Per-command metrics: success/error counters plus a lock-free latency
/// histogram (percentiles via [`Histogram::summary`]). Latency covers the
/// full command — lock acquisition included — so `STATS` reflects what
/// clients actually wait, not just the critical section. The handles are
/// shared with the server's [`MetricsRegistry`], which renders them as
/// `yv_cmd_{kind}_ok_total` / `yv_cmd_{kind}_errors_total` /
/// `yv_cmd_{kind}_latency_us` in the Prometheus exposition.
#[derive(Debug)]
pub struct CommandMetrics {
    pub ok: Arc<Counter>,
    pub errors: Arc<Counter>,
    pub latency: Arc<Histogram>,
}

impl CommandMetrics {
    /// Register one command's metric set under `yv_cmd_{kind}_*`.
    fn register(registry: &MetricsRegistry, kind: &str, display: &str) -> CommandMetrics {
        CommandMetrics {
            ok: registry.counter(
                &format!("yv_cmd_{kind}_ok_total"),
                &format!("{display} requests answered successfully"),
            ),
            errors: registry.counter(
                &format!("yv_cmd_{kind}_errors_total"),
                &format!("{display} requests answered with an error"),
            ),
            latency: registry.histogram(
                &format!("yv_cmd_{kind}_latency_us"),
                &format!("{display} request latency (power-of-two microsecond buckets)"),
            ),
        }
    }

    fn record(&self, ok: bool, dur_ns: u64) {
        if ok {
            self.ok.incr();
        } else {
            self.errors.incr();
        }
        self.latency.record_ns(dur_ns);
    }

    /// One `CMD` stats row. Count, mean and percentiles all derive from a
    /// single histogram snapshot, so the row is internally consistent even
    /// while other workers keep recording; `count` is therefore the
    /// measured-request total (successes and errors alike).
    fn stats(&self, name: &'static str) -> CommandStats {
        let summary = self.latency.snapshot().summary();
        CommandStats {
            name,
            count: summary.count,
            errors: self.errors.get(),
            mean_us: summary.mean_us,
            p50_us: summary.p50_us,
            p95_us: summary.p95_us,
            p99_us: summary.p99_us,
            max_us: summary.max_us,
        }
    }
}

/// Per-request metrics, split by command kind and shared across workers.
///
/// The earlier design kept one latency accumulator and reported a single
/// mean; a mean over a mixed QUERY/ADD/SNAPSHOT stream is dominated by
/// whichever command runs most and hides tail latency entirely. Each
/// command kind now gets its own counters and histogram, all registered
/// in one [`MetricsRegistry`] so `METRICS` and the scrape sidecar see
/// exactly what `STATS` reports.
#[derive(Debug)]
pub struct ServerMetrics {
    pub registry: Arc<MetricsRegistry>,
    pub query: CommandMetrics,
    pub resolve: CommandMetrics,
    pub add: CommandMetrics,
    pub stats: CommandMetrics,
    pub metrics: CommandMetrics,
    pub top: CommandMetrics,
    pub trace: CommandMetrics,
    pub history: CommandMetrics,
    pub snapshot: CommandMetrics,
    pub shutdown: CommandMetrics,
    /// Request lines that never parsed into a command.
    pub parse_errors: Arc<Counter>,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new(Arc::new(MetricsRegistry::new()))
    }
}

impl ServerMetrics {
    /// Register every per-command metric set in `registry`.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> ServerMetrics {
        let cmd = |kind, display| CommandMetrics::register(&registry, kind, display);
        ServerMetrics {
            query: cmd("query", "QUERY"),
            resolve: cmd("resolve", "RESOLVE"),
            add: cmd("add", "ADD"),
            stats: cmd("stats", "STATS"),
            metrics: cmd("metrics", "METRICS"),
            top: cmd("top", "TOP"),
            trace: cmd("trace", "TRACE"),
            history: cmd("history", "HISTORY"),
            snapshot: cmd("snapshot", "SNAPSHOT"),
            shutdown: cmd("shutdown", "SHUTDOWN"),
            parse_errors: registry.counter(
                "yv_cmd_parse_errors_total",
                "Request lines that never parsed into a command",
            ),
            registry,
        }
    }

    /// Per-command stats rows in protocol order.
    #[must_use]
    pub fn command_stats(&self) -> [CommandStats; 10] {
        [
            self.query.stats("QUERY"),
            self.resolve.stats("RESOLVE"),
            self.add.stats("ADD"),
            self.stats.stats("STATS"),
            self.metrics.stats("METRICS"),
            self.top.stats("TOP"),
            self.trace.stats("TRACE"),
            self.history.stats("HISTORY"),
            self.snapshot.stats("SNAPSHOT"),
            self.shutdown.stats("SHUTDOWN"),
        ]
    }

    /// Total failed requests (parse failures plus per-command errors).
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.parse_errors.get()
            + self.query.errors.get()
            + self.resolve.errors.get()
            + self.add.errors.get()
            + self.stats.errors.get()
            + self.metrics.errors.get()
            + self.top.errors.get()
            + self.trace.errors.get()
            + self.history.errors.get()
            + self.snapshot.errors.get()
            + self.shutdown.errors.get()
    }
}

/// Structured slow-request logging: every request at or above the
/// threshold emits one JSON line (connection id, canonical command name,
/// FNV-1a 64 digest of the argument text, latency, trace id). The command
/// name is a static protocol string and the digest and trace id are hex,
/// so no JSON escaping is needed and raw client input — which may hold
/// victims' names — never reaches the log. The trace id is the same one
/// the client saw in its `trace=` token, so a logged slow request can be
/// looked up with `TRACE <id>` while it is still in the ring.
///
/// The log is **size-capped**: once `cap_bytes` of lines have been
/// written the sink rotates — a file sink renames itself to `<path>.1`
/// (replacing the previous generation, so disk usage is bounded at
/// roughly `2 × cap_bytes`) and reopens fresh; a stream sink (stderr)
/// cannot be renamed, so it emits a rotation marker line and resets its
/// byte count. Rotations are counted and surfaced as the
/// `yv_slow_log_rotations` gauge.
struct SlowLog {
    threshold_ns: u64,
    cap_bytes: u64,
    rotations: AtomicU64,
    sink: parking_lot::Mutex<SlowSink>,
}

/// Where slow-request lines go, with the bytes written since the last
/// rotation tracked alongside the handle it guards.
enum SlowSink {
    /// An opaque stream (stderr or a test buffer): rotation is logical.
    Stream { out: Box<dyn Write + Send>, written: u64 },
    /// A file we own: rotation renames it aside and reopens fresh.
    File { path: PathBuf, out: std::fs::File, written: u64 },
}

impl SlowLog {
    fn stream(threshold_us: u64, out: Box<dyn Write + Send>, cap_bytes: u64) -> SlowLog {
        SlowLog {
            threshold_ns: threshold_us.saturating_mul(1_000),
            cap_bytes: cap_bytes.max(1),
            rotations: AtomicU64::new(0),
            sink: parking_lot::Mutex::new(SlowSink::Stream { out, written: 0 }),
        }
    }

    fn file(threshold_us: u64, path: &std::path::Path, cap_bytes: u64) -> Result<SlowLog, StoreError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let out = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let written = out.metadata()?.len();
        Ok(SlowLog {
            threshold_ns: threshold_us.saturating_mul(1_000),
            cap_bytes: cap_bytes.max(1),
            rotations: AtomicU64::new(0),
            sink: parking_lot::Mutex::new(SlowSink::File { path: path.to_path_buf(), out, written }),
        })
    }

    /// Lifetime rotations performed by this log.
    fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    fn log(&self, conn: u64, command: &'static str, args_digest: u64, dur_ns: u64, trace: u64) {
        let line = format!(
            "{{\"slow_request\":true,\"conn\":{conn},\"command\":\"{command}\",\
             \"args_digest\":\"{args_digest:016x}\",\"latency_us\":{},\
             \"trace\":\"{trace:016x}\"}}\n",
            dur_ns / 1_000
        );
        let mut sink = self.sink.lock();
        match &mut *sink {
            SlowSink::Stream { out, written } => {
                if *written + line.len() as u64 > self.cap_bytes {
                    let n = self.rotations.fetch_add(1, Ordering::Relaxed) + 1;
                    // audit:allow(L1) the line is formatted before acquisition; the lock exists to serialize exactly this rotate-check+write+flush sequence into the JSONL sink
                    let _ = out.write_all(
                        format!("{{\"slow_log_rotated\":true,\"generation\":{n}}}\n").as_bytes(),
                    );
                    *written = 0;
                }
                *written += line.len() as u64;
                let _ = out.write_all(line.as_bytes());
                let _ = out.flush();
            }
            SlowSink::File { path, out, written } => {
                if *written + line.len() as u64 > self.cap_bytes {
                    let _ = out.flush();
                    let mut aside = path.clone().into_os_string();
                    aside.push(".1");
                    if std::fs::rename(path.as_path(), PathBuf::from(aside)).is_ok() {
                        if let Ok(fresh) = std::fs::OpenOptions::new()
                            .create(true)
                            .append(true)
                            .open(path.as_path())
                        {
                            *out = fresh;
                            *written = 0;
                            self.rotations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                *written += line.len() as u64;
                let _ = out.write_all(line.as_bytes());
                let _ = out.flush();
            }
        }
    }
}

/// Builder-style server configuration, owning the [`Store`] it will
/// serve. Construct with [`ServeOptions::new`], chain the knobs, finish
/// with [`ServeOptions::serve`]:
///
/// ```no_run
/// # use yv_store::{ServeOptions, Store};
/// # use std::net::TcpListener;
/// # let store = Store::open(std::path::Path::new("people.store"))?;
/// # let listener = TcpListener::bind("127.0.0.1:0")?;
/// let store = ServeOptions::new(store).workers(4).serve(listener)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ServeOptions {
    store: Option<Store>,
    workers: usize,
    slow_us: Option<u64>,
    metrics_listener: Option<TcpListener>,
    metrics_addr: Option<SocketAddr>,
    slow_log: Option<Box<dyn Write + Send>>,
    slow_log_path: Option<PathBuf>,
    slow_log_cap: u64,
    trace_capacity: usize,
    trace_capture: bool,
    trace_seed: u64,
    clock: Option<Arc<dyn Clock>>,
    telemetry_dir: Option<PathBuf>,
    telemetry_cap: u64,
    slo: Vec<SloRule>,
}

impl ServeOptions {
    /// Start configuring a server over `store`, with the defaults: 4
    /// workers, no slow log, no scrape sidecar, a
    /// [`DEFAULT_TRACE_CAPACITY`]-slot trace ring with capture on.
    #[must_use]
    pub fn new(store: Store) -> ServeOptions {
        ServeOptions {
            store: Some(store),
            workers: 4,
            slow_us: None,
            metrics_listener: None,
            metrics_addr: None,
            slow_log: None,
            slow_log_path: None,
            slow_log_cap: DEFAULT_SLOW_LOG_CAP_BYTES,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            trace_capture: true,
            trace_seed: DEFAULT_TRACE_SEED,
            clock: None,
            telemetry_dir: None,
            telemetry_cap: telemetry::DEFAULT_CAP_BYTES,
            slo: Vec::new(),
        }
    }

    /// Worker threads handling protocol connections (minimum 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> ServeOptions {
        self.workers = workers;
        self
    }

    /// Log requests at or above this latency (microseconds) as JSON
    /// lines (to stderr unless [`ServeOptions::slow_log`] overrides).
    #[must_use]
    pub fn slow_us(mut self, slow_us: u64) -> ServeOptions {
        self.slow_us = Some(slow_us);
        self
    }

    /// Bind the `GET /metrics` scrape sidecar to `addr` when serving
    /// starts. For port-0 flows where the caller needs the bound port up
    /// front, bind it yourself and use
    /// [`ServeOptions::metrics_listener`] (which takes precedence).
    #[must_use]
    pub fn metrics_addr(mut self, addr: SocketAddr) -> ServeOptions {
        self.metrics_addr = Some(addr);
        self
    }

    /// Serve the `GET /metrics` scrape sidecar on an already-bound
    /// listener.
    #[must_use]
    pub fn metrics_listener(mut self, listener: TcpListener) -> ServeOptions {
        self.metrics_listener = Some(listener);
        self
    }

    /// Redirect the slow-request log away from stderr. Ignored unless
    /// [`ServeOptions::slow_us`] is set (and superseded by
    /// [`ServeOptions::slow_log_file`]).
    #[must_use]
    pub fn slow_log(mut self, sink: Box<dyn Write + Send>) -> ServeOptions {
        self.slow_log = Some(sink);
        self
    }

    /// Write the slow-request log to `path`, size-capped: at
    /// [`ServeOptions::slow_log_cap_bytes`] the file rotates to
    /// `<path>.1` (one previous generation is kept). Ignored unless
    /// [`ServeOptions::slow_us`] is set.
    #[must_use]
    pub fn slow_log_file(mut self, path: PathBuf) -> ServeOptions {
        self.slow_log_path = Some(path);
        self
    }

    /// Size cap (bytes) the slow-request log rotates at. Defaults to
    /// [`DEFAULT_SLOW_LOG_CAP_BYTES`].
    #[must_use]
    pub fn slow_log_cap_bytes(mut self, cap: u64) -> ServeOptions {
        self.slow_log_cap = cap;
        self
    }

    /// Persist closed telemetry buckets to `dir/telemetry.yvt` and
    /// replay any existing history there on startup, so `HISTORY`
    /// windows survive a restart.
    #[must_use]
    pub fn telemetry_dir(mut self, dir: PathBuf) -> ServeOptions {
        self.telemetry_dir = Some(dir);
        self
    }

    /// Size cap (bytes) per telemetry segment before it rotates to
    /// `telemetry.old.yvt`. Defaults to
    /// [`crate::telemetry::DEFAULT_CAP_BYTES`].
    #[must_use]
    pub fn telemetry_cap_bytes(mut self, cap: u64) -> ServeOptions {
        self.telemetry_cap = cap;
        self
    }

    /// Watch latency SLOs: each rule's multi-window burn rate is
    /// re-evaluated on the server tick (and on every `METRICS` scrape
    /// and `HISTORY` request) and published as `yv_slo_<metric>_state`
    /// / `_burn_long_pct` / `_burn_short_pct` gauges.
    #[must_use]
    pub fn slo(mut self, rules: Vec<SloRule>) -> ServeOptions {
        self.slo = rules;
        self
    }

    /// Capture-ring capacity in traces (rounded up to a power of two).
    /// Memory is bounded at roughly `capacity × 2 KiB` plus a quarter
    /// of that for the tail-sampling reservoir.
    #[must_use]
    pub fn trace_ring(mut self, capacity: usize) -> ServeOptions {
        self.trace_capacity = capacity;
        self
    }

    /// Enable or disable retaining completed traces. When disabled,
    /// requests still carry `trace=` ids on the wire, but `TOP`/`TRACE`
    /// see an empty ring — the configuration the `trace_overhead` bench
    /// compares against.
    #[must_use]
    pub fn trace_capture(mut self, capture: bool) -> ServeOptions {
        self.trace_capture = capture;
        self
    }

    /// Seed for the deterministic trace-id generator. Two servers with
    /// the same seed issue the same id sequence — what the restart and
    /// byte-identity tests rely on.
    #[must_use]
    pub fn trace_seed(mut self, seed: u64) -> ServeOptions {
        self.trace_seed = seed;
        self
    }

    /// Inject the clock requests are timed and traced with. Defaults to
    /// a fresh [`MonotonicClock`]; tests inject a
    /// [`yv_obs::ManualClock`] for deterministic span trees.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> ServeOptions {
        self.clock = Some(clock);
        self
    }

    /// Serve the store on an already-bound listener until a client sends
    /// `SHUTDOWN`. Returns the store after flushing the WALs into a
    /// fresh snapshot, so the caller can keep using (or inspect) the
    /// final state.
    pub fn serve(self, listener: TcpListener) -> Result<Store, StoreError> {
        let ServeOptions {
            store,
            workers,
            slow_us,
            metrics_listener,
            metrics_addr,
            slow_log,
            slow_log_path,
            slow_log_cap,
            trace_capacity,
            trace_capture,
            trace_seed,
            clock,
            telemetry_dir,
            telemetry_cap,
            slo,
        } = self;
        let Some(store) = store else {
            return Err(StoreError::Corrupt("ServeOptions has no store".into()));
        };
        let metrics_listener = match (metrics_listener, metrics_addr) {
            (Some(l), _) => Some(l),
            (None, Some(addr)) => Some(TcpListener::bind(addr)?),
            (None, None) => None,
        };
        // The tail sampler reuses the slow-log threshold; without one,
        // only ERR-status traces are tail-retained.
        let sampler_slow_ns = slow_us.map_or(u64::MAX, |us| us.saturating_mul(1_000));
        let sink = TraceSink::new(trace_capacity, sampler_slow_ns, trace_seed, trace_capture);
        let clock = clock.unwrap_or_else(|| Arc::new(MonotonicClock::new()));
        let slow = match (slow_us, slow_log_path) {
            (Some(us), Some(path)) => Some(SlowLog::file(us, &path, slow_log_cap)?),
            (Some(us), None) => Some(SlowLog::stream(
                us,
                slow_log.unwrap_or_else(|| Box::new(std::io::stderr())),
                slow_log_cap,
            )),
            (None, _) => None,
        };
        let telemetry_cfg = TelemetryConfig { dir: telemetry_dir, cap_bytes: telemetry_cap, slo };
        serve_inner(store, listener, workers, slow, metrics_listener, sink, clock, telemetry_cfg)
    }
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("workers", &self.workers)
            .field("slow_us", &self.slow_us)
            .field("metrics_listener", &self.metrics_listener)
            .field("metrics_addr", &self.metrics_addr)
            .field("slow_log", &self.slow_log.as_ref().map(|_| "<sink>"))
            .field("slow_log_path", &self.slow_log_path)
            .field("slow_log_cap", &self.slow_log_cap)
            .field("trace_capacity", &self.trace_capacity)
            .field("trace_capture", &self.trace_capture)
            .field("trace_seed", &self.trace_seed)
            .field("clock", &self.clock.as_ref().map(|_| "<injected>"))
            .field("telemetry_dir", &self.telemetry_dir)
            .field("telemetry_cap", &self.telemetry_cap)
            .field("slo", &self.slo)
            .finish_non_exhaustive()
    }
}

/// Windowed-telemetry configuration carried from [`ServeOptions::serve`]
/// into the serving loop.
struct TelemetryConfig {
    dir: Option<PathBuf>,
    cap_bytes: u64,
    slo: Vec<SloRule>,
}

/// The server's windowed-telemetry runtime: one [`WindowedHistogram`]
/// per command kind (reading the same latency histograms `STATS`
/// reports), a windowed parse-error counter, the configured SLO rules,
/// and the optional on-disk history log.
///
/// Rotation is centralized here so every closed bucket is persisted
/// exactly once: all read paths (`HISTORY`, `METRICS`, the SLO
/// evaluator, the tick thread) funnel through
/// [`Telemetry::rotate_and_persist`] before touching a window.
struct Telemetry {
    windows: Vec<(&'static str, WindowedHistogram)>,
    parse_errors_window: WindowedCounter,
    slo: Vec<SloRule>,
    log: Option<parking_lot::Mutex<TelemetryLog>>,
}

impl Telemetry {
    /// Build the per-command windows, open the history log (when a dir
    /// is configured) and replay any persisted buckets into the rings.
    fn new(
        metrics: &ServerMetrics,
        clock: &Arc<dyn Clock>,
        cfg: TelemetryConfig,
    ) -> Result<Telemetry, StoreError> {
        let kinds: [(&'static str, &CommandMetrics); 10] = [
            ("query", &metrics.query),
            ("resolve", &metrics.resolve),
            ("add", &metrics.add),
            ("stats", &metrics.stats),
            ("metrics", &metrics.metrics),
            ("top", &metrics.top),
            ("trace", &metrics.trace),
            ("history", &metrics.history),
            ("snapshot", &metrics.snapshot),
            ("shutdown", &metrics.shutdown),
        ];
        let windows: Vec<(&'static str, WindowedHistogram)> = kinds
            .into_iter()
            .map(|(kind, m)| {
                (kind, WindowedHistogram::new(Arc::clone(&m.latency), Arc::clone(clock)))
            })
            .collect();
        let parse_errors_window =
            WindowedCounter::new(Arc::clone(&metrics.parse_errors), Arc::clone(clock));
        let log = match cfg.dir {
            Some(dir) => {
                for (metric, bucket) in telemetry::replay(&dir)? {
                    if let Some((_, w)) = windows.iter().find(|(kind, _)| *kind == metric) {
                        w.restore(bucket);
                    }
                }
                Some(parking_lot::Mutex::new(TelemetryLog::open(&dir, cfg.cap_bytes)?))
            }
            None => None,
        };
        Ok(Telemetry { windows, parse_errors_window, slo: cfg.slo, log })
    }

    fn window_for(&self, metric: &str) -> Option<&WindowedHistogram> {
        self.windows.iter().find(|(kind, _)| *kind == metric).map(|(_, w)| w)
    }

    /// Rotate every window, appending each newly closed non-empty bucket
    /// to the history log. Idempotent: a bucket closes (and is persisted)
    /// exactly once no matter how many paths call this concurrently.
    fn rotate_and_persist(&self) {
        for (kind, w) in &self.windows {
            let closed = w.rotate();
            if closed.is_empty() {
                continue;
            }
            if let Some(log) = &self.log {
                let mut log = log.lock();
                for bucket in &closed {
                    // Telemetry is best-effort history: an IO error here
                    // must not take down request serving.
                    // audit:allow(L1) frames are pre-encoded scalars; the lock serializes append order into the segment
                    let _ = log.append(kind, bucket);
                }
            }
        }
        self.parse_errors_window.rotate();
    }

    /// The windowed view `HISTORY` serves, or `None` for a metric the
    /// server does not track.
    fn view(&self, metric: &str, tier: Tier, window: usize) -> Option<WindowView> {
        self.rotate_and_persist();
        self.window_for(metric).map(|w| w.window(tier, window))
    }

    /// Evaluate every SLO rule watching `metric` (for `HISTORY` rows).
    fn slo_for(&self, metric: &str) -> Vec<(SloRule, SloStatus)> {
        self.slo
            .iter()
            .filter(|rule| rule.metric == metric)
            .filter_map(|rule| self.evaluate(rule).map(|status| (rule.clone(), status)))
            .collect()
    }

    fn evaluate(&self, rule: &SloRule) -> Option<SloStatus> {
        let w = self.window_for(&rule.metric)?;
        let long = w.window(Tier::Seconds, rule.window).merged;
        let short = w.window(Tier::Seconds, rule.short_window()).merged;
        Some(rule.evaluate(&long, &short))
    }

    /// Re-evaluate every rule and publish the `yv_slo_*` gauges. With
    /// several rules on one metric the last rule wins the gauge names.
    fn publish_slo(&self, reg: &MetricsRegistry) {
        self.rotate_and_persist();
        for rule in &self.slo {
            let Some(status) = self.evaluate(rule) else { continue };
            let m = &rule.metric;
            reg.set_gauge(
                &format!("yv_slo_{m}_state"),
                "SLO burn-rate state (0 ok, 1 warning, 2 firing)",
                status.state.as_u64(),
            );
            reg.set_gauge(
                &format!("yv_slo_{m}_burn_long_pct"),
                "Long-window SLO burn rate (percent of error budget consumed)",
                status.burn_long_pct,
            );
            reg.set_gauge(
                &format!("yv_slo_{m}_burn_short_pct"),
                "Short-window SLO burn rate (percent of error budget consumed)",
                status.burn_short_pct,
            );
            reg.set_gauge(
                &format!("yv_slo_{m}_threshold_us"),
                "SLO latency threshold (microseconds)",
                rule.threshold_us,
            );
        }
    }
}

/// Shared per-connection context, bundled so worker closures borrow one
/// struct instead of six loose references.
struct ServerCtx<'a> {
    store: &'a Store,
    metrics: &'a ServerMetrics,
    clock: Arc<dyn Clock>,
    shutdown: &'a AtomicBool,
    /// The protocol listener's address (self-connect target on shutdown).
    addr: SocketAddr,
    /// The scrape sidecar's address, when one is running.
    metrics_addr: Option<SocketAddr>,
    slow: Option<&'a SlowLog>,
    /// The trace capture ring + tail sampler + id generator.
    sink: &'a TraceSink,
    /// Trace id of the most recent tail-sampled request (the
    /// `yv_trace_last_slow_id` gauge).
    last_slow: &'a AtomicU64,
    /// Windowed rollups, SLO rules and the telemetry history log.
    telemetry: &'a Telemetry,
}

#[allow(clippy::too_many_arguments)]
fn serve_inner(
    store: Store,
    listener: TcpListener,
    workers: usize,
    slow: Option<SlowLog>,
    metrics_listener: Option<TcpListener>,
    sink: TraceSink,
    clock: Arc<dyn Clock>,
    telemetry_cfg: TelemetryConfig,
) -> Result<Store, StoreError> {
    let addr = listener.local_addr()?;
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    let metrics = ServerMetrics::default();
    let telemetry = Telemetry::new(&metrics, &clock, telemetry_cfg)?;
    let shutdown = AtomicBool::new(false);
    let conn_ids = AtomicU64::new(0);
    let last_slow = AtomicU64::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(u64, TcpStream)>();
    let ctx = ServerCtx {
        store: &store,
        metrics: &metrics,
        clock,
        shutdown: &shutdown,
        addr,
        metrics_addr,
        slow: slow.as_ref(),
        sink: &sink,
        last_slow: &last_slow,
        telemetry: &telemetry,
    };

    let result = crossbeam::thread::scope(|s| {
        let ctx = &ctx;
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            s.spawn(move |_| {
                for (conn, stream) in rx.iter() {
                    handle_connection(stream, conn, ctx);
                }
            });
        }
        drop(rx);
        // The telemetry tick: rotate windows, persist closed buckets and
        // refresh the SLO gauges every TICK_MILLIS of *real* time. Under
        // a ManualClock no epoch ever passes, so the tick is a no-op and
        // rotation happens lazily on the HISTORY/METRICS read paths —
        // which keeps deterministic tests byte-identical regardless of
        // ticker scheduling.
        s.spawn(move |_| {
            while !ctx.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(TICK_MILLIS));
                ctx.telemetry.rotate_and_persist();
                ctx.telemetry.publish_slo(&ctx.metrics.registry);
            }
        });
        if let Some(mlistener) = &metrics_listener {
            s.spawn(move |_| {
                for stream in mlistener.incoming() {
                    if ctx.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        serve_scrape(stream, ctx);
                    }
                }
            });
        }
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // Request/response protocol: without TCP_NODELAY the
                // final partial segment of a multi-segment reply (or a
                // large BATCH_ADD frame) sits in Nagle's buffer waiting
                // for the peer's delayed ACK — tens of milliseconds per
                // round trip on an otherwise idle loopback.
                let _ = stream.set_nodelay(true);
                let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
                // A send only fails if every worker panicked; stop accepting.
                if tx.send((conn, stream)).is_err() {
                    break;
                }
            }
        }
        // However the accept loop ended, make sure the tick thread (which
        // only watches the flag) can exit too.
        shutdown.store(true, Ordering::SeqCst);
        drop(tx);
    });
    if result.is_err() {
        return Err(StoreError::Corrupt("a server worker panicked".into()));
    }

    store.snapshot()?;
    Ok(store)
}

/// Refresh the store, shard and allocator gauges, then render the whole
/// registry as Prometheus text exposition (format 0.0.4). Gauges are
/// republished on every scrape, so the exposition always reflects the
/// current store.
fn render_metrics(ctx: &ServerCtx<'_>) -> String {
    let stats = ctx.store.stats();
    let reg = &ctx.metrics.registry;
    reg.set_gauge("yv_store_records", "Records resident in the store", stats.records as u64);
    reg.set_gauge("yv_store_sources", "Sources registered", stats.sources as u64);
    reg.set_gauge("yv_store_matches", "Ranked matches resident", stats.matches as u64);
    reg.set_gauge(
        "yv_store_wal_entries",
        "Arrivals pending in the WALs since the last snapshot",
        stats.wal_entries as u64,
    );
    reg.set_gauge(
        "yv_store_wal_bytes",
        "On-disk WAL size in bytes, all shards",
        stats.wal_bytes,
    );
    reg.set_gauge(
        "yv_store_vocabulary",
        "Distinct lowercased names in the query indexes",
        stats.vocabulary as u64,
    );
    reg.set_gauge(
        "yv_store_postings",
        "Total posting entries in the query indexes",
        stats.postings as u64,
    );
    reg.set_gauge("yv_store_shards", "Shard count (fixed at create)", stats.shards.len() as u64);
    reg.set_gauge(
        "yv_store_fuzzy_names",
        "Distinct lowercased names in the fuzzy q-gram indexes",
        stats.fuzzy_names as u64,
    );
    reg.set_gauge(
        "yv_store_fuzzy_grams",
        "Distinct q-grams in the fuzzy indexes",
        stats.fuzzy_grams as u64,
    );
    reg.set_gauge(
        "yv_store_fuzzy_postings",
        "Gram-to-name posting entries in the fuzzy indexes",
        stats.fuzzy_postings as u64,
    );
    reg.counter_value(
        "yv_store_fuzzy_examined_total",
        "Lifetime candidate names examined by RESOLVE",
    )
    .set(stats.fuzzy_examined);
    reg.counter_value(
        "yv_store_fuzzy_pruned_total",
        "Lifetime candidate names pruned by the RESOLVE length and count filters",
    )
    .set(stats.fuzzy_pruned);
    // The registry has no label support (it renders plain name→value
    // pairs deterministically), so per-shard gauges mangle the shard
    // index into the metric name.
    for s in &stats.shards {
        let i = s.shard;
        reg.set_gauge(
            &format!("yv_shard_{i}_records"),
            "Records routed to this shard",
            s.records as u64,
        );
        reg.set_gauge(
            &format!("yv_shard_{i}_postings"),
            "Posting entries in this shard's query index",
            s.postings as u64,
        );
        reg.set_gauge(
            &format!("yv_shard_{i}_wal_bytes"),
            "On-disk size of this shard's WAL in bytes",
            s.wal_bytes,
        );
    }
    reg.set_gauge(
        "yv_store_entity_maps_cached",
        "Entity maps currently memoized",
        stats.entity_maps_cached as u64,
    );
    reg.counter_value(
        "yv_store_entity_map_evictions_total",
        "Lifetime LRU evictions from the entity-map cache",
    )
    .set(stats.entity_map_evictions);

    let t = ctx.sink.stats();
    reg.set_gauge("yv_trace_ring_capacity", "Trace capture ring slot count", t.capacity);
    reg.set_gauge(
        "yv_trace_ring_occupancy",
        "Completed traces currently resident in the capture ring",
        t.occupancy,
    );
    reg.counter_value(
        "yv_trace_ring_captured_total",
        "Lifetime traces captured into the ring",
    )
    .set(t.captured);
    reg.counter_value(
        "yv_trace_ring_evicted_total",
        "Lifetime traces displaced by drop-oldest overwrites",
    )
    .set(t.evicted);
    reg.counter_value(
        "yv_trace_ring_sampled_total",
        "Lifetime traces retained by the tail sampler (slow or ERR)",
    )
    .set(t.sampled);
    reg.set_gauge(
        "yv_trace_last_slow_id",
        "Trace id of the most recent tail-sampled request (0 when none)",
        ctx.last_slow.load(Ordering::Relaxed),
    );

    // Windowed telemetry: refresh the SLO gauges (rotating and
    // persisting any buckets that closed since the last tick on the
    // way), then the rollup/log health gauges.
    ctx.telemetry.publish_slo(reg);
    reg.set_gauge(
        "yv_window_parse_errors_60s",
        "Parse errors in the last 60 seconds-tier buckets",
        ctx.telemetry.parse_errors_window.sum(60),
    );
    if let Some(log) = &ctx.telemetry.log {
        let log = log.lock();
        // audit:allow(L1) three counter reads under the log lock; no IO
        reg.set_gauge(
            "yv_telemetry_log_bytes",
            "Bytes in the active telemetry.yvt segment",
            log.bytes(),
        );
        reg.counter_value(
            "yv_telemetry_frames_total",
            "Closed window buckets appended to telemetry.yvt by this process",
        )
        .set(log.frames());
        reg.counter_value(
            "yv_telemetry_log_rotations_total",
            "Telemetry segment rotations performed by this process",
        )
        .set(log.rotations());
    }
    if let Some(slow) = ctx.slow {
        reg.set_gauge(
            "yv_slow_log_rotations",
            "Slow-request log rotations performed by this process",
            slow.rotations(),
        );
    }

    let alloc = yv_obs::alloc_stats();
    reg.counter_value("yv_alloc_bytes_total", "Bytes allocated since process start")
        .set(alloc.alloc_bytes);
    reg.counter_value("yv_dealloc_bytes_total", "Bytes deallocated since process start")
        .set(alloc.dealloc_bytes);
    reg.set_gauge("yv_alloc_live_bytes", "Bytes currently allocated", alloc.live_bytes);
    reg.set_gauge(
        "yv_alloc_peak_bytes",
        "High-water mark of live bytes",
        alloc.peak_bytes,
    );
    reg.render_prometheus()
}

/// Answer one sidecar connection: a hand-rolled HTTP/1.1 exchange — read
/// the request line, drain headers to the blank line, answer
/// `GET /metrics` (or `/`) with the exposition and anything else with
/// 404 — so a stock Prometheus scraper works without any HTTP dependency
/// in the build.
fn serve_scrape(stream: TcpStream, ctx: &ServerCtx<'_>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut request = String::new();
    match reader.read_line(&mut request) {
        Ok(0) | Err(_) => return,
        Ok(_) => {}
    }
    // Drain the header block; the blank line ends the request head.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut writer = stream;
    if method != "GET" || !(path == "/metrics" || path == "/") {
        let _ = writer.write_all(
            b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        return;
    }
    let body = render_metrics(ctx);
    let head = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.write_all(body.as_bytes()));
}

/// Serve one client connection: request lines in, response blocks out,
/// until the client closes or asks for shutdown.
///
/// HELLO negotiation state machine: a fresh connection may upgrade to
/// the binary framing in [`crate::frame`] by making its *first* request
/// the literal line [`frame::HELLO_LINE`]; the server acknowledges with
/// a normal text block ([`frame::HELLO_OK`]) and the socket speaks
/// frames from then on. Any other first request fixes the connection to
/// the text transport for its lifetime — a later `HELLO` is refused
/// with an `ERR`, never a mid-stream transport switch.
fn handle_connection(stream: TcpStream, conn: u64, ctx: &ServerCtx<'_>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    let mut first_request = true;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let is_hello = tokens.next().is_some_and(|cmd| cmd.eq_ignore_ascii_case("HELLO"));
        if is_hello && first_request && tokens.eq(["proto=binary"]) {
            if writer.write_all(protocol::format_status(frame::HELLO_OK).as_bytes()).is_err() {
                return;
            }
            handle_binary_connection(&mut reader, &mut writer, conn, ctx);
            return;
        }
        first_request = false;
        let started = ctx.clock.now_nanos();
        // Every request gets a trace context from accept to reply. The
        // accept span marks request admission (id issue + context setup);
        // the stage spans follow inside the command arms.
        let mut trace = TraceCtx::start(ctx.sink.next_id(), conn, Arc::clone(&ctx.clock));
        trace.enter("accept");
        trace.exit();
        trace.enter("parse");
        let parsed = if is_hello {
            Err("HELLO: binary negotiation expects exactly `HELLO proto=binary` as the \
                 first request on a fresh connection"
                .to_owned())
        } else {
            protocol::parse_request(&line)
        };
        trace.exit();
        // Digest the argument text (everything after the command token)
        // so repeats of one query correlate in the slow log without the
        // arguments themselves ever being logged.
        let args = line.trim().split_once(char::is_whitespace).map_or("", |(_, rest)| rest);
        let args_digest = crate::codec::fnv1a64(args.as_bytes());
        let (response, command, closing) = dispatch(ctx, parsed, &mut trace, started);
        let response = seal_response(ctx, conn, command, args_digest, trace, started, response);
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        if closing {
            unblock_acceptors(ctx);
            return;
        }
    }
}

/// Serve the binary side of a negotiated connection: request frames in,
/// response frames out, until the client closes or asks for shutdown.
///
/// Error discipline mirrors the WAL reader. A clean EOF *between* frames
/// ends the connection quietly. A torn frame, checksum mismatch or
/// oversized length prefix means the byte stream itself can no longer be
/// trusted, so the connection drops without applying anything from the
/// broken frame — this is what keeps a mid-frame `BATCH_ADD` cut from
/// half-applying. A frame that passes the checksum but decodes to an
/// invalid request gets a normal `ERR` reply; the transport is fine,
/// only the request was bad.
fn handle_binary_connection(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    conn: u64,
    ctx: &ServerCtx<'_>,
) {
    loop {
        let (tag, payload) = match frame::read_raw_frame(reader) {
            Ok(Some(raw)) => raw,
            Ok(None) => return, // clean close at a frame boundary
            Err(_) => {
                ctx.metrics.parse_errors.incr();
                return;
            }
        };
        let started = ctx.clock.now_nanos();
        let mut trace = TraceCtx::start(ctx.sink.next_id(), conn, Arc::clone(&ctx.clock));
        trace.enter("accept");
        trace.exit();
        trace.enter("parse");
        let decoded = frame::RequestFrame::decode(tag, &payload);
        trace.exit();
        // The payload digest plays the role the argument-text digest
        // plays on the text path: correlating repeats in the slow log
        // without logging the arguments.
        let args_digest = crate::codec::fnv1a64(&payload);
        let (reply, closing) = match decoded {
            Ok(frame::RequestFrame::BatchAdd(records)) => {
                (batch_add_reply(ctx, conn, records, args_digest, trace, started), false)
            }
            other => {
                let parsed = other
                    .map_err(|e| e.to_string())
                    .and_then(frame::RequestFrame::into_request);
                let (response, command, closing) = dispatch(ctx, parsed, &mut trace, started);
                let response =
                    seal_response(ctx, conn, command, args_digest, trace, started, response);
                (frame::ResponseFrame::Block(response), closing)
            }
        };
        if write_response_frame(writer, &reply).is_err() {
            return;
        }
        if closing {
            unblock_acceptors(ctx);
            return;
        }
    }
}

/// Apply a `BATCH_ADD` frame via [`Store::add_records`] group commit:
/// one WAL fsync per dirty shard for the whole frame, and every status
/// in the reply refers to a record whose shard WAL has already been
/// synced. A connection lost before the reply leaves only durable
/// records behind — never a torn batch (a torn *frame* never reaches
/// this function at all: the checksum gate drops it).
fn batch_add_reply(
    ctx: &ServerCtx<'_>,
    conn: u64,
    records: Vec<Record>,
    args_digest: u64,
    mut trace: TraceCtx,
    started: u64,
) -> frame::ResponseFrame {
    trace.set_command("BATCH_ADD");
    let count = records.len().max(1) as u64;
    trace.annotate("records", records.len() as u64);
    trace.enter("apply");
    let apply_started = ctx.clock.now_nanos();
    let outcomes = ctx.store.add_records(records);
    let apply_ns = ctx.clock.now_nanos().saturating_sub(apply_started);
    let mut statuses = Vec::with_capacity(outcomes.len());
    let mut all_ok = true;
    for outcome in outcomes {
        // Per-record metrics under the ADD kind (amortized share of the
        // batch): a batch of N shows up as N adds in every CMD row,
        // latency window and HISTORY bucket, so the two transports
        // report load on the same scale.
        ctx.metrics.add.record(outcome.is_ok(), apply_ns / count);
        statuses.push(match outcome {
            Ok(matches) => frame::BatchStatus::Ok {
                matches: u32::try_from(matches.len()).unwrap_or(u32::MAX),
            },
            Err(e) => {
                all_ok = false;
                frame::BatchStatus::Err(e.to_string())
            }
        });
    }
    trace.exit();
    let dur_ns = ctx.clock.now_nanos().saturating_sub(started);
    if let Some(slow) = ctx.slow {
        if dur_ns >= slow.threshold_ns {
            slow.log(conn, "BATCH_ADD", args_digest, dur_ns, trace.id());
        }
    }
    if let Some(done) = trace.finish(all_ok) {
        if ctx.sink.capture(done) {
            ctx.last_slow.store(done.id, Ordering::Relaxed);
        }
    }
    frame::ResponseFrame::Batch(statuses)
}

/// Encode and write one response frame; an unencodable response (a
/// status string past the u32 limit) surfaces as an IO error so the
/// caller drops the connection rather than sending a half-frame.
fn write_response_frame(
    writer: &mut TcpStream,
    reply: &frame::ResponseFrame,
) -> std::io::Result<()> {
    let bytes = reply.encode().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("unencodable reply: {e}"))
    })?;
    writer.write_all(&bytes)
}

/// Self-connect to the protocol (and scrape) listeners so acceptors
/// blocked in `accept` observe the shutdown flag.
fn unblock_acceptors(ctx: &ServerCtx<'_>) {
    let _ = TcpStream::connect(ctx.addr);
    if let Some(maddr) = ctx.metrics_addr {
        let _ = TcpStream::connect(maddr);
    }
}

/// Post-process one response block identically on both transports:
/// slow-log the request when it crossed the threshold, splice the trace
/// token into traced commands' status lines, and seal + capture the
/// trace *before* the reply is written so a client can `TRACE` the id
/// from the response it just read.
fn seal_response(
    ctx: &ServerCtx<'_>,
    conn: u64,
    command: &'static str,
    args_digest: u64,
    mut trace: TraceCtx,
    started: u64,
    response: String,
) -> String {
    let dur_ns = ctx.clock.now_nanos().saturating_sub(started);
    if let Some(slow) = ctx.slow {
        if dur_ns >= slow.threshold_ns {
            slow.log(conn, command, args_digest, dur_ns, trace.id());
        }
    }
    // The reply span covers response post-processing (trace-token
    // splice); the trace is sealed and captured before the write so a
    // client can `TRACE` the id from the response it just read.
    trace.enter("reply");
    let traced = matches!(command, "QUERY" | "RESOLVE" | "ADD" | "SNAPSHOT");
    let response =
        if traced { protocol::with_trace_token(&response, trace.id()) } else { response };
    trace.exit();
    if traced || command == "INVALID" {
        let ok = !response.starts_with("ERR");
        if let Some(done) = trace.finish(ok) {
            if ctx.sink.capture(done) {
                ctx.last_slow.store(done.id, Ordering::Relaxed);
            }
        }
    }
    response
}

/// Execute one parsed request (or format its parse/decode failure) and
/// record its per-command metrics — the single dispatch point both the
/// text and binary transports funnel through, so a command behaves
/// identically however it arrived. Returns the rendered response block,
/// the canonical command name, and whether the connection closes after
/// the reply (`SHUTDOWN`).
fn dispatch(
    ctx: &ServerCtx<'_>,
    parsed: Result<Request, String>,
    trace: &mut TraceCtx,
    started: u64,
) -> (String, &'static str, bool) {
    let command = parsed.as_ref().map_or("INVALID", Request::name);
    trace.set_command(command);
    let mut closing = false;
    let elapsed = || ctx.clock.now_nanos().saturating_sub(started);
    let response = match parsed {
        Err(msg) => {
            ctx.metrics.parse_errors.incr();
            protocol::format_status(&format!("ERR {msg}"))
        }
        Ok(Request::Query(query)) => {
            let hits = ctx.store.query_traced(&query, trace);
            trace.annotate("hits", hits.len() as u64);
            ctx.metrics.query.record(true, elapsed());
            protocol::format_hits(&hits)
        }
        Ok(Request::Resolve { name, k, min }) => {
            // The name itself never enters the trace — only its
            // sanctioned digest, same policy as the slow log.
            trace.annotate("name_digest", crate::codec::fnv1a64(name.as_bytes()));
            trace.annotate("k", k as u64);
            let options = crate::store::ResolveOptions {
                k,
                min_score: min.unwrap_or(f64::NEG_INFINITY),
                ..crate::store::ResolveOptions::default()
            };
            let outcome = ctx.store.resolve_traced(&name, &options, trace);
            let cands = outcome.hits.len() as u64;
            trace.annotate("cands", cands);
            ctx.metrics.resolve.record(true, elapsed());
            protocol::format_candidates(&outcome.hits)
        }
        Ok(Request::Add(record)) => {
            trace.enter("apply");
            let outcome = ctx.store.add_record(*record);
            trace.exit();
            ctx.metrics.add.record(outcome.is_ok(), elapsed());
            match outcome {
                Ok(matches) => {
                    trace.annotate("matches", matches.len() as u64);
                    protocol::format_status(&format!("OK matches={}", matches.len()))
                }
                Err(e) => protocol::format_status(&format!("ERR {e}")),
            }
        }
        Ok(Request::Stats) => {
            let stats = ctx.store.stats();
            // Record before rendering so this request appears in its
            // own CMD row.
            ctx.metrics.stats.record(true, elapsed());
            protocol::format_stats(
                &format!(
                    "OK records={} sources={} matches={} shards={} wal={} wal_bytes={} \
                     vocabulary={} entity_maps={} evictions={} \
                     fuzzy_names={} fuzzy_grams={} fuzzy_postings={} \
                     fuzzy_examined={} fuzzy_pruned={} errors={}",
                    stats.records,
                    stats.sources,
                    stats.matches,
                    stats.shards.len(),
                    stats.wal_entries,
                    stats.wal_bytes,
                    stats.vocabulary,
                    stats.entity_maps_cached,
                    stats.entity_map_evictions,
                    stats.fuzzy_names,
                    stats.fuzzy_grams,
                    stats.fuzzy_postings,
                    stats.fuzzy_examined,
                    stats.fuzzy_pruned,
                    ctx.metrics.errors(),
                ),
                &stats.shards,
                &ctx.metrics.command_stats(),
            )
        }
        Ok(Request::Metrics) => {
            // Record first so this scrape's own latency sample is in
            // the exposition it returns.
            ctx.metrics.metrics.record(true, elapsed());
            protocol::format_metrics(&render_metrics(ctx))
        }
        Ok(Request::Top { k }) => {
            let ring = ctx.sink.stats();
            let slow_traces = ctx.sink.recent_slow(k);
            ctx.metrics.top.record(true, elapsed());
            protocol::format_top(
                &ring,
                ctx.last_slow.load(Ordering::Relaxed),
                &ctx.metrics.command_stats(),
                &slow_traces,
            )
        }
        Ok(Request::Trace { id, json }) => match ctx.sink.find(id) {
            Some(found) => {
                ctx.metrics.trace.record(true, elapsed());
                if json {
                    protocol::format_trace_json(&found)
                } else {
                    protocol::format_trace(&found)
                }
            }
            None => {
                ctx.metrics.trace.record(false, elapsed());
                protocol::format_status(&format!(
                    "ERR TRACE: no trace {id:016x} (never captured or already evicted)"
                ))
            }
        },
        Ok(Request::History { metric, window, tier, json }) => {
            match ctx.telemetry.view(&metric, tier, window) {
                Some(view) => {
                    let slo = ctx.telemetry.slo_for(&metric);
                    ctx.metrics.history.record(true, elapsed());
                    if json {
                        protocol::format_history_json(&metric, &view, &slo)
                    } else {
                        protocol::format_history(&metric, &view, &slo)
                    }
                }
                None => {
                    ctx.metrics.history.record(false, elapsed());
                    protocol::format_status(&format!(
                        "ERR HISTORY: unknown metric {metric:?} (expected a command kind: \
                         query, resolve, add, stats, metrics, top, trace, history, \
                         snapshot or shutdown)"
                    ))
                }
            }
        }
        Ok(Request::Snapshot) => {
            trace.enter("snapshot");
            let outcome = ctx.store.snapshot();
            trace.exit();
            ctx.metrics.snapshot.record(outcome.is_ok(), elapsed());
            match outcome {
                Ok(()) => protocol::format_status("OK snapshot"),
                Err(e) => protocol::format_status(&format!("ERR {e}")),
            }
        }
        Ok(Request::Shutdown) => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            ctx.metrics.shutdown.record(true, elapsed());
            closing = true;
            protocol::format_status("OK bye")
        }
    };
    (response, command, closing)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the `STATS` consistency bug: `count` used to
    /// come from the `ok` counter while the percentiles came from a
    /// separately-read histogram, so a row could report `count=0` with
    /// nonzero percentiles (or vice versa). Both now derive from one
    /// [`Histogram::snapshot`]; driving the durations through a
    /// [`yv_obs::ManualClock`] pins the exact row.
    #[test]
    fn command_stats_row_derives_from_one_snapshot() {
        let metrics = ServerMetrics::default();
        let clock = yv_obs::ManualClock::new();
        // Three successes and one error, with known latencies.
        for (us, ok) in [(100u64, true), (200, true), (400, true), (800, false)] {
            let started = clock.now_nanos();
            clock.advance(us * 1_000);
            metrics.query.record(ok, clock.now_nanos().saturating_sub(started));
        }
        let row = metrics.query.stats("QUERY");
        // Count covers every measured request — including the error — and
        // comes from the same snapshot as the percentiles.
        assert_eq!(row.count, 4);
        assert_eq!(row.errors, 1);
        assert_eq!(row.mean_us, 375);
        assert_eq!(row.p50_us, 256, "rank 2 of 4: the 200µs sample's bucket bound");
        assert_eq!(row.p95_us, 1_024, "rank 4 of 4: the 800µs sample's bucket bound");
        assert_eq!(row.p99_us, 1_024);
        assert_eq!(row.max_us, 800, "max is the exact worst sample, not a bucket bound");
    }

    #[test]
    fn server_metrics_register_one_set_per_command() {
        let metrics = ServerMetrics::default();
        metrics.add.record(true, 5_000);
        let rendered = metrics.registry.render_prometheus();
        for kind in [
            "query", "resolve", "add", "stats", "metrics", "top", "trace", "history", "snapshot",
            "shutdown",
        ] {
            assert!(rendered.contains(&format!("# TYPE yv_cmd_{kind}_ok_total counter\n")));
            assert!(
                rendered.contains(&format!("# TYPE yv_cmd_{kind}_latency_us histogram\n")),
                "{kind}"
            );
        }
        assert!(rendered.contains("yv_cmd_add_ok_total 1\n"));
        assert!(rendered.contains("yv_cmd_add_latency_us_count 1\n"));
        assert!(rendered.contains("yv_cmd_parse_errors_total 0\n"));
    }

    #[test]
    fn errors_sum_every_command_and_parse_failures() {
        let metrics = ServerMetrics::default();
        metrics.parse_errors.incr();
        metrics.add.record(false, 1_000);
        metrics.snapshot.record(false, 1_000);
        metrics.trace.record(false, 1_000);
        assert_eq!(metrics.errors(), 4);
        assert_eq!(metrics.command_stats().len(), 10);
    }

    #[test]
    fn slow_log_lines_are_json_with_hex_digest() {
        let buf = Arc::new(parking_lot::Mutex::new(Vec::<u8>::new()));
        struct Sink(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let slow = SlowLog::stream(0, Box::new(Sink(Arc::clone(&buf))), DEFAULT_SLOW_LOG_CAP_BYTES);
        slow.log(7, "QUERY", 0xabcd, 1_234_567, 0x00ff_1122_3344_5566);
        let logged = String::from_utf8(buf.lock().clone()).expect("utf8 log line");
        assert_eq!(
            logged,
            "{\"slow_request\":true,\"conn\":7,\"command\":\"QUERY\",\
             \"args_digest\":\"000000000000abcd\",\"latency_us\":1234,\
             \"trace\":\"00ff112233445566\"}\n"
        );
        assert_eq!(slow.rotations(), 0);
    }

    #[test]
    fn file_slow_log_rotates_at_the_size_cap_keeping_one_generation() {
        let dir = std::env::temp_dir().join("yv-store-slowlog-tests").join("rotate");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        // Each line is ~130 bytes; a 300-byte cap rotates every 2-3 lines.
        let slow = SlowLog::file(1, &path, 300).expect("open slow log");
        for conn in 0..10 {
            slow.log(conn, "QUERY", conn, 5_000_000, conn);
        }
        assert!(slow.rotations() >= 2, "cap must force rotations, saw {}", slow.rotations());
        let aside = dir.join("slow.jsonl.1");
        assert!(aside.exists(), "rotation keeps exactly one previous generation");
        let head = std::fs::read_to_string(&path).expect("active log");
        let prev = std::fs::read_to_string(&aside).expect("rotated log");
        assert!(head.len() as u64 <= 300 + 200, "active file stays near the cap");
        // Every retained line is complete JSONL (rotation never tears one).
        for line in head.lines().chain(prev.lines()) {
            assert!(line.starts_with("{\"slow_request\":true,"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        // The newest line survived in the active file.
        assert!(head.contains("\"conn\":9,"));
    }

    #[test]
    fn stream_slow_log_rotation_is_logical_with_a_marker() {
        let buf = Arc::new(parking_lot::Mutex::new(Vec::<u8>::new()));
        struct Sink(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let slow = SlowLog::stream(1, Box::new(Sink(Arc::clone(&buf))), 200);
        for conn in 0..4 {
            slow.log(conn, "QUERY", conn, 5_000_000, conn);
        }
        assert!(slow.rotations() >= 1);
        let logged = String::from_utf8(buf.lock().clone()).expect("utf8");
        assert!(logged.contains("{\"slow_log_rotated\":true,\"generation\":1}\n"), "{logged}");
    }
}
